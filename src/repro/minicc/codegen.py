"""Mini-C to IR lowering with on-the-fly type checking.

Lowering is clang -O0 style: every local lives in an ``alloca`` and every
variable access is a load/store.  The pass pipeline then runs ``mem2reg``
so that, like the paper's use of an optimizing clang, only *real* memory
references remain for the guard pass to instrument (paper §3.3).
"""

from __future__ import annotations

from typing import Optional

from . import cast as A
from . import ctypes_ as C
from ..ir import (
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    Module,
    PointerType,
    VOID,
    I1,
    I8,
    I32,
    I64,
)
from ..ir.types import FloatType, IntType
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    Value,
)


class CompileError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class _FunctionInfo:
    """Front-end view of a declared function."""

    __slots__ = ("ir", "ret", "params", "vararg", "native")

    def __init__(self, ir: Function, ret: C.CType, params: list[C.CType], vararg: bool):
        self.ir = ir
        self.ret = ret
        self.params = params
        self.vararg = vararg


class _Scope:
    """Lexical scope mapping names to (alloca pointer, CType)."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: dict[str, tuple[Value, C.CType]] = {}

    def define(self, name: str, slot: Value, ct: C.CType, line: int) -> None:
        if name in self.vars:
            raise CompileError(f"redefinition of {name!r}", line)
        self.vars[name] = (slot, ct)

    def lookup(self, name: str) -> Optional[tuple[Value, C.CType]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            hit = scope.vars.get(name)
            if hit is not None:
                return hit
            scope = scope.parent
        return None


class CodeGenerator:
    """Lowers one translation unit into one IR module."""

    def __init__(self, module_name: str):
        self.module = Module(module_name)
        self.structs: dict[str, C.CType] = {}
        self.functions: dict[str, _FunctionInfo] = {}
        self.globals: dict[str, C.CType] = {}
        self.b = IRBuilder()
        self._string_counter = 0
        self._defined: set[str] = set()
        # per-function state
        self._current: Optional[_FunctionInfo] = None
        self._scope: Optional[_Scope] = None
        self._break_stack: list = []
        self._continue_stack: list = []

    # ------------------------------------------------------------------ types

    def resolve_type(self, te: A.TypeExpr) -> C.CType:
        if isinstance(te, A.NamedType):
            try:
                return C.named_type(te.name, te.unsigned)
            except TypeError as e:
                raise CompileError(str(e), te.line) from None
        if isinstance(te, A.StructRef):
            st = self.structs.get(te.name)
            if st is None:
                raise CompileError(f"unknown struct {te.name!r}", te.line)
            return st
        if isinstance(te, A.PointerTo):
            return C.pointer_to(self.resolve_type(te.inner))
        if isinstance(te, A.ArrayOf):
            if te.count <= 0:
                raise CompileError("array size must be positive", te.line)
            return C.array_of(self.resolve_type(te.inner), te.count)
        raise CompileError(f"bad type expression {te!r}", te.line)

    # ------------------------------------------------------------------ entry

    def generate(self, unit: A.TranslationUnit) -> Module:
        for item in unit.items:
            if isinstance(item, A.StructDef):
                self.gen_struct(item)
            elif isinstance(item, A.EnumDef):
                pass  # folded into IntLits by the parser
            elif isinstance(item, A.GlobalDecl):
                self.gen_global(item)
            elif isinstance(item, A.FunctionDef):
                self.declare_function(item)
            else:
                raise CompileError("unexpected top-level item", item.line)
        for item in unit.items:
            if isinstance(item, A.FunctionDef) and item.body is not None:
                self.gen_function_body(item)
        return self.module

    def gen_struct(self, sd: A.StructDef) -> None:
        if sd.name in self.structs:
            raise CompileError(f"redefinition of struct {sd.name}", sd.line)
        ct = C.CType("struct", name=sd.name, fields=[])
        # Register before resolving fields so self-referencing *pointers*
        # work (they are i64 in memory and never need the completed layout).
        self.structs[sd.name] = ct
        for ftype_expr, fname in sd.fields:
            ftype = self.resolve_type(ftype_expr)
            if ftype.is_struct and ftype._ir_struct is None and ftype is ct:
                raise CompileError(
                    f"struct {sd.name} contains itself by value", sd.line
                )
            if any(n == fname for n, _ in ct.fields):
                raise CompileError(f"duplicate field {fname!r}", sd.line)
            ct.fields.append((fname, ftype))
        ct.complete_struct()
        self.module.add_struct(ct._ir_struct)  # type: ignore[arg-type]

    def gen_global(self, gd: A.GlobalDecl) -> None:
        ct = self.resolve_type(gd.type)
        if gd.name in self.globals or gd.name in self.functions:
            raise CompileError(f"redefinition of {gd.name!r}", gd.line)
        if ct.is_void:
            raise CompileError("global of type void", gd.line)
        linkage = "internal"
        if gd.is_extern:
            linkage = "external"
            if gd.init is not None:
                raise CompileError("extern global with initializer", gd.line)
        elif getattr(gd, "is_export", False):
            linkage = "exported"  # EXPORT_SYMBOL analog for data
        initializer = None
        if gd.init is not None:
            initializer = self._const_initializer(gd.init, ct)
        self.module.add_global(
            GlobalVariable(ct.memory_type(), gd.name, initializer, linkage,
                           gd.is_const)
        )
        self.globals[gd.name] = ct

    def _const_initializer(self, expr: A.Expr, ct: C.CType):
        value = self._const_eval(expr)
        if isinstance(value, bytes):
            if not (ct.is_array and ct.element is C.CHAR):
                if ct.is_array and ct.element is not None and ct.element.is_int \
                        and ct.element.bits == 8:
                    pass
                else:
                    raise CompileError(
                        "string initializer requires char array", expr.line
                    )
            data = value + b"\x00"
            if ct.count < len(data):
                raise CompileError("string too long for array", expr.line)
            data = data.ljust(ct.count, b"\x00")
            return ConstantString(data)
        if isinstance(value, float):
            if not ct.is_float:
                raise CompileError("float initializer for non-float", expr.line)
            return ConstantFloat(FloatType(ct.bits), value)
        if isinstance(value, int):
            if ct.is_ptr:
                if value != 0:
                    raise CompileError(
                        "pointer globals may only be initialized to null",
                        expr.line,
                    )
                return ConstantInt(I64, 0)
            if not ct.is_int:
                raise CompileError("integer initializer for non-integer", expr.line)
            return ConstantInt(IntType(ct.bits), value)
        raise CompileError("unsupported global initializer", expr.line)

    def _const_eval(self, expr: A.Expr):
        """Evaluate a compile-time constant expression."""
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.FloatLit):
            return expr.value
        if isinstance(expr, A.StringLit):
            return expr.data
        if isinstance(expr, A.NullLit):
            return 0
        if isinstance(expr, A.Unary) and expr.op in ("-", "~", "!"):
            v = self._const_eval(expr.operand)
            if not isinstance(v, (int, float)):
                raise CompileError("bad constant expression", expr.line)
            if expr.op == "-":
                return -v
            if expr.op == "~":
                return ~int(v)
            return int(not v)
        if isinstance(expr, A.Binary):
            a = self._const_eval(expr.lhs)
            b = self._const_eval(expr.rhs)
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                raise CompileError("bad constant expression", expr.line)
            ops = {
                "+": lambda x, y: x + y, "-": lambda x, y: x - y,
                "*": lambda x, y: x * y,
                "/": lambda x, y: int(x / y) if isinstance(x, int) else x / y,
                "%": lambda x, y: x - int(x / y) * y,
                "<<": lambda x, y: int(x) << int(y),
                ">>": lambda x, y: int(x) >> int(y),
                "&": lambda x, y: int(x) & int(y),
                "|": lambda x, y: int(x) | int(y),
                "^": lambda x, y: int(x) ^ int(y),
            }
            fn = ops.get(expr.op)
            if fn is None:
                raise CompileError(f"bad constant operator {expr.op}", expr.line)
            return fn(a, b)
        if isinstance(expr, A.SizeofType):
            return self.resolve_type(expr.target).sizeof()
        raise CompileError("expression is not a compile-time constant", expr.line)

    # ------------------------------------------------------------------ functions

    def declare_function(self, fd: A.FunctionDef) -> _FunctionInfo:
        ret = self.resolve_type(fd.ret)
        params = [self.resolve_type(p.type) for p in fd.params]
        for p, pct in zip(fd.params, params):
            if pct.is_array:
                raise CompileError("array parameter must decay to pointer", p.line)
            if pct.is_struct:
                raise CompileError("pass structs by pointer", p.line)
            if pct.is_void:
                raise CompileError("void parameter", p.line)
        if ret.is_struct or ret.is_array:
            raise CompileError("return aggregates by pointer", fd.line)
        existing = self.functions.get(fd.name)
        ftype = FunctionType(
            ret.value_type(), [p.value_type() for p in params], fd.vararg
        )
        if existing is not None:
            if existing.ir.function_type is not ftype:
                raise CompileError(
                    f"conflicting declaration of {fd.name!r}", fd.line
                )
            if fd.body is not None:
                if fd.name in self._defined:
                    raise CompileError(f"redefinition of {fd.name!r}", fd.line)
                self._defined.add(fd.name)
            return existing
        if fd.body is not None:
            self._defined.add(fd.name)
        if fd.is_export:
            linkage = "exported"
        elif fd.body is None:
            linkage = "external"
        else:
            linkage = "internal"
        fn = Function(fd.name, ftype, [p.name for p in fd.params], linkage)
        self.module.add_function(fn)
        info = _FunctionInfo(fn, ret, params, fd.vararg)
        self.functions[fd.name] = info
        return info

    def gen_function_body(self, fd: A.FunctionDef) -> None:
        info = self.functions[fd.name]
        fn = info.ir
        if fn.is_declaration and fd.body is not None and fn.linkage == "external":
            fn.linkage = "internal" if not fd.is_export else "exported"
        self._current = info
        self._scope = _Scope()
        self._break_stack = []
        self._continue_stack = []
        entry = fn.add_block("entry")
        self.b.position_at_end(entry)
        # Spill parameters into allocas (mem2reg will promote them back).
        for arg, pct in zip(fn.args, info.params):
            slot = self.b.alloca(pct.memory_type(), 1, f"{arg.name}.addr")
            self._store_converted_value(arg, pct, slot)
            self._scope.define(arg.name, slot, pct, fd.line)
        assert fd.body is not None
        self.gen_block(fd.body)
        # Implicit return at the end of void functions / fallthrough.
        if self.b.block is not None and self.b.block.terminator is None:
            if info.ret.is_void:
                self.b.ret()
            else:
                self.b.ret(self._zero_value(info.ret))
        self._current = None
        self._scope = None

    def _zero_value(self, ct: C.CType) -> Value:
        if ct.is_int:
            return ConstantInt(IntType(ct.bits), 0)
        if ct.is_float:
            return ConstantFloat(FloatType(ct.bits), 0.0)
        if ct.is_ptr:
            return ConstantNull(ct.value_type())  # type: ignore[arg-type]
        raise TypeError(f"no zero for {ct}")

    def _store_converted_value(self, value: Value, ct: C.CType, slot: Value) -> None:
        """Store an SSA value into a memory slot, lowering pointers to i64."""
        if ct.is_ptr:
            value = self.b.ptrtoint(value, I64)
        self.b.store(value, slot)

    def _load_slot(self, slot: Value, ct: C.CType, name: str = "") -> Value:
        """Load a scalar from a memory slot, raising pointers back to typed."""
        if name:
            name = self.b.function.unique_name(name)
        v = self.b.load(slot, name)
        if ct.is_ptr:
            v = self.b.inttoptr(v, ct.value_type())
        return v

    # ------------------------------------------------------------------ statements

    def gen_block(self, block: A.Block) -> None:
        assert self._scope is not None
        self._scope = _Scope(self._scope)
        for stmt in block.statements:
            if self.b.block is not None and self.b.block.terminator is not None:
                break  # statically unreachable code after return/break/continue
            self.gen_statement(stmt)
        self._scope = self._scope.parent

    def gen_statement(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, A.ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, A.LocalDecl):
            self.gen_local_decl(stmt)
        elif isinstance(stmt, A.If):
            self.gen_if(stmt)
        elif isinstance(stmt, A.While):
            self.gen_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, A.For):
            self.gen_for(stmt)
        elif isinstance(stmt, A.SwitchStmt):
            self.gen_switch(stmt)
        elif isinstance(stmt, A.Return):
            self.gen_return(stmt)
        elif isinstance(stmt, A.Break):
            if not self._break_stack:
                raise CompileError("break outside loop/switch", stmt.line)
            self.b.br(self._break_stack[-1])
        elif isinstance(stmt, A.Continue):
            if not self._continue_stack:
                raise CompileError("continue outside loop", stmt.line)
            self.b.br(self._continue_stack[-1])
        elif isinstance(stmt, A.AsmStmt):
            self.b.inline_asm(stmt.text)
        else:
            raise CompileError(f"bad statement {stmt!r}", stmt.line)

    def gen_local_decl(self, decl: A.LocalDecl) -> None:
        assert self._scope is not None
        ct = self.resolve_type(decl.type)
        if ct.is_void:
            raise CompileError("variable of type void", decl.line)
        slot = self.b.alloca(
            ct.memory_type(), 1, self.b.function.unique_name(decl.name)
        )
        self._scope.define(decl.name, slot, ct, decl.line)
        if decl.init is not None:
            if isinstance(decl.init, A.StringLit) and ct.is_array:
                self._init_char_array(slot, ct, decl.init)
                return
            value, vct = self.gen_expr(decl.init)
            value = self.convert(value, vct, ct, decl.line)
            self._store_converted_value(value, ct, slot)

    def _init_char_array(self, slot: Value, ct: C.CType, lit: A.StringLit) -> None:
        data = lit.data + b"\x00"
        if ct.count < len(data):
            raise CompileError("string too long for array", lit.line)
        base = self.b.bitcast(slot, PointerType(I8))
        for i, byte in enumerate(data):
            p = self.b.gep(PointerType(I8), base, self.b.const_i64(i), 1, 0)
            self.b.store(self.b.const_i8(byte), p)

    def gen_if(self, stmt: A.If) -> None:
        fn = self._current.ir  # type: ignore[union-attr]
        cond = self.gen_condition(stmt.cond)
        then_bb = fn.add_block("if.then")
        end_bb = fn.add_block("if.end")
        else_bb = fn.add_block("if.else") if stmt.other is not None else end_bb
        self.b.cond_br(cond, then_bb, else_bb)
        self.b.position_at_end(then_bb)
        self.gen_statement(stmt.then)
        if self.b.block.terminator is None:
            self.b.br(end_bb)
        if stmt.other is not None:
            self.b.position_at_end(else_bb)
            self.gen_statement(stmt.other)
            if self.b.block.terminator is None:
                self.b.br(end_bb)
        self.b.position_at_end(end_bb)

    def gen_while(self, stmt: A.While) -> None:
        fn = self._current.ir  # type: ignore[union-attr]
        cond_bb = fn.add_block("while.cond")
        body_bb = fn.add_block("while.body")
        end_bb = fn.add_block("while.end")
        self.b.br(cond_bb)
        self.b.position_at_end(cond_bb)
        self.b.cond_br(self.gen_condition(stmt.cond), body_bb, end_bb)
        self.b.position_at_end(body_bb)
        self._break_stack.append(end_bb)
        self._continue_stack.append(cond_bb)
        self.gen_statement(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if self.b.block.terminator is None:
            self.b.br(cond_bb)
        self.b.position_at_end(end_bb)

    def gen_do_while(self, stmt: A.DoWhile) -> None:
        fn = self._current.ir  # type: ignore[union-attr]
        body_bb = fn.add_block("do.body")
        cond_bb = fn.add_block("do.cond")
        end_bb = fn.add_block("do.end")
        self.b.br(body_bb)
        self.b.position_at_end(body_bb)
        self._break_stack.append(end_bb)
        self._continue_stack.append(cond_bb)
        self.gen_statement(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if self.b.block.terminator is None:
            self.b.br(cond_bb)
        self.b.position_at_end(cond_bb)
        self.b.cond_br(self.gen_condition(stmt.cond), body_bb, end_bb)
        self.b.position_at_end(end_bb)

    def gen_for(self, stmt: A.For) -> None:
        assert self._scope is not None
        fn = self._current.ir  # type: ignore[union-attr]
        self._scope = _Scope(self._scope)
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        cond_bb = fn.add_block("for.cond")
        body_bb = fn.add_block("for.body")
        step_bb = fn.add_block("for.step")
        end_bb = fn.add_block("for.end")
        self.b.br(cond_bb)
        self.b.position_at_end(cond_bb)
        if stmt.cond is not None:
            self.b.cond_br(self.gen_condition(stmt.cond), body_bb, end_bb)
        else:
            self.b.br(body_bb)
        self.b.position_at_end(body_bb)
        self._break_stack.append(end_bb)
        self._continue_stack.append(step_bb)
        self.gen_statement(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if self.b.block.terminator is None:
            self.b.br(step_bb)
        self.b.position_at_end(step_bb)
        if stmt.step is not None:
            self.gen_expr(stmt.step)
        self.b.br(cond_bb)
        self.b.position_at_end(end_bb)
        self._scope = self._scope.parent

    def gen_switch(self, stmt: A.SwitchStmt) -> None:
        fn = self._current.ir  # type: ignore[union-attr]
        value, vct = self.gen_expr(stmt.value)
        if not vct.is_int:
            raise CompileError("switch value must be an integer", stmt.line)
        pct = C.promote(vct)
        value = self.convert(value, vct, pct, stmt.line)
        vtype = IntType(pct.bits)
        end_bb = fn.add_block("switch.end")
        case_blocks = [fn.add_block(f"switch.case{i}") for i in range(len(stmt.cases))]
        default_bb = end_bb
        cases: list[tuple[int, object]] = []
        seen: set[int] = set()
        for i, case in enumerate(stmt.cases):
            if case.is_default:
                default_bb = case_blocks[i]
            for cv in case.values:
                wrapped = vtype.wrap(cv)
                if wrapped in seen:
                    raise CompileError(f"duplicate case {cv}", case.line)
                seen.add(wrapped)
                cases.append((wrapped, case_blocks[i]))
        self.b.switch(value, default_bb, cases)  # type: ignore[arg-type]
        self._break_stack.append(end_bb)
        for i, case in enumerate(stmt.cases):
            self.b.position_at_end(case_blocks[i])
            for s in case.body:
                self.gen_statement(s)
                if self.b.block.terminator is not None:
                    break
            if self.b.block.terminator is None:
                # C fallthrough into the next case block (or the end).
                nxt = case_blocks[i + 1] if i + 1 < len(case_blocks) else end_bb
                self.b.br(nxt)
        self._break_stack.pop()
        self.b.position_at_end(end_bb)

    def gen_return(self, stmt: A.Return) -> None:
        info = self._current
        assert info is not None
        if stmt.value is None:
            if not info.ret.is_void:
                raise CompileError("return without value", stmt.line)
            self.b.ret()
            return
        if info.ret.is_void:
            raise CompileError("return with value in void function", stmt.line)
        value, vct = self.gen_expr(stmt.value)
        self.b.ret(self.convert(value, vct, info.ret, stmt.line))

    # ------------------------------------------------------------------ expressions

    def gen_condition(self, expr: A.Expr) -> Value:
        """Evaluate an expression as an ``i1`` condition."""
        value, ct = self.gen_expr(expr)
        return self._to_i1(value, ct, expr.line)

    def _to_i1(self, value: Value, ct: C.CType, line: int) -> Value:
        if ct.is_int:
            if ct.bits == 1:
                return value
            return self.b.icmp("ne", value, ConstantInt(IntType(ct.bits), 0))
        if ct.is_ptr:
            return self.b.icmp("ne", value, ConstantNull(value.type))  # type: ignore[arg-type]
        if ct.is_float:
            return self.b.fcmp("one", value, ConstantFloat(FloatType(ct.bits), 0.0))
        raise CompileError(f"cannot use {ct} as a condition", line)

    def convert(self, value: Value, src: C.CType, dst: C.CType, line: int) -> Value:
        """Implicit conversion from ``src`` to ``dst`` (C assignment rules)."""
        if src.same(dst):
            return value
        if src.is_array and dst.is_ptr:
            raise CompileError("array should have decayed", line)
        if src.is_int and dst.is_int:
            if src.bits == dst.bits:
                return value  # same representation, only signedness differs
            if src.bits > dst.bits:
                return self.b.cast("trunc", value, IntType(dst.bits))
            op = "sext" if src.signed else "zext"
            return self.b.cast(op, value, IntType(dst.bits))
        if src.is_int and dst.is_float:
            if not src.signed:
                # Widen first so the sitofp sees a non-negative value.
                if src.bits < 64:
                    value = self.b.cast("zext", value, I64)
                return self.b.cast("sitofp", value, FloatType(dst.bits))
            return self.b.cast("sitofp", value, FloatType(dst.bits))
        if src.is_float and dst.is_int:
            return self.b.cast("fptosi", value, IntType(dst.bits))
        if src.is_float and dst.is_float:
            op = "fpext" if dst.bits > src.bits else "fptrunc"
            return self.b.cast(op, value, FloatType(dst.bits))
        if src.is_ptr and dst.is_ptr:
            # void* converts freely; otherwise require explicit casts,
            # except that any pointer converts to void*.
            if dst.pointee.is_void or src.pointee.is_void:  # type: ignore[union-attr]
                return self.b.bitcast(value, dst.value_type())  # type: ignore[arg-type]
            raise CompileError(f"implicit pointer conversion {src} -> {dst}", line)
        if src.is_int and dst.is_ptr:
            if isinstance(value, ConstantInt) and value.value == 0:
                return ConstantNull(dst.value_type())  # type: ignore[arg-type]
            raise CompileError(f"implicit int-to-pointer ({src} -> {dst})", line)
        raise CompileError(f"cannot convert {src} to {dst}", line)

    def explicit_cast(self, value: Value, src: C.CType, dst: C.CType, line: int) -> Value:
        if dst.is_void:
            return value
        if src.is_ptr and dst.is_ptr:
            return self.b.bitcast(value, dst.value_type())  # type: ignore[arg-type]
        if src.is_ptr and dst.is_int:
            v = self.b.ptrtoint(value, I64)
            if dst.bits < 64:
                v = self.b.cast("trunc", v, IntType(dst.bits))
            return v
        if src.is_int and dst.is_ptr:
            if src.bits < 64:
                op = "sext" if src.signed else "zext"
                value = self.b.cast(op, value, I64)
            return self.b.inttoptr(value, dst.value_type())  # type: ignore[arg-type]
        return self.convert(value, src, dst, line)

    # -- lvalues -----------------------------------------------------------

    def gen_lvalue(self, expr: A.Expr) -> tuple[Value, C.CType]:
        """Return (typed pointer to storage, CType of the object)."""
        if isinstance(expr, A.Ident):
            assert self._scope is not None
            hit = self._scope.lookup(expr.name)
            if hit is not None:
                return hit[0], hit[1]
            gct = self.globals.get(expr.name)
            if gct is not None:
                g = self.module.get_global(expr.name)
                return g, gct
            raise CompileError(f"undefined variable {expr.name!r}", expr.line)
        if isinstance(expr, A.Unary) and expr.op == "*":
            value, ct = self.gen_expr(expr.operand)
            if not ct.is_ptr:
                raise CompileError(f"cannot dereference {ct}", expr.line)
            if ct.pointee.is_void:  # type: ignore[union-attr]
                raise CompileError("cannot dereference void*", expr.line)
            return value, ct.pointee  # type: ignore[return-value]
        if isinstance(expr, A.Index):
            ptr, elem_ct = self._indexed_pointer(expr)
            return ptr, elem_ct
        if isinstance(expr, A.Member):
            return self._member_pointer(expr)
        raise CompileError("expression is not an lvalue", expr.line)

    def _indexed_pointer(self, expr: A.Index) -> tuple[Value, C.CType]:
        base, bct = self.gen_expr(expr.base)
        index, ict = self.gen_expr(expr.index)
        if not ict.is_int:
            raise CompileError("array index must be an integer", expr.line)
        if not bct.is_ptr:
            raise CompileError(f"cannot index {bct}", expr.line)
        elem = bct.pointee
        assert elem is not None
        if elem.is_void:
            raise CompileError("cannot index void*", expr.line)
        index = self.convert(index, ict, C.LONG, expr.line)
        p = self.b.gep(
            PointerType(elem.memory_type()), base, index, elem.sizeof(), 0
        )
        return p, elem

    def _member_pointer(self, expr: A.Member) -> tuple[Value, C.CType]:
        if expr.arrow:
            base, bct = self.gen_expr(expr.base)
            if not (bct.is_ptr and bct.pointee is not None and bct.pointee.is_struct):
                raise CompileError(f"-> on non-struct-pointer ({bct})", expr.line)
            sct = bct.pointee
        else:
            base, sct = self.gen_lvalue(expr.base)
            if not sct.is_struct:
                raise CompileError(f". on non-struct ({sct})", expr.line)
        try:
            idx, fct = sct.field(expr.field)
        except KeyError as e:
            raise CompileError(str(e), expr.line) from None
        offset = sct.field_offset(idx)
        p = self.b.gep(
            PointerType(fct.memory_type()), base, self.b.const_i64(0), 0, offset
        )
        return p, fct

    # -- rvalues -----------------------------------------------------------

    def gen_expr(self, expr: A.Expr) -> tuple[Value, C.CType]:
        if isinstance(expr, A.IntLit):
            if expr.is_long or expr.value > 0x7FFFFFFF or expr.value < -0x80000000:
                ct = C.ULONG if expr.is_unsigned else C.LONG
            else:
                ct = C.UINT if expr.is_unsigned else C.INT
            return ConstantInt(IntType(ct.bits), expr.value), ct
        if isinstance(expr, A.FloatLit):
            return ConstantFloat(FloatType(64), expr.value), C.DOUBLE
        if isinstance(expr, A.NullLit):
            return ConstantNull(C.VOID_PTR.value_type()), C.VOID_PTR  # type: ignore[arg-type]
        if isinstance(expr, A.StringLit):
            return self._string_pointer(expr)
        if isinstance(expr, A.Ident):
            return self._load_identifier(expr)
        if isinstance(expr, A.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, A.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, A.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, A.Conditional):
            return self.gen_conditional(expr)
        if isinstance(expr, A.CastExpr):
            value, src = self.gen_expr(expr.operand)
            dst = self.resolve_type(expr.target)
            return self.explicit_cast(value, src, dst, expr.line), dst
        if isinstance(expr, A.SizeofType):
            return (
                ConstantInt(I64, self.resolve_type(expr.target).sizeof()),
                C.ULONG,
            )
        if isinstance(expr, A.SizeofExpr):
            ct = self._expr_ctype(expr.operand)
            return ConstantInt(I64, ct.sizeof()), C.ULONG
        if isinstance(expr, A.CallExpr):
            return self.gen_call(expr)
        if isinstance(expr, A.Index):
            ptr, elem = self._indexed_pointer(expr)
            return self._rvalue_from_pointer(ptr, elem, expr.line)
        if isinstance(expr, A.Member):
            ptr, fct = self._member_pointer(expr)
            return self._rvalue_from_pointer(ptr, fct, expr.line)
        raise CompileError(f"bad expression {expr!r}", expr.line)

    def _string_pointer(self, lit: A.StringLit) -> tuple[Value, C.CType]:
        self._string_counter += 1
        name = f".str.{self._string_counter}"
        data = lit.data + b"\x00"
        g = GlobalVariable(
            ConstantString(data).type, name, ConstantString(data), "internal", True
        )
        self.module.add_global(g)
        p = self.b.bitcast(g, PointerType(I8))
        return p, C.CHAR_PTR

    def _load_identifier(self, expr: A.Ident) -> tuple[Value, C.CType]:
        slot, ct = self.gen_lvalue(expr)
        if ct.is_array:
            return self._decay_array(slot, ct)
        if ct.is_struct:
            raise CompileError("cannot use struct as a value", expr.line)
        return self._load_slot(slot, ct, expr.name), ct

    def _decay_array(self, slot: Value, ct: C.CType) -> tuple[Value, C.CType]:
        elem = ct.element
        assert elem is not None
        p = self.b.gep(
            PointerType(elem.memory_type()), slot, self.b.const_i64(0), 0, 0
        )
        return p, C.pointer_to(elem)

    def _rvalue_from_pointer(
        self, ptr: Value, ct: C.CType, line: int
    ) -> tuple[Value, C.CType]:
        if ct.is_array:
            return self._decay_array(ptr, ct)
        if ct.is_struct:
            raise CompileError("cannot use struct as a value", line)
        return self._load_slot(ptr, ct), ct

    def _expr_ctype(self, expr: A.Expr) -> C.CType:
        """Type of an expression without emitting code (best effort for sizeof)."""
        if isinstance(expr, A.Ident):
            assert self._scope is not None
            hit = self._scope.lookup(expr.name)
            if hit is not None:
                return hit[1]
            gct = self.globals.get(expr.name)
            if gct is not None:
                return gct
            raise CompileError(f"undefined variable {expr.name!r}", expr.line)
        if isinstance(expr, A.Unary) and expr.op == "*":
            inner = self._expr_ctype(expr.operand)
            if not inner.is_ptr or inner.pointee is None:
                raise CompileError("cannot dereference non-pointer", expr.line)
            return inner.pointee
        if isinstance(expr, A.Member):
            base = self._expr_ctype(expr.base)
            sct = base.pointee if expr.arrow else base
            if sct is None or not sct.is_struct:
                raise CompileError("member of non-struct", expr.line)
            return sct.field(expr.field)[1]
        if isinstance(expr, A.Index):
            base = self._expr_ctype(expr.base)
            inner = base.element if base.is_array else base.pointee
            if inner is None:
                raise CompileError("cannot index non-array", expr.line)
            return inner
        raise CompileError("unsupported sizeof operand", expr.line)

    # -- operators ------------------------------------------------------------

    def gen_unary(self, expr: A.Unary) -> tuple[Value, C.CType]:
        op = expr.op
        if op == "&":
            ptr, ct = self.gen_lvalue(expr.operand)
            # &arr is the array's address typed as pointer-to-element.
            if ct.is_array:
                return self._decay_array(ptr, ct)
            pct = C.pointer_to(ct)
            if ct.is_ptr:
                # Slot holds i64; pointer-to-pointer value is typed ptr(i64).
                return ptr, pct
            return ptr, pct
        if op == "*":
            ptr, ct = self.gen_lvalue(expr)
            return self._rvalue_from_pointer(ptr, ct, expr.line)
        if op in ("++", "--", "post++", "post--"):
            return self._gen_incdec(expr)
        value, ct = self.gen_expr(expr.operand)
        if op == "-":
            if ct.is_int:
                pct = C.promote(ct)
                value = self.convert(value, ct, pct, expr.line)
                zero = ConstantInt(IntType(pct.bits), 0)
                return self.b.sub(zero, value), pct
            if ct.is_float:
                zero = ConstantFloat(FloatType(ct.bits), 0.0)
                return self.b.binop("fsub", zero, value), ct
            raise CompileError(f"cannot negate {ct}", expr.line)
        if op == "~":
            if not ct.is_int:
                raise CompileError(f"cannot complement {ct}", expr.line)
            pct = C.promote(ct)
            value = self.convert(value, ct, pct, expr.line)
            ones = ConstantInt(IntType(pct.bits), -1)
            return self.b.xor(value, ones), pct
        if op == "!":
            c = self._to_i1(value, ct, expr.line)
            one = self.b.cast("zext", c, I32)
            return self.b.xor(one, ConstantInt(I32, 1)), C.INT
        raise CompileError(f"bad unary operator {op!r}", expr.line)

    def _gen_incdec(self, expr: A.Unary) -> tuple[Value, C.CType]:
        ptr, ct = self.gen_lvalue(expr.operand)
        old = self._load_slot(ptr, ct)
        if ct.is_int:
            one = ConstantInt(IntType(ct.bits), 1)
            new = (
                self.b.add(old, one)
                if "++" in expr.op
                else self.b.sub(old, one)
            )
        elif ct.is_ptr:
            assert ct.pointee is not None
            step = ct.pointee.sizeof() if not ct.pointee.is_void else 1
            delta = step if "++" in expr.op else -step
            new = self.b.gep(
                old.type, old, self.b.const_i64(1), delta, 0  # type: ignore[arg-type]
            )
        else:
            raise CompileError(f"cannot increment {ct}", expr.line)
        self._store_converted_value(new, ct, ptr)
        return (old if expr.op.startswith("post") else new), ct

    def gen_binary(self, expr: A.Expr) -> tuple[Value, C.CType]:
        assert isinstance(expr, A.Binary)
        op = expr.op
        if op == ",":
            self.gen_expr(expr.lhs)
            return self.gen_expr(expr.rhs)
        if op in ("&&", "||"):
            return self._gen_logical(expr)
        lhs, lct = self.gen_expr(expr.lhs)
        rhs, rct = self.gen_expr(expr.rhs)
        return self._binary_values(op, lhs, lct, rhs, rct, expr.line)

    def _binary_values(
        self, op: str, lhs: Value, lct: C.CType, rhs: Value, rct: C.CType, line: int
    ) -> tuple[Value, C.CType]:
        # Pointer arithmetic.
        if op in ("+", "-") and (lct.is_ptr or rct.is_ptr):
            return self._pointer_arith(op, lhs, lct, rhs, rct, line)
        if op in ("==", "!=", "<", "<=", ">", ">=") and lct.is_ptr and rct.is_ptr:
            li = self.b.ptrtoint(lhs, I64)
            ri = self.b.ptrtoint(rhs, I64)
            pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                    ">": "ugt", ">=": "uge"}[op]
            c = self.b.icmp(pred, li, ri)
            return self.b.cast("zext", c, I32), C.INT
        if op in ("==", "!=") and (lct.is_ptr or rct.is_ptr):
            # pointer vs null/integer-zero
            pv, ict, iv = (lhs, rct, rhs) if lct.is_ptr else (rhs, lct, lhs)
            if isinstance(iv, ConstantInt) and iv.value == 0 or isinstance(
                iv, ConstantNull
            ):
                null = ConstantNull(pv.type)  # type: ignore[arg-type]
                c = self.b.icmp("eq" if op == "==" else "ne", pv, null)
                return self.b.cast("zext", c, I32), C.INT
            raise CompileError("pointer compared against non-null integer", line)
        if not (lct.is_arith and rct.is_arith):
            raise CompileError(f"bad operands for {op!r}: {lct}, {rct}", line)
        common = C.usual_arithmetic(lct, rct)
        lhs = self.convert(lhs, lct, common, line)
        rhs = self.convert(rhs, rct, common, line)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if common.is_float:
                pred = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
                        ">": "ogt", ">=": "oge"}[op]
                c = self.b.fcmp(pred, lhs, rhs)
            else:
                if common.signed:
                    pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                            ">": "sgt", ">=": "sge"}[op]
                else:
                    pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                            ">": "ugt", ">=": "uge"}[op]
                c = self.b.icmp(pred, lhs, rhs)
            return self.b.cast("zext", c, I32), C.INT
        if common.is_float:
            ir_op = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}.get(op)
            if ir_op is None:
                raise CompileError(f"bad float operator {op!r}", line)
            return self.b.binop(ir_op, lhs, rhs), common
        ir_op = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "sdiv" if common.signed else "udiv",
            "%": "srem" if common.signed else "urem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "ashr" if common.signed else "lshr",
        }.get(op)
        if ir_op is None:
            raise CompileError(f"bad integer operator {op!r}", line)
        return self.b.binop(ir_op, lhs, rhs), common

    def _pointer_arith(
        self, op: str, lhs: Value, lct: C.CType, rhs: Value, rct: C.CType, line: int
    ) -> tuple[Value, C.CType]:
        if op == "-" and lct.is_ptr and rct.is_ptr:
            if not lct.same(rct):
                raise CompileError("subtracting unrelated pointers", line)
            size = lct.pointee.sizeof() if not lct.pointee.is_void else 1  # type: ignore[union-attr]
            li = self.b.ptrtoint(lhs, I64)
            ri = self.b.ptrtoint(rhs, I64)
            diff = self.b.sub(li, ri)
            if size > 1:
                diff = self.b.binop("sdiv", diff, self.b.const_i64(size))
            return diff, C.LONG
        if lct.is_ptr and rct.is_int:
            pv, pct, iv, ict = lhs, lct, rhs, rct
        elif rct.is_ptr and lct.is_int and op == "+":
            pv, pct, iv, ict = rhs, rct, lhs, lct
        else:
            raise CompileError(f"bad pointer arithmetic: {lct} {op} {rct}", line)
        size = pct.pointee.sizeof() if not pct.pointee.is_void else 1  # type: ignore[union-attr]
        iv = self.convert(iv, ict, C.LONG, line)
        scale = size if op == "+" else -size
        p = self.b.gep(pv.type, pv, iv, scale, 0)  # type: ignore[arg-type]
        return p, pct

    def _gen_logical(self, expr: A.Binary) -> tuple[Value, C.CType]:
        fn = self._current.ir  # type: ignore[union-attr]
        is_and = expr.op == "&&"
        rhs_bb = fn.add_block("land.rhs" if is_and else "lor.rhs")
        end_bb = fn.add_block("land.end" if is_and else "lor.end")
        lhs_c = self.gen_condition(expr.lhs)
        lhs_end = self.b.block
        if is_and:
            self.b.cond_br(lhs_c, rhs_bb, end_bb)
        else:
            self.b.cond_br(lhs_c, end_bb, rhs_bb)
        self.b.position_at_end(rhs_bb)
        rhs_c = self.gen_condition(expr.rhs)
        rhs_end = self.b.block
        self.b.br(end_bb)
        self.b.position_at_end(end_bb)
        phi = self.b.phi(I1)
        phi.add_incoming(self.b.const_bool(not is_and), lhs_end)
        phi.add_incoming(rhs_c, rhs_end)
        return self.b.cast("zext", phi, I32), C.INT

    def gen_conditional(self, expr: A.Conditional) -> tuple[Value, C.CType]:
        fn = self._current.ir  # type: ignore[union-attr]
        cond = self.gen_condition(expr.cond)
        then_bb = fn.add_block("cond.then")
        else_bb = fn.add_block("cond.else")
        end_bb = fn.add_block("cond.end")
        self.b.cond_br(cond, then_bb, else_bb)
        self.b.position_at_end(then_bb)
        tval, tct = self.gen_expr(expr.then)
        then_end = self.b.block
        self.b.position_at_end(else_bb)
        fval, fct = self.gen_expr(expr.other)
        else_end = self.b.block
        # Find the common type.
        if tct.is_arith and fct.is_arith:
            common = C.usual_arithmetic(tct, fct)
        elif tct.is_ptr and fct.is_ptr:
            common = tct if not tct.pointee.is_void else fct  # type: ignore[union-attr]
        else:
            raise CompileError(f"?: arms disagree: {tct} vs {fct}", expr.line)
        self.b.position_at_end(then_end)
        tval = self.convert(tval, tct, common, expr.line)
        self.b.br(end_bb)
        self.b.position_at_end(else_end)
        fval = self.convert(fval, fct, common, expr.line)
        self.b.br(end_bb)
        self.b.position_at_end(end_bb)
        phi = self.b.phi(common.value_type())
        phi.add_incoming(tval, then_end)
        phi.add_incoming(fval, else_end)
        return phi, common

    def gen_assign(self, expr: A.Assign) -> tuple[Value, C.CType]:
        ptr, ct = self.gen_lvalue(expr.lhs)
        if ct.is_array or ct.is_struct:
            raise CompileError(f"cannot assign to {ct}", expr.line)
        if expr.op == "=":
            value, vct = self.gen_expr(expr.rhs)
            value = self.convert(value, vct, ct, expr.line)
        else:
            op = expr.op[:-1]  # '+=' -> '+'
            old = self._load_slot(ptr, ct)
            rhs, rct = self.gen_expr(expr.rhs)
            value, vct = self._binary_values(op, old, ct, rhs, rct, expr.line)
            value = self.convert(value, vct, ct, expr.line)
        self._store_converted_value(value, ct, ptr)
        return value, ct

    def gen_call(self, expr: A.CallExpr) -> tuple[Value, C.CType]:
        info = self.functions.get(expr.name)
        if info is None:
            raise CompileError(f"call to undeclared function {expr.name!r}", expr.line)
        if len(expr.args) < len(info.params) or (
            len(expr.args) > len(info.params) and not info.vararg
        ):
            raise CompileError(
                f"{expr.name} expects {len(info.params)} args, got {len(expr.args)}",
                expr.line,
            )
        args: list[Value] = []
        for i, arg_expr in enumerate(expr.args):
            value, vct = self.gen_expr(arg_expr)
            if i < len(info.params):
                value = self.convert(value, vct, info.params[i], expr.line)
            else:
                # Default argument promotions for varargs.
                if vct.is_int and vct.bits < 64:
                    value = self.convert(value, vct, C.LONG if vct.signed else C.ULONG, expr.line)
                elif vct.is_float and vct.bits == 32:
                    value = self.convert(value, vct, C.DOUBLE, expr.line)
                elif vct.is_ptr:
                    value = self.b.ptrtoint(value, I64)
            args.append(value)
        ret = self.b.call(info.ir, args)
        return ret, info.ret


def compile_source(source: str, module_name: str = "module") -> Module:
    """Front-end entry: parse and lower mini-C source into an IR module."""
    from .parser import parse

    unit = parse(source)
    gen = CodeGenerator(module_name)
    return gen.generate(unit)


__all__ = ["CodeGenerator", "CompileError", "compile_source"]
