"""Multi-queue completion-merge determinism (property-based).

The deterministic completion-merge contract (per-queue FIFO, seeded
queue rotation, data movement at doorbell time in global submission
order) promises that the final media image of a blkblast workload does
not depend on how many queue pairs carried it, which engine executed
the driver, or whether -O3 elided the guards.  These properties drive
randomly drawn workloads through the full grid — 1/2/4 CPUs (queues
follow CPUs via ``queues="auto"``), interp vs compiled, -O0 vs -O3 —
and require one bit-identical block-store digest across every cell.
"""

import hashlib

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.system import CaratKopSystem, SystemConfig

CPUS = (1, 2, 4)
ENGINES = ("interp", "compiled")
OPT_LEVELS = (0, 3)


@st.composite
def blk_workload(draw):
    """A small mixed read/write/flush blkblast parameterisation."""
    return {
        "count": draw(st.integers(8, 24)),
        "nsect": draw(st.integers(1, 8)),
        "pattern": draw(st.sampled_from(["seq", "rand"])),
        "seed": draw(st.integers(0, 2**32 - 1)),
        "read_frac": draw(st.integers(0, 100)),
        "flush_interval": draw(st.sampled_from([0, 4, 9, 16])),
    }


def _run_cell(cpus: int, engine: str, opt_level: int, workload: dict):
    """One grid cell: build the vblk stack, blast, digest the media."""
    system = CaratKopSystem(SystemConfig(
        machine=None, driver="vblk", cpus=cpus, queues="auto",
        engine=engine, opt_level=opt_level,
    ))
    result = system.blkblast(**workload)
    stats = system.blkdev.stats()
    digest = hashlib.sha256(bytes(system.device.store)).hexdigest()
    # Functional fingerprint only: no cycles/iops/stalls, which *do*
    # change with the queue mapping (that is the whole point of mq).
    fingerprint = {
        "digest": digest,
        "data_sig": stats["data_sig"],
        "reads": stats["reads"],
        "writes": stats["writes"],
        "flushes": stats["flushes"],
        "errors": result.errors,
        "read_bytes": stats["read_bytes"],
        "write_bytes": stats["write_bytes"],
    }
    return fingerprint, system


@settings(max_examples=5, deadline=None)
@given(blk_workload())
def test_store_digest_identical_across_cpus_engines_opt(workload):
    """The tentpole property: one digest for the whole grid."""
    fingerprints = {}
    for cpus in CPUS:
        for engine in ENGINES:
            for opt in OPT_LEVELS:
                fp, _ = _run_cell(cpus, engine, opt, workload)
                fingerprints[(cpus, engine, opt)] = fp
    baseline = fingerprints[(1, "interp", 0)]
    for cell, fp in fingerprints.items():
        assert fp == baseline, (
            f"cell {cell} diverged from (1, interp, -O0): {fp} != {baseline}"
        )


@settings(max_examples=5, deadline=None)
@given(blk_workload(), st.integers(0, 2**32 - 1))
def test_queue_rotation_seed_does_not_change_media(workload, smp_seed):
    """The merge-contract rotation start is seeded per system; the seed
    reorders *completion harvest*, never the media image."""
    digests = set()
    for seed in (0, smp_seed):
        system = CaratKopSystem(SystemConfig(
            machine=None, driver="vblk", cpus=4, queues="auto",
            smp_seed=seed,
        ))
        system.blkblast(**workload)
        digests.add(hashlib.sha256(bytes(system.device.store)).hexdigest())
    assert len(digests) == 1


def test_trace_events_carry_queue_attribution():
    """``vblk:doorbell`` and ``vblk:complete`` name the queue pair, so a
    trace of a sharded blast decomposes into per-queue streams."""
    system = CaratKopSystem(SystemConfig(
        machine=None, driver="vblk", cpus=2, queues="auto",
    ))
    trace = system.kernel.trace
    trace.configure(capacity=4096)
    trace.enable()
    for name in list(trace.points):
        if name not in ("vblk:doorbell", "vblk:complete"):
            trace.suppress(name)
    system.blkblast(count=30, nsect=2, pattern="seq", seed=3,
                    read_frac=50, flush_interval=0)
    trace.disable()
    events = trace.snapshot()
    doorbells = [e for e in events if e.name == "vblk:doorbell"]
    completes = [e for e in events if e.name == "vblk:complete"]
    # Both I/O pairs rang and completed their own streams.  (Queue 0's
    # CREATE_IOQ traffic happened at probe, before tracing went on.)
    assert {e.args["queue"] for e in doorbells} == {1, 2}
    assert {e.args["queue"] for e in completes} == {1, 2}
    io_completes = [e for e in completes if e.args["queue"] in (1, 2)]
    assert len(io_completes) == 30
    # Per-queue FIFO: each queue retires its own slots in ring order.
    for qi in (1, 2):
        idx = [e.args["index"] for e in io_completes if e.args["queue"] == qi]
        assert idx == sorted(idx)


def test_four_cpu_auto_spreads_work_across_all_io_queues():
    """Sanity anchor for the property tests: at 4 CPUs, queues="auto"
    genuinely shards — every I/O pair carries traffic, and the driver's
    per-queue counters agree with the device's."""
    fp, system = _run_cell(4, "compiled", 2, {
        "count": 40, "nsect": 2, "pattern": "seq", "seed": 7,
        "read_frac": 50, "flush_interval": 8,
    })
    assert fp["errors"] == 0
    rows = system.blkdev.queue_io_stats()
    io_rows = [r for r in rows if r["queue"] >= 1]
    assert all(r["submitted"] == 10 for r in io_rows)
    dev_rows = {r["queue"]: r for r in system.device.queue_stats()}
    for r in io_rows:
        assert dev_rows[r["queue"]]["fetched"] == r["submitted"]
        assert dev_rows[r["queue"]]["in_flight"] == 0
