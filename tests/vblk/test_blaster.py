"""blkblast determinism and access-pattern tests."""

import pytest

from repro.core.system import CaratKopSystem
from repro.vblk.blaster import PATTERNS, make_test_block


def _system(**overrides):
    kwargs = dict(driver="vblk", protect=True, opt_level=2,
                  enforce_mode="eject")
    kwargs.update(overrides)
    return CaratKopSystem(**kwargs)


def _observables(system, res):
    return (
        res.ops_done, res.reads, res.writes, res.flushes, res.errors,
        res.bytes_read, res.bytes_written,
        system.blkdev.stats(), system.device.stats(),
    )


def test_make_test_block_is_pure():
    assert make_test_block(512, 7) == make_test_block(512, 7)
    assert make_test_block(512, 7) != make_test_block(512, 8)
    assert len(make_test_block(1024, 3)) == 1024


@pytest.mark.parametrize("pattern", PATTERNS)
def test_same_seed_same_traffic(pattern):
    runs = []
    for _ in range(2):
        system = _system()
        res = system.blkblast(count=60, pattern=pattern, seed=9,
                              read_frac=40)
        runs.append(_observables(system, res))
    assert runs[0] == runs[1]


def test_different_seeds_diverge():
    sigs = []
    for seed in (1, 2):
        system = _system()
        system.blkblast(count=60, pattern="rand", seed=seed, read_frac=30)
        sigs.append(system.blkdev.stats()["data_sig"])
    assert sigs[0] != sigs[1]


def test_all_ops_complete_on_healthy_device():
    system = _system()
    res = system.blkblast(count=80, pattern="hotspot", seed=4)
    assert res.errors == 0
    assert res.ops_done == 80
    assert res.reads + res.writes + res.flushes == 80
    assert res.flushes == 80 // 16


def test_hotspot_concentrates_io():
    """Hotspot keeps 90% of requests inside a 1/32-of-the-disk window,
    so the bulk of its sector stream spans far less of the LBA range
    than the uniform pattern (compare 10th..90th percentile spreads)."""
    spread = {}
    for pattern in ("rand", "hotspot"):
        system = _system()
        trace = system.kernel.trace
        trace.configure(capacity=2048)
        trace.enable()
        for name in list(trace.points):
            if name != "vblk:fetch":
                trace.suppress(name)
        system.blkblast(count=120, pattern=pattern, seed=6, read_frac=50,
                        flush_interval=0)
        sectors = sorted(
            e.args["sector"] for e in trace.snapshot()
            if e.name == "vblk:fetch"
        )
        n = len(sectors)
        assert n == 120
        spread[pattern] = sectors[(9 * n) // 10] - sectors[n // 10]
    assert spread["hotspot"] < spread["rand"] // 4


def test_bad_arguments_rejected():
    system = _system()
    with pytest.raises(ValueError):
        system.blkblast(count=4, pattern="zipf")
    with pytest.raises(ValueError):
        system.blkblast(count=4, nsect=0)
