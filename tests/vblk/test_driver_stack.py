"""Unit tests for the guarded vblk driver stack (module + blkdev glue)."""

import pytest

from repro.core.system import CaratKopSystem
from repro.vblk import regs
from repro.vblk.blkdev import STAT_NAMES


@pytest.fixture
def system():
    # machine=None: functional mode, completions land at the doorbell
    # (the timed path is covered by the blaster + benchmark suites).
    return CaratKopSystem(driver="vblk", machine=None, protect=True,
                          opt_level=2, enforce_mode="eject")


class TestDataPath:
    def test_write_read_roundtrip(self, system):
        payload = bytes(range(256)) * 4  # 2 sectors
        assert system.blkdev.submit_write(10, payload) == 0
        rc, data = system.blkdev.submit_read(10, 2)
        assert rc == 0
        assert data == payload
        # And the media itself holds the payload.
        assert system.device.read_sectors(10, 2) == payload

    def test_flush_counts(self, system):
        assert system.blkdev.flush() == 0
        assert system.blkdev.stats()["flushes"] == 1
        assert system.device.stats()["flushes"] == 1

    def test_partial_sector_payload_rejected(self, system):
        with pytest.raises(ValueError):
            system.blkdev.submit_write(0, b"short")

    def test_data_sig_tracks_payloads(self, system):
        sig0 = system.blkdev.stats()["data_sig"]
        system.blkdev.submit_write(0, b"\xaa" * regs.SECTOR_SIZE)
        sig1 = system.blkdev.stats()["data_sig"]
        assert sig1 != sig0
        # The signature folds data, not just counts: a different payload
        # of the same size diverges.
        other = CaratKopSystem(driver="vblk", machine=None, protect=True,
                               opt_level=2, enforce_mode="eject")
        other.blkdev.submit_write(0, b"\xbb" * regs.SECTOR_SIZE)
        assert other.blkdev.stats()["data_sig"] != sig1


class TestStatPlumbing:
    def test_ioctl_stats_match_direct_calls(self, system):
        system.blkdev.submit_write(3, b"\x11" * regs.SECTOR_SIZE)
        system.blkdev.submit_read(3, 1)
        system.blkdev.flush()
        direct = system.blkdev.stats()
        for i, name in enumerate(STAT_NAMES):
            assert system.blkdev.ioctl_stat(i) == direct[name], name

    def test_capacity_stat_matches_device(self, system):
        assert (system.blkdev.stats()["capacity"]
                == system.device.capacity_sectors)


class TestInterruptMode:
    def test_irq_harvest_counts_interrupts(self, system):
        blkdev = system.blkdev
        assert blkdev.enable_interrupts() == 0
        for i in range(4):
            assert blkdev.submit_write(i, b"\x22" * regs.SECTOR_SIZE) == 0
        stats = blkdev.stats()
        assert stats["irq_count"] >= 1
        assert stats["completions"] == 4
        assert blkdev.disable_interrupts() == 0

    def test_polling_mode_raises_no_interrupts(self, system):
        blkdev = system.blkdev
        blkdev.submit_write(0, b"\x33" * regs.SECTOR_SIZE)
        assert blkdev.poll_completions() >= 0
        assert blkdev.stats()["irq_count"] == 0
