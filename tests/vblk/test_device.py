"""Unit tests for the vblk device model (no driver involved)."""

import struct

import pytest

from repro.kernel import Kernel
from repro.kernel.layout import DIRECT_MAP_BASE, direct_map_to_phys
from repro.vblk import VblkDevice, regs


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def device(kernel):
    return VblkDevice(kernel)


def _w32(device, offset, value):
    device.mmio_write(offset, 4, value)


def _r32(device, offset):
    return device.mmio_read(offset, 4)


def _setup_queue(kernel, device, entries=8):
    """Program a minimal queue from the host side; returns the ring
    virtual addresses (registers take the physical translations)."""
    alloc = kernel.kmalloc_allocator
    desc = alloc.kmalloc(entries * regs.VDESC_SIZE)
    avail = alloc.kmalloc(entries * 4)
    used = alloc.kmalloc(entries * 4)
    for base_reg, virt in ((regs.DTBAL, desc), (regs.AVBAL, avail),
                           (regs.UBAL, used)):
        phys = direct_map_to_phys(virt)
        _w32(device, base_reg, phys & 0xFFFF_FFFF)
        _w32(device, base_reg + 4, phys >> 32)
    _w32(device, regs.DTLEN, entries * regs.VDESC_SIZE)
    _w32(device, regs.VCTL, regs.VCTL_EN)
    return desc, avail, used


def _push(kernel, device, desc, avail, idx, sector, buf, length, rtype):
    """Write a descriptor + avail entry and ring the doorbell.  ``buf``
    is a kernel virtual address; raw (sub-direct-map) values pass
    through untranslated so tests can aim DMA at bogus bus addresses."""
    buf_phys = direct_map_to_phys(buf) if buf >= DIRECT_MAP_BASE else buf
    kernel.address_space.write_bytes(
        desc + idx * regs.VDESC_SIZE,
        struct.pack("<QQIHBBQ", sector, buf_phys, length, rtype, 0, 0, 0),
    )
    avt = _r32(device, regs.AVT)
    kernel.address_space.write_bytes(
        avail + (avt % 8) * 4, struct.pack("<I", idx)
    )
    _w32(device, regs.AVT, avt + 1)


class TestReset:
    def test_reset_clears_rings_but_not_media(self, kernel, device):
        device.store[0:4] = b"DATA"
        _setup_queue(kernel, device)
        _w32(device, regs.VCTL, regs.VCTL_RST)
        assert _r32(device, regs.AVH) == 0
        assert _r32(device, regs.UT) == 0
        assert not device.vctl & regs.VCTL_EN
        # Media contents survive a controller reset.
        assert bytes(device.store[0:4]) == b"DATA"

    def test_capability_register(self, device):
        assert _r32(device, regs.CAP) == device.capacity_sectors


class TestRequestValidation:
    @pytest.mark.parametrize("sector,length,rtype", [
        (0, 512, 9),                 # unknown op
        (0, 100, regs.VDESC_TYPE_READ),    # not sector-aligned
        (0, (regs.MAX_IO_SECTORS + 1) * 512, regs.VDESC_TYPE_WRITE),
        (1 << 40, 512, regs.VDESC_TYPE_READ),  # beyond capacity
        (0, 512, regs.VDESC_TYPE_FLUSH),   # flush must carry no data
    ])
    def test_bad_request_completes_with_error(self, kernel, device,
                                              sector, length, rtype):
        desc, avail, used = _setup_queue(kernel, device)
        buf = kernel.kmalloc_allocator.kmalloc(4096)
        _push(kernel, device, desc, avail, 0, sector, buf, length, rtype)
        device.sync()
        status = kernel.address_space.read_bytes(desc + 22, 1)[0]
        assert status == regs.VDESC_STATUS_DD | regs.VDESC_STATUS_ERR
        assert device.stats()["desc_errors"] == 1

    def test_good_write_then_read_roundtrip(self, kernel, device):
        desc, avail, used = _setup_queue(kernel, device)
        buf = kernel.kmalloc_allocator.kmalloc(1024)
        kernel.address_space.write_bytes(buf, b"\x5a" * 1024)
        _push(kernel, device, desc, avail, 0, 4, buf, 1024,
              regs.VDESC_TYPE_WRITE)
        device.sync()
        assert device.read_sectors(4, 2) == b"\x5a" * 1024
        rbuf = kernel.kmalloc_allocator.kmalloc(1024)
        _push(kernel, device, desc, avail, 1, 4, rbuf, 1024,
              regs.VDESC_TYPE_READ)
        device.sync()
        assert kernel.address_space.read_bytes(rbuf, 1024) == b"\x5a" * 1024
        s = device.stats()
        assert (s["reads"], s["writes"]) == (1, 1)
        assert (s["sectors_read"], s["sectors_written"]) == (2, 2)

    def test_used_ring_and_icr(self, kernel, device):
        desc, avail, used = _setup_queue(kernel, device)
        buf = kernel.kmalloc_allocator.kmalloc(512)
        _push(kernel, device, desc, avail, 3, 0, buf, 512,
              regs.VDESC_TYPE_READ)
        assert _r32(device, regs.UT) == 1
        (entry,) = struct.unpack(
            "<I", kernel.address_space.read_bytes(used, 4)
        )
        assert entry == 3
        # VICR is read-to-clear.
        assert _r32(device, regs.VICR) & regs.VICR_USED
        assert _r32(device, regs.VICR) == 0


def _setup_qblock(kernel, device, qi, entries=8):
    """Program queue block ``qi``'s rings from the host side (does NOT
    create the queue — I/O queues need a CREATE_IOQ admin command)."""
    alloc = kernel.kmalloc_allocator
    desc = alloc.kmalloc(entries * regs.VDESC_SIZE)
    avail = alloc.kmalloc(entries * 4)
    used = alloc.kmalloc(entries * 4)
    for off, virt in ((regs.QDTBAL, desc), (regs.QAVBAL, avail),
                      (regs.QUBAL, used)):
        phys = direct_map_to_phys(virt)
        _w32(device, regs.qreg(qi, off), phys & 0xFFFF_FFFF)
        _w32(device, regs.qreg(qi, off + 4), phys >> 32)
    _w32(device, regs.qreg(qi, regs.QDTLEN), entries * regs.VDESC_SIZE)
    return desc, avail, used


def _push_q(kernel, device, qi, desc, avail, idx, sector, buf, length,
            rtype, entries=8):
    """Queue-block flavour of ``_push``: post one descriptor on queue
    ``qi`` and ring that queue's doorbell."""
    buf_phys = direct_map_to_phys(buf) if buf >= DIRECT_MAP_BASE else buf
    kernel.address_space.write_bytes(
        desc + idx * regs.VDESC_SIZE,
        struct.pack("<QQIHBBQ", sector, buf_phys, length, rtype, 0, 0, 0),
    )
    avt = _r32(device, regs.qreg(qi, regs.QAVT))
    kernel.address_space.write_bytes(
        avail + (avt % entries) * 4, struct.pack("<I", idx)
    )
    _w32(device, regs.qreg(qi, regs.QAVT), avt + 1)


def _create_ioq(kernel, device, adm_desc, adm_avail, qid, slot):
    """Activate I/O queue ``qid`` through a CREATE_IOQ admin command
    (the target block's rings must already be programmed)."""
    _push_q(kernel, device, 0, adm_desc, adm_avail, slot, qid, 0, 0,
            regs.VDESC_TYPE_CREATE_IOQ)


class TestMultiQueue:
    def test_create_ioq_then_io_roundtrip(self, kernel, device):
        adm = _setup_qblock(kernel, device, 0)
        q1 = _setup_qblock(kernel, device, 1)
        _w32(device, regs.VCTL, regs.VCTL_EN)
        _create_ioq(kernel, device, adm[0], adm[1], 1, 0)
        assert _r32(device, regs.VNQ) == 1
        buf = kernel.kmalloc_allocator.kmalloc(512)
        kernel.address_space.write_bytes(buf, b"\x7e" * 512)
        _push_q(kernel, device, 1, q1[0], q1[1], 0, 9, buf, 512,
                regs.VDESC_TYPE_WRITE)
        device.sync()
        assert device.read_sectors(9, 1) == b"\x7e" * 512
        rows = device.queue_stats()
        assert rows[1]["completed"] == 1
        # The admin completion shows up only on queue 0's row.
        assert rows[0]["completed"] == 1

    def test_create_before_ring_setup_fails(self, kernel, device):
        adm = _setup_qblock(kernel, device, 0)
        _w32(device, regs.VCTL, regs.VCTL_EN)
        # Queue 2's rings were never programmed: the admin command
        # completes with an error status and the queue stays absent.
        _create_ioq(kernel, device, adm[0], adm[1], 2, 0)
        device.sync()
        status = kernel.address_space.read_bytes(adm[0] + 22, 1)[0]
        assert status & regs.VDESC_STATUS_ERR
        assert _r32(device, regs.VNQ) == 0

    def test_doorbell_on_uncreated_queue_is_inert(self, kernel, device):
        _setup_qblock(kernel, device, 0)
        q3 = _setup_qblock(kernel, device, 3)
        _w32(device, regs.VCTL, regs.VCTL_EN)
        buf = kernel.kmalloc_allocator.kmalloc(512)
        _push_q(kernel, device, 3, q3[0], q3[1], 0, 0, buf, 512,
                regs.VDESC_TYPE_WRITE)
        device.sync()
        assert device.queue_stats()[3]["fetched"] == 0
        assert any("uncreated queue 3" in line for line in kernel.dmesg_log)

    def test_delete_ioq_takes_queue_out_of_service(self, kernel, device):
        adm = _setup_qblock(kernel, device, 0)
        _setup_qblock(kernel, device, 1)
        _w32(device, regs.VCTL, regs.VCTL_EN)
        _create_ioq(kernel, device, adm[0], adm[1], 1, 0)
        assert _r32(device, regs.VNQ) == 1
        _push_q(kernel, device, 0, adm[0], adm[1], 1, 1, 0, 0,
                regs.VDESC_TYPE_DELETE_IOQ)
        device.sync()
        assert _r32(device, regs.VNQ) == 0


class TestVicrRace:
    """The satellite-1 regression: with completions pending on several
    queues at once, no read-to-clear path may wipe another queue's
    cause bit before its own ISR observes it."""

    def _two_queues_with_completions(self, kernel, device):
        adm = _setup_qblock(kernel, device, 0)
        q1 = _setup_qblock(kernel, device, 1)
        q2 = _setup_qblock(kernel, device, 2)
        _w32(device, regs.VCTL, regs.VCTL_EN)
        _create_ioq(kernel, device, adm[0], adm[1], 1, 0)
        _create_ioq(kernel, device, adm[0], adm[1], 2, 1)
        buf = kernel.kmalloc_allocator.kmalloc(512)
        _push_q(kernel, device, 1, q1[0], q1[1], 0, 0, buf, 512,
                regs.VDESC_TYPE_WRITE)
        _push_q(kernel, device, 2, q2[0], q2[1], 0, 8, buf, 512,
                regs.VDESC_TYPE_WRITE)
        device.sync()

    def test_qvicr_clears_only_own_bit(self, kernel, device):
        self._two_queues_with_completions(kernel, device)
        assert device.vicr & regs.vicr_q(1)
        assert device.vicr & regs.vicr_q(2)
        # Queue 1's ISR reads its own cause register...
        assert _r32(device, regs.qreg(1, regs.QVICR)) == 1
        # ...and queue 2's completion is still pending, NOT wiped.
        assert device.vicr & regs.vicr_q(2)
        assert _r32(device, regs.qreg(2, regs.QVICR)) == 1
        # Both causes delivered exactly once.
        assert _r32(device, regs.qreg(1, regs.QVICR)) == 0
        assert _r32(device, regs.qreg(2, regs.QVICR)) == 0

    def test_aggregate_read_clears_only_observed_bits(self, kernel, device):
        self._two_queues_with_completions(kernel, device)
        # A cause that lands after the aggregate read's snapshot is
        # taken must survive the clear.  Simulate the narrow window by
        # injecting a foreign bit the read does not return.
        observed = _r32(device, regs.VICR)
        assert observed & regs.vicr_q(1) and observed & regs.vicr_q(2)
        device.vicr |= regs.vicr_q(3)
        assert device.vicr & regs.vicr_q(3)
        # The late bit is returned (and cleared) by the NEXT read, not
        # silently lost by the previous one.
        assert _r32(device, regs.VICR) == regs.vicr_q(3)

    def test_per_queue_vectors_are_distinct(self, kernel, device):
        assert len(set(device.irq_lines)) == regs.NUM_QUEUE_BLOCKS
        assert device.irq_line == device.irq_lines[0]


class TestDmaFaults:
    def test_unmapped_buffer_master_aborts(self, kernel, device):
        desc, avail, used = _setup_queue(kernel, device)
        _push(kernel, device, desc, avail, 0, 0, 0x2_0000_0000, 512,
              regs.VDESC_TYPE_WRITE)
        device.sync()
        assert device.stats()["dma_errors"] == 1
        assert not device.vctl & regs.VCTL_EN
