"""Unit tests for the vblk device model (no driver involved)."""

import struct

import pytest

from repro.kernel import Kernel
from repro.kernel.layout import DIRECT_MAP_BASE, direct_map_to_phys
from repro.vblk import VblkDevice, regs


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def device(kernel):
    return VblkDevice(kernel)


def _w32(device, offset, value):
    device.mmio_write(offset, 4, value)


def _r32(device, offset):
    return device.mmio_read(offset, 4)


def _setup_queue(kernel, device, entries=8):
    """Program a minimal queue from the host side; returns the ring
    virtual addresses (registers take the physical translations)."""
    alloc = kernel.kmalloc_allocator
    desc = alloc.kmalloc(entries * regs.VDESC_SIZE)
    avail = alloc.kmalloc(entries * 4)
    used = alloc.kmalloc(entries * 4)
    for base_reg, virt in ((regs.DTBAL, desc), (regs.AVBAL, avail),
                           (regs.UBAL, used)):
        phys = direct_map_to_phys(virt)
        _w32(device, base_reg, phys & 0xFFFF_FFFF)
        _w32(device, base_reg + 4, phys >> 32)
    _w32(device, regs.DTLEN, entries * regs.VDESC_SIZE)
    _w32(device, regs.VCTL, regs.VCTL_EN)
    return desc, avail, used


def _push(kernel, device, desc, avail, idx, sector, buf, length, rtype):
    """Write a descriptor + avail entry and ring the doorbell.  ``buf``
    is a kernel virtual address; raw (sub-direct-map) values pass
    through untranslated so tests can aim DMA at bogus bus addresses."""
    buf_phys = direct_map_to_phys(buf) if buf >= DIRECT_MAP_BASE else buf
    kernel.address_space.write_bytes(
        desc + idx * regs.VDESC_SIZE,
        struct.pack("<QQIHBBQ", sector, buf_phys, length, rtype, 0, 0, 0),
    )
    avt = _r32(device, regs.AVT)
    kernel.address_space.write_bytes(
        avail + (avt % 8) * 4, struct.pack("<I", idx)
    )
    _w32(device, regs.AVT, avt + 1)


class TestReset:
    def test_reset_clears_rings_but_not_media(self, kernel, device):
        device.store[0:4] = b"DATA"
        _setup_queue(kernel, device)
        _w32(device, regs.VCTL, regs.VCTL_RST)
        assert _r32(device, regs.AVH) == 0
        assert _r32(device, regs.UT) == 0
        assert not device.vctl & regs.VCTL_EN
        # Media contents survive a controller reset.
        assert bytes(device.store[0:4]) == b"DATA"

    def test_capability_register(self, device):
        assert _r32(device, regs.CAP) == device.capacity_sectors


class TestRequestValidation:
    @pytest.mark.parametrize("sector,length,rtype", [
        (0, 512, 9),                 # unknown op
        (0, 100, regs.VDESC_TYPE_READ),    # not sector-aligned
        (0, (regs.MAX_IO_SECTORS + 1) * 512, regs.VDESC_TYPE_WRITE),
        (1 << 40, 512, regs.VDESC_TYPE_READ),  # beyond capacity
        (0, 512, regs.VDESC_TYPE_FLUSH),   # flush must carry no data
    ])
    def test_bad_request_completes_with_error(self, kernel, device,
                                              sector, length, rtype):
        desc, avail, used = _setup_queue(kernel, device)
        buf = kernel.kmalloc_allocator.kmalloc(4096)
        _push(kernel, device, desc, avail, 0, sector, buf, length, rtype)
        device.sync()
        status = kernel.address_space.read_bytes(desc + 22, 1)[0]
        assert status == regs.VDESC_STATUS_DD | regs.VDESC_STATUS_ERR
        assert device.stats()["desc_errors"] == 1

    def test_good_write_then_read_roundtrip(self, kernel, device):
        desc, avail, used = _setup_queue(kernel, device)
        buf = kernel.kmalloc_allocator.kmalloc(1024)
        kernel.address_space.write_bytes(buf, b"\x5a" * 1024)
        _push(kernel, device, desc, avail, 0, 4, buf, 1024,
              regs.VDESC_TYPE_WRITE)
        device.sync()
        assert device.read_sectors(4, 2) == b"\x5a" * 1024
        rbuf = kernel.kmalloc_allocator.kmalloc(1024)
        _push(kernel, device, desc, avail, 1, 4, rbuf, 1024,
              regs.VDESC_TYPE_READ)
        device.sync()
        assert kernel.address_space.read_bytes(rbuf, 1024) == b"\x5a" * 1024
        s = device.stats()
        assert (s["reads"], s["writes"]) == (1, 1)
        assert (s["sectors_read"], s["sectors_written"]) == (2, 2)

    def test_used_ring_and_icr(self, kernel, device):
        desc, avail, used = _setup_queue(kernel, device)
        buf = kernel.kmalloc_allocator.kmalloc(512)
        _push(kernel, device, desc, avail, 3, 0, buf, 512,
              regs.VDESC_TYPE_READ)
        assert _r32(device, regs.UT) == 1
        (entry,) = struct.unpack(
            "<I", kernel.address_space.read_bytes(used, 4)
        )
        assert entry == 3
        # VICR is read-to-clear.
        assert _r32(device, regs.VICR) & regs.VICR_USED
        assert _r32(device, regs.VICR) == 0


class TestDmaFaults:
    def test_unmapped_buffer_master_aborts(self, kernel, device):
        desc, avail, used = _setup_queue(kernel, device)
        _push(kernel, device, desc, avail, 0, 0, 0x2_0000_0000, 512,
              regs.VDESC_TYPE_WRITE)
        device.sync()
        assert device.stats()["dma_errors"] == 1
        assert not device.vctl & regs.VCTL_EN
