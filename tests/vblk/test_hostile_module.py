"""S6: a hostile vblk module is never certified and never escapes.

The module programs a descriptor whose DMA target lies outside every
policy region (the user half), and also dereferences that target
directly.  Three fences must each hold independently:

1. The -O3 abstract interpreter refuses to certify the hostile guard —
   it stays dynamic, so the runtime deny survives verification.
2. A forged certificate claiming the guard proven is caught at insmod
   (rejected under ``strict``, demoted to full guarding by default).
3. The *device* side: a descriptor pointing DMA at an unmapped/denied
   target draws a master abort — the device quiesces itself and the
   fault never reaches the CPU.
"""

import dataclasses

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel, LoadError
from repro.policy import CaratPolicyModule, PolicyManager
from repro.vblk import VblkDevice, regs

EFAULT = 14

#: The doorbell target no policy region ever granted: 0x2_0000_0000.
EVIL_DMA_TARGET = 8589934592

HOSTILE_VBLK = f"""
enum {{
    REG_VCTL  = {regs.VCTL:#x},
    REG_DTBAL = {regs.DTBAL:#x},
    REG_DTBAH = {regs.DTBAH:#x},
    REG_DTLEN = {regs.DTLEN:#x},
    REG_AVBAL = {regs.AVBAL:#x},
    REG_AVBAH = {regs.AVBAH:#x},
    REG_UBAL  = {regs.UBAL:#x},
    REG_UBAH  = {regs.UBAH:#x},
    REG_AVT   = {regs.AVT:#x},
    VCTL_EN   = {regs.VCTL_EN}
}};

extern void *kmalloc(long size, int flags);
extern long ioremap(long phys, long size);
extern long virt_to_phys(void *p);

long mmio;
long desc_virt;
long avail_virt;
long used_virt;

void hw32(int reg, unsigned int value) {{
    unsigned int *p = (unsigned int *)(mmio + (long)reg);
    *p = value;
}}

__export int hostile_probe(long phys) {{
    mmio = ioremap(phys, 4096);
    if (mmio == 0) {{ return -1; }}
    desc_virt = (long)kmalloc(2048, 0);
    avail_virt = (long)kmalloc(256, 0);
    used_virt = (long)kmalloc(256, 0);
    if (desc_virt == 0 || avail_virt == 0 || used_virt == 0) {{ return -1; }}
    hw32(REG_DTBAL, (unsigned int)virt_to_phys((void *)desc_virt));
    hw32(REG_DTBAH, (unsigned int)(virt_to_phys((void *)desc_virt) >> 32));
    hw32(REG_DTLEN, 64 * 32);
    hw32(REG_AVBAL, (unsigned int)virt_to_phys((void *)avail_virt));
    hw32(REG_AVBAH, (unsigned int)(virt_to_phys((void *)avail_virt) >> 32));
    hw32(REG_UBAL, (unsigned int)virt_to_phys((void *)used_virt));
    hw32(REG_UBAH, (unsigned int)(virt_to_phys((void *)used_virt) >> 32));
    hw32(REG_VCTL, VCTL_EN);
    return 0;
}}

__export long hostile_deref(long seed) {{
    /* Store straight through the out-of-policy DMA target. */
    long *evil = (long *){EVIL_DMA_TARGET};
    *evil = seed;
    return seed;
}}

__export long hostile_ring(long sector) {{
    /* Descriptor 0: a WRITE whose buffer is the forbidden target.
       Every store here lands in the module's own kmalloc'd rings —
       all in-policy — so only the DEVICE can catch the DMA. */
    long *d = (long *)desc_virt;
    d[0] = sector;
    d[1] = {EVIL_DMA_TARGET};
    int *len_p = (int *)(desc_virt + 16);
    *len_p = 512;
    short *type_p = (short *)(desc_virt + 20);
    *type_p = 1;
    char *status_p = (char *)(desc_virt + 22);
    *status_p = 0;
    int *slot_p = (int *)avail_virt;
    *slot_p = 0;
    hw32(REG_AVT, 1);
    return 0;
}}
"""

HOSTILE_NAME = "vblk_hostile"


def _cell(mode="eject", verify_policy="demote"):
    kernel = Kernel(verify_policy=verify_policy)
    policy = CaratPolicyModule(kernel, mode=mode).install()
    PolicyManager(kernel).install_two_region_policy()
    device = VblkDevice(kernel)
    return kernel, policy, device


def _compile_o3(policy):
    return compile_module(HOSTILE_VBLK, CompileOptions(
        module_name=HOSTILE_NAME, protect=True, opt_level=3,
        verify_table=policy.index,
    ))


def test_hostile_guard_never_certified():
    _, policy, _ = _cell()
    compiled = _compile_o3(policy)
    assert compiled.certificate is not None
    assert compiled.guards_dynamic > 0, (
        "the verifier certified the out-of-policy DMA store"
    )


def test_runtime_deny_survives_verified_load():
    kernel, policy, device = _cell(mode="eject")
    compiled = _compile_o3(policy)
    loaded = kernel.insmod(compiled)
    assert loaded.verify_state == "verified"
    assert kernel.run_function(loaded, "hostile_probe",
                               [device.phys_base]) == 0
    rc = kernel.run_function(loaded, "hostile_deref", [7])
    assert rc == -EFAULT
    assert loaded.ejected
    assert HOSTILE_NAME not in kernel.lsmod()
    assert policy.violations[HOSTILE_NAME] >= 1


def test_forged_certificate_refused_at_insmod():
    """Flipping every verdict to "proven" must not buy a single elision:
    strict refuses the load outright, demote loads it fully dynamic."""
    for verify_policy, expect_load in (("strict", False), ("demote", True)):
        kernel, policy, _ = _cell(verify_policy=verify_policy)
        compiled = _compile_o3(policy)
        cert = compiled.certificate
        forged = tuple(
            (fn, tuple(1 for _ in bits)) for fn, bits in cert.verdicts
        )
        compiled = dataclasses.replace(
            compiled, certificate=dataclasses.replace(cert, verdicts=forged)
        )
        if expect_load:
            loaded = kernel.insmod(compiled)
            assert loaded.verify_state.startswith("demoted")
            assert not loaded.elided_guards
        else:
            with pytest.raises(LoadError):
                kernel.insmod(compiled)
            assert HOSTILE_NAME not in kernel.loader.loaded


def test_device_master_aborts_out_of_policy_dma():
    """The in-policy ring writes sail through the CPU guards, so the
    device is the last fence: the DMA engine master-aborts on the
    forbidden buffer and quiesces instead of faulting the CPU."""
    kernel, policy, device = _cell(mode="panic")
    compiled = _compile_o3(policy)
    loaded = kernel.insmod(compiled)
    assert kernel.run_function(loaded, "hostile_probe",
                               [device.phys_base]) == 0
    rc = kernel.run_function(loaded, "hostile_ring", [3])
    assert rc == 0  # the CPU side never violated: no panic, no eject
    assert kernel.panicked is None
    assert HOSTILE_NAME in kernel.lsmod()
    stats = device.stats()
    assert stats["dma_errors"] == 1
    assert not device.vctl & regs.VCTL_EN  # device disabled itself
    assert any("master abort" in line for line in kernel.dmesg_log)
