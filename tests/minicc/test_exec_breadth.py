"""Additional execution breadth: C idioms the driver-class code relies on."""

import pytest


class TestPointerIdioms:
    def test_pointer_truthiness(self, run_c):
        src = """
        __export int f(int use) {
            int x = 9;
            int *p = null;
            if (use) { p = &x; }
            if (p) { return *p; }
            return -1;
        }
        """
        assert run_c(src, "f", 1) == 9
        assert run_c(src, "f", 0, signed_bits=32) == -1

    def test_ternary_over_pointers(self, run_c):
        src = """
        __export int f(int which) {
            int a = 1;
            int b = 2;
            int *p = which ? &a : &b;
            return *p;
        }
        """
        assert run_c(src, "f", 1) == 1
        assert run_c(src, "f", 0) == 2

    def test_pointer_walk_with_compare(self, run_c):
        src = """
        __export long f(void) {
            long xs[6];
            for (int i = 0; i < 6; i++) { xs[i] = i + 1; }
            long s = 0;
            long *end = xs + 6;
            for (long *p = xs; p < end; p++) { s += *p; }
            return s;
        }
        """
        assert run_c(src, "f") == 21

    def test_void_pointer_passthrough(self, run_c):
        src = """
        static void *identity(void *p) { return p; }
        __export int f(void) {
            int x = 31;
            int *q = (int *)identity(&x);
            return *q;
        }
        """
        assert run_c(src, "f") == 31

    def test_char_pointer_strlen_idiom(self, run_c):
        src = """
        __export int f(void) {
            char *s = "hello world";
            int n = 0;
            while (s[n]) { n++; }
            return n;
        }
        """
        assert run_c(src, "f") == 11

    def test_byte_swab_through_casts(self, run_c):
        src = """
        __export long f(void) {
            long v = 0x1122334455667788;
            unsigned char *b = (unsigned char *)&v;
            unsigned char t = b[0]; b[0] = b[7]; b[7] = t;
            return v;
        }
        """
        assert run_c(src, "f", signed_bits=0) == 0x8822334455667711


class TestArithmeticEdges:
    def test_unsigned_wraparound_loop(self, run_c):
        src = """
        __export int f(void) {
            unsigned char i = 250;
            int steps = 0;
            while (i != 4) { i++; steps++; }
            return steps;   /* wraps 250..255,0..4 */
        }
        """
        assert run_c(src, "f") == 10

    def test_mixed_width_compare(self, run_c):
        src = """
        __export int f(void) {
            unsigned short small = 0xFFFF;
            long big = 0xFFFF;
            return small == big;
        }
        """
        assert run_c(src, "f") == 1

    def test_sizeof_expressions(self, run_c):
        src = """
        struct wide { long a; long b; char c; };
        struct wide g;
        __export long f(void) {
            long *p = &g.a;
            return sizeof(g) * 100 + sizeof(g.a) * 10 + sizeof(*p);
        }
        """
        assert run_c(src, "f") == 24 * 100 + 8 * 10 + 8

    def test_modulo_in_ring_index(self, run_c):
        src = """
        __export int f(int i, int n) { return (i + 1) % n; }
        """
        assert run_c(src, "f", 255, 256) == 0
        assert run_c(src, "f", 10, 256) == 11

    def test_bitfield_style_packing(self, run_c):
        src = """
        __export int f(int cmd, int flags) {
            int word = (cmd & 0xFF) | ((flags & 0xF) << 8);
            return (word >> 8) & 0xF;
        }
        """
        assert run_c(src, "f", 0x41, 0x9) == 0x9

    def test_do_while_with_continue(self, run_c):
        src = """
        __export int f(void) {
            int i = 0;
            int taken = 0;
            do {
                i++;
                if (i % 2) { continue; }
                taken++;
            } while (i < 10);
            return taken;
        }
        """
        assert run_c(src, "f") == 5

    def test_switch_on_char(self, run_c):
        src = """
        __export int f(int c) {
            switch (c) {
                case 'a': return 1;
                case 'z': return 26;
                default: return 0;
            }
        }
        """
        assert run_c(src, "f", ord("a")) == 1
        assert run_c(src, "f", ord("z")) == 26
        assert run_c(src, "f", ord("q")) == 0

    def test_deeply_nested_expression(self, run_c):
        src = """
        __export long f(long x) {
            return ((((x + 1) * 2 - 3) | 4) ^ 5) & 0xFFFF;
        }
        """
        x = 77
        assert run_c(src, "f", x) == ((((x + 1) * 2 - 3) | 4) ^ 5) & 0xFFFF


class TestStructsAdvanced:
    def test_array_of_struct_pointers_via_i64(self, run_c):
        src = """
        extern void *kmalloc(long size, int flags);
        struct item { long v; };
        struct item *slots[4];
        __export long f(void) {
            for (int i = 0; i < 4; i++) {
                slots[i] = (struct item *)kmalloc(8, 0);
                slots[i]->v = (long)i * 11;
            }
            long s = 0;
            for (int i = 0; i < 4; i++) { s += slots[i]->v; }
            return s;
        }
        """
        assert run_c(src, "f") == 0 + 11 + 22 + 33

    def test_struct_field_pointer_passed_out(self, run_c):
        src = """
        struct pair { long a; long b; };
        static long *second(struct pair *p) { return &p->b; }
        __export long f(void) {
            struct pair p;
            p.a = 5;
            *second(&p) = 6;
            return p.a * 10 + p.b;
        }
        """
        assert run_c(src, "f") == 56

    def test_struct_array_inside_struct(self, run_c):
        src = """
        struct ring { int head; int slots[4]; };
        struct ring r;
        __export int f(void) {
            r.head = 2;
            for (int i = 0; i < 4; i++) { r.slots[i] = i * 3; }
            return r.slots[r.head];
        }
        """
        assert run_c(src, "f") == 6

    def test_self_referential_list_reversal(self, run_c):
        src = """
        extern void *kmalloc(long size, int flags);
        struct node { long v; struct node *next; };
        __export long f(int n) {
            struct node *head = null;
            for (int i = 0; i < n; i++) {
                struct node *nd = (struct node *)kmalloc(16, 0);
                nd->v = i;
                nd->next = head;
                head = nd;
            }
            /* reverse */
            struct node *prev = null;
            while (head) {
                struct node *nxt = head->next;
                head->next = prev;
                prev = head;
                head = nxt;
            }
            /* now ascending: fold digits */
            long out = 0;
            for (struct node *p = prev; p; p = p->next) {
                out = out * 10 + p->v;
            }
            return out;
        }
        """
        assert run_c(src, "f", 5) == 1234  # 0,1,2,3,4 -> 01234


class TestIRFloatPrinting:
    def test_float_constants_roundtrip_in_ir(self):
        from repro.ir import (
            F64, Function, FunctionType, IRBuilder, Module,
            parse_module, print_module, verify_module,
        )

        m = Module("floats")
        fn = Function("fp", FunctionType(F64, [F64]), ["x"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        y = b.binop("fmul", fn.args[0], b.const_float(F64, 2.5))
        z = b.binop("fadd", y, b.const_float(F64, -0.125))
        b.ret(z)
        text = print_module(m)
        m2 = parse_module(text)
        verify_module(m2)
        assert print_module(m2) == text
