"""Parser tests: AST shape and syntax errors."""

import pytest

from repro.minicc import cast as A
from repro.minicc.parser import CParseError, parse


def parse_one(src):
    unit = parse(src)
    assert len(unit.items) >= 1
    return unit.items[-1]


class TestTopLevel:
    def test_global_decl(self):
        g = parse_one("int counter;")
        assert isinstance(g, A.GlobalDecl)
        assert g.name == "counter"

    def test_global_with_init(self):
        g = parse_one("long x = 42;")
        assert isinstance(g.init, A.IntLit) and g.init.value == 42

    def test_qualified_globals(self):
        g = parse_one("static const unsigned long mask = 7;")
        assert g.is_static and g.is_const
        assert isinstance(g.type, A.NamedType) and g.type.unsigned

    def test_extern_global(self):
        g = parse_one("extern int jiffies;")
        assert g.is_extern

    def test_pointer_declarator(self):
        g = parse_one("char **argv;")
        assert isinstance(g.type, A.PointerTo)
        assert isinstance(g.type.inner, A.PointerTo)

    def test_array_declarator(self):
        g = parse_one("int table[16];")
        assert isinstance(g.type, A.ArrayOf) and g.type.count == 16

    def test_multi_dimensional_array(self):
        g = parse_one("int grid[4][8];")
        assert g.type.count == 4 and g.type.inner.count == 8

    def test_array_size_constant_expr(self):
        g = parse_one("enum { N = 8 }; int buf[N * 2];")
        assert g.type.count == 16

    def test_function_definition(self):
        f = parse_one("int add(int a, int b) { return a + b; }")
        assert isinstance(f, A.FunctionDef)
        assert [p.name for p in f.params] == ["a", "b"]
        assert f.body is not None

    def test_function_declaration(self):
        f = parse_one("extern void kfree(void *p);")
        assert f.body is None and f.is_extern

    def test_void_parameter_list(self):
        f = parse_one("int f(void) { return 0; }")
        assert f.params == []

    def test_vararg(self):
        f = parse_one("extern int printk(char *fmt, ...);")
        assert f.vararg

    def test_export_qualifier(self):
        f = parse_one("__export int entry(void) { return 0; }")
        assert f.is_export

    def test_array_param_decays(self):
        f = parse_one("long sum(long xs[], int n) { return 0; }")
        assert isinstance(f.params[0].type, A.PointerTo)


class TestStructsEnums:
    def test_struct_def(self):
        s = parse_one("struct point { int x; int y; };")
        assert isinstance(s, A.StructDef)
        assert [n for _, n in s.fields] == ["x", "y"]

    def test_struct_multi_declarator_fields(self):
        s = parse_one("struct v { int a, b; long c; };")
        assert [n for _, n in s.fields] == ["a", "b", "c"]

    def test_struct_self_pointer(self):
        s = parse_one("struct node { int v; struct node *next; };")
        field_type = s.fields[1][0]
        assert isinstance(field_type, A.PointerTo)

    def test_enum_values(self):
        unit = parse("enum { A, B = 10, C };")
        e = unit.items[0]
        assert e.constants == [("A", 0), ("B", 10), ("C", 11)]

    def test_enum_constant_expressions(self):
        unit = parse("enum { X = 1 << 4, Y = X | 1 };")
        assert dict(unit.items[0].constants) == {"X": 16, "Y": 17}

    def test_enum_constants_fold_in_expressions(self):
        f = parse_one("enum { K = 5 }; int f(void) { return K; }")
        ret = f.body.statements[0]
        assert isinstance(ret.value, A.IntLit) and ret.value.value == 5


class TestStatements:
    def body(self, stmts):
        return parse_one(f"void f(void) {{ {stmts} }}").body.statements

    def test_if_else(self):
        (s,) = self.body("if (1) return; else return;")
        assert isinstance(s, A.If) and s.other is not None

    def test_dangling_else_binds_inner(self):
        (s,) = self.body("if (1) if (2) return; else return;")
        assert s.other is None and s.then.other is not None

    def test_while(self):
        (s,) = self.body("while (1) { }")
        assert isinstance(s, A.While)

    def test_do_while(self):
        (s,) = self.body("do { } while (0);")
        assert isinstance(s, A.DoWhile)

    def test_for_all_clauses(self):
        (s,) = self.body("for (int i = 0; i < 4; i++) { }")
        assert isinstance(s.init, A.LocalDecl)
        assert s.cond is not None and s.step is not None

    def test_for_empty_clauses(self):
        (s,) = self.body("for (;;) break;")
        assert s.init is None and s.cond is None and s.step is None

    def test_switch_cases(self):
        (s,) = self.body(
            "switch (1) { case 0: break; case 1: case 2: break; default: break; }"
        )
        assert isinstance(s, A.SwitchStmt)
        assert [c.values for c in s.cases] == [[0], [1, 2], []]
        assert s.cases[2].is_default

    def test_multi_declarator_locals(self):
        stmts = self.body("int a = 1, b = 2;")
        assert isinstance(stmts[0], A.Block)
        assert len(stmts[0].statements) == 2

    def test_asm_statement(self):
        (s,) = self.body('__asm__("cli");')
        assert isinstance(s, A.AsmStmt) and s.text == "cli"

    def test_break_continue(self):
        stmts = self.body("while (1) { break; } while (1) { continue; }")
        assert isinstance(stmts[0].body.statements[0], A.Break)
        assert isinstance(stmts[1].body.statements[0], A.Continue)


class TestExpressions:
    def expr(self, text):
        f = parse_one(f"void f(void) {{ {text}; }}")
        return f.body.statements[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("x = 1 + 2 * 3")
        assert e.rhs.op == "+"
        assert e.rhs.rhs.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self.expr("y = 1 << 2 < 3")
        assert e.rhs.op == "<"

    def test_logical_vs_bitwise(self):
        e = self.expr("y = a & b && c | d")
        assert e.rhs.op == "&&"

    def test_assignment_right_associative(self):
        e = self.expr("a = b = 1")
        assert isinstance(e.rhs, A.Assign)

    def test_compound_assignment(self):
        assert self.expr("a += 2").op == "+="

    def test_ternary(self):
        e = self.expr("y = a ? b : c")
        assert isinstance(e.rhs, A.Conditional)

    def test_unary_chain(self):
        e = self.expr("y = !*p")
        assert e.rhs.op == "!" and e.rhs.operand.op == "*"

    def test_postfix_vs_prefix_incr(self):
        assert self.expr("i++").op == "post++"
        assert self.expr("++i").op == "++"

    def test_cast_expression(self):
        e = self.expr("y = (long)x")
        assert isinstance(e.rhs, A.CastExpr)

    def test_parenthesized_not_cast(self):
        e = self.expr("y = (x) + 1")
        assert e.rhs.op == "+"

    def test_sizeof_type_and_expr(self):
        assert isinstance(self.expr("y = sizeof(long)").rhs, A.SizeofType)
        assert isinstance(self.expr("y = sizeof(y)").rhs, A.SizeofExpr)

    def test_member_chains(self):
        e = self.expr("s.a->b.c")
        assert isinstance(e, A.Member) and e.field == "c"
        assert e.base.arrow is False or e.base.field == "b"

    def test_index_and_call(self):
        e = self.expr("f(a[1], 2)")
        assert isinstance(e, A.CallExpr)
        assert isinstance(e.args[0], A.Index)

    def test_comma_expression(self):
        e = self.expr("a = (1, 2)")
        assert e.rhs.op == ","


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "int;",
            "int f( { }",
            "int f(void) { return }",
            "struct { int x; };",           # anonymous struct unsupported
            "int f(void) { case 1: ; }",    # case outside switch
            "int f(void) { switch (1) { int x; } }",
            "int a = ;",
            "int f(void) { x ?? y; }",
        ],
    )
    def test_syntax_errors(self, src):
        with pytest.raises(CParseError):
            parse(src)
