"""Codegen diagnostics: the type errors a C front end must reject."""

import pytest

from repro.minicc import CompileError, compile_source


def reject(src, match=None):
    with pytest.raises(CompileError, match=match):
        compile_source(src)


class TestDeclarations:
    def test_undefined_variable(self):
        reject("__export int f(void) { return x; }", "undefined variable")

    def test_undeclared_function(self):
        reject("__export int f(void) { return g(); }", "undeclared function")

    def test_redefined_variable_same_scope(self):
        reject("__export int f(void) { int x; int x; return 0; }", "redefinition")

    def test_shadowing_in_inner_scope_is_fine(self):
        compile_source("__export int f(void) { int x = 1; { int x = 2; } return x; }")

    def test_redefined_function(self):
        reject(
            "int f(void) { return 0; } int f(void) { return 1; }",
            "redefinition",
        )

    def test_conflicting_declaration(self):
        reject(
            "extern int f(int a); int f(void) { return 0; }",
            "conflicting",
        )

    def test_redefined_global(self):
        reject("int x; long x;", "redefinition")

    def test_unknown_struct(self):
        reject("__export int f(struct nope *p) { return 0; }", "unknown struct")

    def test_struct_by_value_param(self):
        reject(
            "struct s { int a; }; int f(struct s v) { return 0; }",
            "by pointer",
        )

    def test_struct_return(self):
        reject(
            "struct s { int a; }; struct s f(void) { }",
            "aggregates",
        )

    def test_void_variable(self):
        reject("__export int f(void) { void v; return 0; }", "void")

    def test_struct_containing_itself(self):
        reject("struct s { int a; struct s inner; };", "contains itself")

    def test_duplicate_struct_field(self):
        reject("struct s { int a; int a; };", "duplicate field")

    def test_extern_global_with_initializer(self):
        reject("extern int x = 5;", "extern global with initializer")

    def test_zero_length_array(self):
        reject("int xs[0];", "positive")


class TestExpressions:
    def test_assign_to_rvalue(self):
        reject("__export int f(void) { 1 = 2; return 0; }", "not an lvalue")

    def test_deref_non_pointer(self):
        reject("__export int f(int x) { return *x; }", "dereference")

    def test_deref_void_pointer(self):
        reject(
            "__export int f(void *p) { return *p; }",
            "void",
        )

    def test_index_non_pointer(self):
        reject("__export int f(int x) { return x[0]; }", "index")

    def test_member_of_non_struct(self):
        reject("__export int f(int x) { return x.field; }", "non-struct")

    def test_arrow_on_non_pointer(self):
        # `v->a` on a struct value: the base cannot even be used as a value.
        reject(
            "struct s { int a; }; __export int f(void) "
            "{ struct s v; return v->a; }",
            "struct",
        )

    def test_unknown_field(self):
        reject(
            "struct s { int a; }; __export int f(void) "
            "{ struct s v; return v.b; }",
            "no field",
        )

    def test_call_arity(self):
        reject(
            "static int g(int a) { return a; } "
            "__export int f(void) { return g(1, 2); }",
            "expects 1 args",
        )

    def test_implicit_pointer_conversion(self):
        reject(
            "__export int f(long *p) { int *q = p; return *q; }",
            "implicit pointer conversion",
        )

    def test_implicit_int_to_pointer(self):
        reject(
            "__export int f(long x) { int *p = x; return *p; }",
            "implicit int-to-pointer",
        )

    def test_void_pointer_converts_freely(self):
        compile_source(
            "__export int f(void *p) { int *q = p; void *r = q; return 0; }"
        )

    def test_pointer_plus_pointer(self):
        reject(
            "__export long f(int *a, int *b) { return (long)(a + b); }",
            "pointer arithmetic",
        )

    def test_subtract_unrelated_pointers(self):
        reject(
            "__export long f(int *a, long *b) { return a - b; }",
            "unrelated",
        )

    def test_negate_pointer(self):
        reject("__export long f(int *p) { return (long)-p; }", "negate")

    def test_break_outside_loop(self):
        reject("__export int f(void) { break; return 0; }", "break outside")

    def test_continue_outside_loop(self):
        reject("__export int f(void) { continue; return 0; }", "continue outside")

    def test_return_value_from_void(self):
        reject("__export void f(void) { return 1; }", "void function")

    def test_return_without_value(self):
        reject("__export int f(void) { return; }", "without value")

    def test_struct_as_value(self):
        reject(
            "struct s { int a; }; struct s g; "
            "__export int f(void) { g = g; return 0; }",
            "assign",
        )

    def test_switch_on_pointer(self):
        reject(
            "__export int f(int *p) { switch (p) { default: break; } return 0; }",
            "integer",
        )

    def test_duplicate_case(self):
        reject(
            "__export int f(int x) { switch (x) { case 1: break; case 1: break; } return 0; }",
            "duplicate case",
        )

    def test_string_into_non_char_array(self):
        reject('long xs[4] = "abc";', "char array")

    def test_pointer_global_nonzero_init(self):
        reject("int *p = 5;", "null")
