"""Execution tests: compile mini-C, run it on the VM, check C semantics.

These are end-to-end front-end tests — the most valuable kind for a
compiler: the observable behaviour of the generated code must match C.
"""

import pytest


class TestArithmetic:
    def test_basic_ops(self, run_c):
        src = "__export long f(long a, long b) { return a * b + a - b; }"
        assert run_c(src, "f", 7, 3) == 7 * 3 + 7 - 3

    def test_signed_division_truncates_toward_zero(self, run_c):
        src = "__export long f(long a, long b) { return a / b; }"
        assert run_c(src, "f", 7, 2) == 3
        assert run_c(src, "f", (-7) % (1 << 64), 2) == -3
        assert run_c(src, "f", 7, (-2) % (1 << 64)) == -3

    def test_signed_modulo_sign_follows_dividend(self, run_c):
        src = "__export long f(long a, long b) { return a % b; }"
        assert run_c(src, "f", 7, 3) == 1
        assert run_c(src, "f", (-7) % (1 << 64), 3) == -1

    def test_unsigned_division(self, run_c):
        src = (
            "__export unsigned long f(unsigned long a, unsigned long b)"
            "{ return a / b; }"
        )
        big = (1 << 64) - 8
        assert run_c(src, "f", big, 2, signed_bits=0) == big // 2

    def test_int32_wraparound(self, run_c):
        src = "__export int f(int a) { return a + 1; }"
        assert run_c(src, "f", 0x7FFFFFFF, signed_bits=32) == -0x80000000

    def test_shifts(self, run_c):
        src = "__export long f(long a, long b) { return (a << b) | (a >> b); }"
        assert run_c(src, "f", 8, 2) == (8 << 2) | (8 >> 2)

    def test_arithmetic_shift_right_signed(self, run_c):
        src = "__export int f(int a) { return a >> 1; }"
        assert run_c(src, "f", (-8) % (1 << 32), signed_bits=32) == -4

    def test_logical_shift_right_unsigned(self, run_c):
        src = "__export unsigned int f(unsigned int a) { return a >> 1; }"
        assert run_c(src, "f", 0x80000000, signed_bits=0) == 0x40000000

    def test_bitwise_ops(self, run_c):
        src = "__export long f(long a, long b) { return (a & b) ^ (a | b); }"
        assert run_c(src, "f", 0b1100, 0b1010) == (0b1100 & 0b1010) ^ (0b1100 | 0b1010)

    def test_unary_minus_and_complement(self, run_c):
        src = "__export long f(long a) { return -a + ~a; }"
        assert run_c(src, "f", 5) == -5 + ~5

    def test_char_promotion(self, run_c):
        src = "__export int f(void) { char c = 200; return c; }"
        # char is signed: 200 wraps to -56
        assert run_c(src, "f", signed_bits=32) == -56

    def test_unsigned_char(self, run_c):
        src = "__export int f(void) { unsigned char c = 200; return c; }"
        assert run_c(src, "f", signed_bits=32) == 200

    def test_unsigned_comparison(self, run_c):
        src = (
            "__export int f(unsigned int a, unsigned int b) { return a < b; }"
        )
        assert run_c(src, "f", 0xFFFFFFFF, 1) == 0  # unsigned: huge > 1

    def test_signed_comparison(self, run_c):
        src = "__export int f(int a, int b) { return a < b; }"
        assert run_c(src, "f", (-1) % (1 << 32), 1) == 1


class TestControlFlow:
    def test_if_else_chain(self, run_c):
        src = """
        __export int grade(int score) {
            if (score >= 90) return 4;
            else if (score >= 80) return 3;
            else if (score >= 70) return 2;
            return 0;
        }
        """
        assert run_c(src, "grade", 95) == 4
        assert run_c(src, "grade", 85) == 3
        assert run_c(src, "grade", 75) == 2
        assert run_c(src, "grade", 10) == 0

    def test_while_loop(self, run_c):
        src = """
        __export long sum_to(long n) {
            long s = 0;
            long i = 1;
            while (i <= n) { s += i; i++; }
            return s;
        }
        """
        assert run_c(src, "sum_to", 100) == 5050

    def test_do_while_runs_once(self, run_c):
        src = """
        __export int f(void) {
            int n = 0;
            do { n++; } while (0);
            return n;
        }
        """
        assert run_c(src, "f") == 1

    def test_for_with_break_continue(self, run_c):
        src = """
        __export long f(void) {
            long acc = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                acc += i;
            }
            return acc;
        }
        """
        assert run_c(src, "f") == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self, run_c):
        src = """
        __export long f(int n) {
            long acc = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    acc += i * j;
            return acc;
        }
        """
        n = 6
        assert run_c(src, "f", n) == sum(i * j for i in range(n) for j in range(n))

    def test_switch_with_fallthrough(self, run_c):
        src = """
        __export int f(int x) {
            int r = 0;
            switch (x) {
                case 1:
                    r += 1;      /* falls through */
                case 2:
                    r += 2;
                    break;
                case 3:
                    r = 30;
                    break;
                default:
                    r = -1;
                    break;
            }
            return r;
        }
        """
        assert run_c(src, "f", 1, signed_bits=32) == 3  # fallthrough 1->2
        assert run_c(src, "f", 2, signed_bits=32) == 2
        assert run_c(src, "f", 3, signed_bits=32) == 30
        assert run_c(src, "f", 9, signed_bits=32) == -1

    def test_short_circuit_and(self, run_c):
        src = """
        int calls;
        static int bump(void) { calls++; return 0; }
        __export int f(int x) { calls = 0; return (x != 0) && bump(); }
        __export int count(void) { return calls; }
        """
        assert run_c(src, "f", 0) == 0
        assert run_c(src, "count") == 0  # rhs never evaluated
        assert run_c(src, "f", 1) == 0
        assert run_c(src, "count") == 1

    def test_short_circuit_or(self, run_c):
        src = """
        int calls2;
        static int bump(void) { calls2++; return 1; }
        __export int f(int x) { calls2 = 0; return (x != 0) || bump(); }
        __export int count(void) { return calls2; }
        """
        assert run_c(src, "f", 5) == 1
        assert run_c(src, "count") == 0
        assert run_c(src, "f", 0) == 1
        assert run_c(src, "count") == 1

    def test_ternary(self, run_c):
        src = "__export long f(long a, long b) { return a > b ? a : b; }"
        assert run_c(src, "f", 3, 9) == 9
        assert run_c(src, "f", 9, 3) == 9

    def test_recursion(self, run_c):
        src = """
        __export long fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        """
        assert run_c(src, "fib", 15) == 610


class TestPointersArrays:
    def test_local_array_sum(self, run_c):
        src = """
        __export long f(void) {
            long xs[8];
            for (int i = 0; i < 8; i++) xs[i] = i * i;
            long s = 0;
            for (int i = 0; i < 8; i++) s += xs[i];
            return s;
        }
        """
        assert run_c(src, "f") == sum(i * i for i in range(8))

    def test_pointer_arithmetic(self, run_c):
        src = """
        __export long f(void) {
            long xs[4];
            long *p = xs;
            *p = 10; *(p + 1) = 20; p += 2; *p = 30; p++; *p = 40;
            return xs[0] + xs[1] + xs[2] + xs[3];
        }
        """
        assert run_c(src, "f") == 100

    def test_pointer_difference(self, run_c):
        src = """
        __export long f(void) {
            int xs[10];
            int *a = &xs[2];
            int *b = &xs[9];
            return b - a;
        }
        """
        assert run_c(src, "f") == 7

    def test_address_of_and_deref(self, run_c):
        src = """
        __export int f(void) {
            int x = 5;
            int *p = &x;
            *p = 42;
            return x;
        }
        """
        assert run_c(src, "f") == 42

    def test_pointer_to_pointer(self, run_c):
        src = """
        __export int f(void) {
            int x = 1;
            int *p = &x;
            int **pp = &p;
            **pp = 99;
            return x;
        }
        """
        assert run_c(src, "f") == 99

    def test_global_array(self, run_c):
        src = """
        int table[4];
        __export int f(int i, int v) { table[i] = v; return table[i]; }
        __export int get(int i) { return table[i]; }
        """
        assert run_c(src, "f", 2, 77) == 77
        assert run_c(src, "get", 2) == 77
        assert run_c(src, "get", 0) == 0  # zero-initialized

    def test_char_array_string_init(self, run_c):
        src = """
        __export int f(void) {
            char buf[8] = "abc";
            return buf[0] + buf[1] + buf[2] + buf[3];
        }
        """
        assert run_c(src, "f") == ord("a") + ord("b") + ord("c")

    def test_string_literal_pointer(self, run_c):
        src = """
        __export int f(void) {
            char *s = "xyz";
            return s[0] + s[2];
        }
        """
        assert run_c(src, "f") == ord("x") + ord("z")

    def test_null_checks(self, run_c):
        src = """
        __export int f(int use) {
            int x = 7;
            int *p = null;
            if (use) p = &x;
            if (p == null) return -1;
            return *p;
        }
        """
        assert run_c(src, "f", 1) == 7
        assert run_c(src, "f", 0, signed_bits=32) == -1

    def test_mixed_width_loads_stores(self, run_c):
        src = """
        __export long f(void) {
            long x = 0;
            char *bytes = (char *)&x;
            bytes[0] = 0x11;
            bytes[7] = 0x22;
            return x;
        }
        """
        assert run_c(src, "f", signed_bits=0) == (0x22 << 56) | 0x11


class TestStructs:
    def test_struct_fields(self, run_c):
        src = """
        struct point { int x; int y; };
        __export int f(void) {
            struct point p;
            p.x = 3; p.y = 4;
            return p.x * p.x + p.y * p.y;
        }
        """
        assert run_c(src, "f") == 25

    def test_struct_pointer_arrow(self, run_c):
        src = """
        struct point { int x; int y; };
        static void flip(struct point *p) {
            int t = p->x; p->x = p->y; p->y = t;
        }
        __export int f(void) {
            struct point p;
            p.x = 1; p.y = 9;
            flip(&p);
            return p.x * 10 + p.y;
        }
        """
        assert run_c(src, "f") == 91

    def test_nested_struct_by_value(self, run_c):
        src = """
        struct inner { int a; long b; };
        struct outer { int tag; struct inner in; };
        __export long f(void) {
            struct outer o;
            o.tag = 1;
            o.in.a = 10;
            o.in.b = 20;
            return o.tag + o.in.a + o.in.b;
        }
        """
        assert run_c(src, "f") == 31

    def test_linked_list_via_self_pointer(self, run_c):
        src = """
        extern void *kmalloc(long size, int flags);
        struct node { long value; struct node *next; };
        __export long f(int n) {
            struct node *head = null;
            for (int i = 0; i < n; i++) {
                struct node *nd = (struct node *)kmalloc(16, 0);
                nd->value = i;
                nd->next = head;
                head = nd;
            }
            long s = 0;
            while (head != null) { s += head->value; head = head->next; }
            return s;
        }
        """
        assert run_c(src, "f", 10) == sum(range(10))

    def test_array_of_structs(self, run_c):
        src = """
        struct entry { int k; int v; };
        struct entry table[4];
        __export int f(void) {
            for (int i = 0; i < 4; i++) { table[i].k = i; table[i].v = i * 10; }
            return table[3].k + table[3].v;
        }
        """
        assert run_c(src, "f") == 33

    def test_sizeof_struct_with_padding(self, run_c):
        src = """
        struct padded { char c; long x; };
        __export long f(void) { return sizeof(struct padded); }
        """
        assert run_c(src, "f") == 16


class TestMisc:
    def test_sizeof_types(self, run_c):
        src = """
        __export long f(void) {
            return sizeof(char) + sizeof(short) * 10 + sizeof(int) * 100
                 + sizeof(long) * 1000 + sizeof(void *) * 10000;
        }
        """
        assert run_c(src, "f") == 1 + 20 + 400 + 8000 + 80000

    def test_compound_assignment_ops(self, run_c):
        src = """
        __export long f(long x) {
            x += 3; x -= 1; x *= 4; x /= 2; x %= 100;
            x <<= 1; x >>= 1; x |= 8; x &= 0xFF; x ^= 1;
            return x;
        }
        """
        x = 10
        x += 3; x -= 1; x *= 4; x //= 2; x %= 100
        x <<= 1; x >>= 1; x |= 8; x &= 0xFF; x ^= 1
        assert run_c(src, "f", 10) == x

    def test_pre_post_increment_values(self, run_c):
        src = """
        __export int f(void) {
            int i = 5;
            int a = i++;
            int b = ++i;
            return a * 100 + b * 10 + i;
        }
        """
        assert run_c(src, "f") == 5 * 100 + 7 * 10 + 7

    def test_double_arithmetic(self, run_c):
        src = """
        __export int f(void) {
            double x = 1.5;
            double y = 2.25;
            double z = x * y + 0.75;
            if (z > 4.1 && z < 4.2) return 1;
            return 0;
        }
        """
        assert run_c(src, "f") == 1

    def test_float_to_int_conversion(self, run_c):
        src = """
        __export int f(void) {
            double d = 3.99;
            return (int)d;
        }
        """
        assert run_c(src, "f") == 3

    def test_int_to_float_conversion(self, run_c):
        src = """
        __export int f(int a) {
            double d = a;
            d = d / 2.0;
            return (int)(d * 10.0);
        }
        """
        assert run_c(src, "f", 7) == 35

    def test_comma_operator(self, run_c):
        src = "__export int f(void) { int a = 0; int b = (a = 5, a + 1); return b; }"
        assert run_c(src, "f") == 6

    def test_function_call_chain(self, run_c):
        src = """
        static int double_it(int x) { return x * 2; }
        static int add3(int x) { return x + 3; }
        __export int f(int x) { return double_it(add3(double_it(x))); }
        """
        assert run_c(src, "f", 5) == (5 * 2 + 3) * 2

    def test_static_global_isolated(self, run_c):
        src = """
        static long counter;
        __export long bump(void) { counter += 1; return counter; }
        """
        assert run_c(src, "bump") == 1
        assert run_c(src, "bump") == 2

    def test_hex_char_enum_constants(self, run_c):
        src = """
        enum { MASK = 0xF0, BIT = 1 << 3 };
        __export int f(void) { return (MASK | BIT) + 'A'; }
        """
        assert run_c(src, "f") == (0xF0 | 8) + 65

    def test_early_return_dead_code_dropped(self, run_c):
        src = """
        __export int f(void) {
            return 1;
            return 2;
        }
        """
        assert run_c(src, "f") == 1

    def test_void_function(self, run_c):
        src = """
        int flag;
        static void set_flag(void) { flag = 1; }
        __export int f(void) { set_flag(); return flag; }
        """
        assert run_c(src, "f") == 1
