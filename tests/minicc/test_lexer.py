"""Lexer tests."""

import pytest

from repro.minicc.lexer import LexError, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_keywords_vs_idents(self):
        toks = tokenize("int foo while whilefoo")
        assert [t.kind for t in toks[:-1]] == ["kw", "ident", "kw", "ident"]

    def test_decimal_int(self):
        tok = tokenize("12345")[0]
        assert tok.kind == "int" and tok.value == 12345

    def test_hex_int(self):
        tok = tokenize("0xFF")[0]
        assert tok.value == 255

    def test_int_suffixes(self):
        toks = tokenize("1UL 2u 3ll")
        assert [t.value for t in toks[:-1]] == [1, 2, 3]
        assert toks[0].text == "1UL"

    def test_float(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == "float" and tok.value == 3.25

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_char_literal(self):
        assert tokenize("'A'")[0].value == 65

    def test_char_escapes(self):
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0
        assert tokenize(r"'\x41'")[0].value == 0x41

    def test_string_literal(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind == "string" and tok.value == b"hello"

    def test_string_escapes(self):
        assert tokenize(r'"a\tb\x00c"')[0].value == b"a\tb\x00c"

    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]
        assert toks[2].col == 3


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_line_numbers_after_block_comment(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].line == 3


class TestOperators:
    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a< <b") == ["a", "<", "<", "b"]
        assert texts("x---y") == ["x", "--", "-", "y"]

    def test_arrow_vs_minus(self):
        assert texts("p->f - q") == ["p", "->", "f", "-", "q"]

    def test_ellipsis(self):
        assert "..." in texts("f(int a, ...)")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("int a = `b`;")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')
