"""Front-end robustness: arbitrary input may be rejected, never crash.

Hypothesis throws random text at the lexer/parser; the contract is that
they either produce an AST or raise the two documented diagnostics —
no IndexError, RecursionError, or other internal failures, because the
compiler is part of the trusted base the signature chain leans on.
"""

import hypothesis.strategies as st
from hypothesis import example, given, settings

from repro.minicc.lexer import LexError, tokenize
from repro.minicc.parser import CParseError, parse

ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    " \n\t{}()[];,*&|^%+-<>=!~?:.'\"/\\_"
)


@settings(max_examples=300, deadline=None)
@example('"\\')               # backslash at EOF inside a string (regression)
@example("'\\")
@example("int f(void) { return 1 +")
@example("/*")
@example("enum { A = ")
@example("struct s { struct s x")
@given(st.text(alphabet=ALPHABET, max_size=120))
def test_parser_never_crashes(text):
    try:
        parse(text)
    except (CParseError, LexError):
        pass


@settings(max_examples=300, deadline=None)
@example('"\\')
@example("0x")
@example("1e")
@given(st.text(alphabet=ALPHABET, max_size=120))
def test_lexer_never_crashes(text):
    try:
        tokens = tokenize(text)
        assert tokens[-1].kind == "eof"
    except LexError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.binary(max_size=60))
def test_lexer_handles_arbitrary_bytes(data):
    try:
        tokenize(data.decode("latin-1"))
    except LexError:
        pass
