"""Property-based front-end tests: generated C expressions must evaluate
exactly as a Python reference model of C semantics says they should."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel

_M64 = (1 << 64) - 1


def _wrap64(v: int) -> int:
    return v & _M64


def _signed64(v: int) -> int:
    v &= _M64
    return v - (1 << 64) if v >> 63 else v


class Expr:
    """Reference-model expression tree over C 'long' semantics."""

    def __init__(self, text: str, value: int):
        self.text = text
        self.value = _wrap64(value)


def _binary(op: str, a: Expr, b: Expr) -> Expr:
    sa, sb = _signed64(a.value), _signed64(b.value)
    if op == "+":
        v = sa + sb
    elif op == "-":
        v = sa - sb
    elif op == "*":
        v = sa * sb
    elif op == "/":
        v = int(sa / sb) if sb != 0 else 0
    elif op == "%":
        v = sa - int(sa / sb) * sb if sb != 0 else 0
    elif op == "&":
        v = a.value & b.value
    elif op == "|":
        v = a.value | b.value
    elif op == "^":
        v = a.value ^ b.value
    elif op == "<":
        v = int(sa < sb)
    elif op == ">":
        v = int(sa > sb)
    elif op == "==":
        v = int(sa == sb)
    else:
        raise AssertionError(op)
    if op in ("/", "%") and sb == 0:
        # The generator never emits a zero divisor; guard anyway.
        raise AssertionError("zero divisor generated")
    return Expr(f"({a.text} {op} {b.text})", v)


@st.composite
def c_expression(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        v = draw(st.integers(min_value=-(2**31), max_value=2**31))
        return Expr(f"{v}L" if v >= 0 else f"(0L - {-v}L)", v)
    op = draw(st.sampled_from("+ - * / % & | ^ < > ==".split()))
    a = draw(c_expression(depth=depth + 1))
    b = draw(c_expression(depth=depth + 1))
    if op in ("/", "%") and _signed64(b.value) == 0:
        b = Expr("7L", 7)
    return _binary(op, a, b)


@settings(max_examples=50, deadline=None)
@given(c_expression())
def test_expression_evaluation_matches_reference(expr):
    source = f"__export long f(void) {{ return {expr.text}; }}"
    compiled = compile_module(source, CompileOptions(module_name="prop"))
    kernel = Kernel()
    # No policy module: compile unprotected so guards are absent.
    compiled2 = compile_module(
        source, CompileOptions(module_name="prop", protect=False)
    )
    loaded = kernel.insmod(compiled2)
    got = kernel.run_function(loaded, "f", [])
    assert got == expr.value, f"{expr.text}: got {got}, want {expr.value}"


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=-(2**62), max_value=2**62),
             min_size=1, max_size=12)
)
def test_array_sum_matches_python(values):
    n = len(values)
    source = f"""
    long xs[{n}];
    __export void put(int i, long v) {{ xs[i] = v; }}
    __export long total(void) {{
        long s = 0;
        for (int i = 0; i < {n}; i++) s += xs[i];
        return s;
    }}
    """
    compiled = compile_module(
        source, CompileOptions(module_name="arr", protect=False)
    )
    kernel = Kernel()
    loaded = kernel.insmod(compiled)
    for i, v in enumerate(values):
        kernel.run_function(loaded, "put", [i, _wrap64(v)])
    got = kernel.run_function(loaded, "total", [])
    assert got == _wrap64(sum(values))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=63), st.integers(0, _M64))
def test_shift_semantics(shift, value):
    source = f"""
    __export unsigned long shl(unsigned long x) {{ return x << {shift}; }}
    __export unsigned long shr(unsigned long x) {{ return x >> {shift}; }}
    __export long sar(long x) {{ return x >> {shift}; }}
    """
    compiled = compile_module(
        source, CompileOptions(module_name="sh", protect=False)
    )
    kernel = Kernel()
    loaded = kernel.insmod(compiled)
    assert kernel.run_function(loaded, "shl", [value]) == _wrap64(value << shift)
    assert kernel.run_function(loaded, "shr", [value]) == value >> shift
    assert kernel.run_function(loaded, "sar", [value]) == _wrap64(
        _signed64(value) >> shift
    )
