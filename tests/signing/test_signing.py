"""Signing / attestation tests (paper §2, §3.2 validation-at-insertion)."""

import pytest

from repro import abi
from repro.core.pipeline import CompileOptions, compile_module
from repro.ir import IRBuilder
from repro.ir.values import ConstantInt
from repro.ir.types import I64
from repro.kernel import Kernel, LoadError
from repro.signing import (
    ModuleSignature,
    SignatureError,
    SigningKey,
    sign_module,
    verify_signature,
)

SRC = """
long state;
__export long touch(long v) { state = v; return state; }
"""


@pytest.fixture()
def signed(key):
    return compile_module(SRC, CompileOptions(module_name="sm", key=key))


class TestSignVerify:
    def test_valid_signature_verifies(self, signed, key):
        verify_signature(signed.ir, signed.signature, key)

    def test_signature_records_attestation(self, signed):
        sig = signed.signature
        assert sig.guarded is True
        assert sig.guard_count == signed.guard_count
        assert sig.has_inline_asm is False
        assert "caratcc" in sig.compiler

    def test_unattested_module_cannot_be_signed(self, key):
        from repro.minicc import compile_source

        m = compile_source(SRC, "raw")
        with pytest.raises(SignatureError, match="attestation"):
            sign_module(m, key)

    def test_wrong_key_rejected(self, signed):
        other = SigningKey.generate("other-vendor")
        with pytest.raises(SignatureError, match="unknown key"):
            verify_signature(signed.ir, signed.signature, other)

    def test_forged_tag_rejected(self, signed, key):
        forged = ModuleSignature(
            **{**signed.signature.__dict__, "tag": "0" * 64}
        )
        with pytest.raises(SignatureError, match="bad signature"):
            verify_signature(signed.ir, forged, key)

    def test_keys_are_deterministic_per_id(self):
        assert SigningKey.generate("x") == SigningKey.generate("x")
        assert SigningKey.generate("x") != SigningKey.generate("y")


class TestTamperDetection:
    def test_code_tamper_detected(self, signed, key):
        # Flip a constant inside the signed module.
        fn = signed.ir.get_function("touch")
        b = IRBuilder()
        ret = fn.blocks[-1].terminator
        for inst in fn.instructions():
            for i, op in enumerate(inst.operands):
                if isinstance(op, ConstantInt):
                    inst.operands[i] = ConstantInt(op.type, op.value + 1)
        signed.ir.metadata["tampered"] = True  # also metadata
        with pytest.raises(SignatureError, match="digest mismatch"):
            verify_signature(signed.ir, signed.signature, key)

    def test_guard_stripping_detected(self, signed, key):
        """The critical attack: remove guards after signing."""
        from repro.ir.instructions import Call

        for fn in signed.ir.defined_functions():
            for block in fn.blocks:
                block.instructions = [
                    i for i in block.instructions
                    if not (isinstance(i, Call) and i.is_guard)
                ]
        with pytest.raises(SignatureError, match="digest mismatch"):
            verify_signature(signed.ir, signed.signature, key)

    def test_attestation_forgery_detected(self, key):
        """Claiming an unguarded module is guarded must fail."""
        unprotected = compile_module(
            SRC, CompileOptions(module_name="sm", protect=False, key=key)
        )
        protected = compile_module(
            SRC, CompileOptions(module_name="sm", protect=True, key=key)
        )
        # Replay the protected module's signature onto the unprotected IR.
        with pytest.raises(SignatureError):
            verify_signature(unprotected.ir, protected.signature, key)


class TestKernelEnforcement:
    def test_strict_kernel_accepts_signed_protected(self, key):
        kernel = Kernel(signing_key=key, require_protected_modules=True)
        kernel.export_native("carat_guard", lambda ctx, a, s, f, m="": 1)
        compiled = compile_module(SRC, CompileOptions(module_name="ok", key=key))
        kernel.insmod(compiled)
        assert "ok" in kernel.lsmod()

    def test_unsigned_module_rejected(self, key):
        kernel = Kernel(signing_key=key)
        compiled = compile_module(SRC, CompileOptions(module_name="nosig"))
        with pytest.raises(LoadError, match="unsigned"):
            kernel.insmod(compiled)

    def test_unprotected_module_rejected_when_required(self, key):
        kernel = Kernel(signing_key=key, require_protected_modules=True)
        compiled = compile_module(
            SRC, CompileOptions(module_name="bare", protect=False, key=key)
        )
        with pytest.raises(LoadError, match="requires CARAT KOP"):
            kernel.insmod(compiled)

    def test_inline_asm_module_rejected(self, key):
        kernel = Kernel(signing_key=key, require_protected_modules=True)
        src = '__export void f(void) { __asm__("hlt"); }'
        compiled = compile_module(src, CompileOptions(module_name="asmmod", key=key))
        assert compiled.signature.has_inline_asm
        with pytest.raises(LoadError, match="inline assembly"):
            kernel.insmod(compiled)

    def test_permissive_kernel_accepts_anything(self):
        kernel = Kernel()  # no signing key configured
        compiled = compile_module(
            SRC, CompileOptions(module_name="casual", protect=False)
        )
        kernel.insmod(compiled)
        assert "casual" in kernel.lsmod()
