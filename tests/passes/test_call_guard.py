"""Kernel-call guard tests (paper §5 control-flow extension)."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.ir import verify_module
from repro.ir.instructions import Call
from repro.kernel import KernelPanic
from repro.minicc import compile_source
from repro.passes import AttestationPass, CallGuardPass, Mem2RegPass, PassManager
from repro.passes.call_guard import CALL_GUARD_SYMBOL, META_CALL_GUARDED

SRC = """
extern void *kmalloc(long size, int flags);
extern void kfree(void *p);
extern int printk(char *fmt, ...);

static long helper(long x) { return x + 1; }

__export long f(void) {
    void *p = kmalloc(64, 0);
    long r = helper((long)p);
    printk("got %lx", r);
    kfree(p);
    return r;
}
"""


def build():
    m = compile_source(SRC, "cg")
    PassManager([Mem2RegPass(), AttestationPass()]).run(m)
    p = CallGuardPass()
    p.run(m)
    verify_module(m)
    return m, p


class TestPass:
    def test_external_calls_guarded(self):
        m, p = build()
        assert p.guards_inserted == 3  # kmalloc, printk, kfree
        fn = m.get_function("f")
        insts = list(fn.instructions())
        for i, inst in enumerate(insts):
            if isinstance(inst, Call) and inst.callee.name in (
                "kmalloc", "kfree", "printk"
            ):
                prev = insts[i - 1]
                assert (
                    isinstance(prev, Call)
                    and prev.callee.name == CALL_GUARD_SYMBOL
                )

    def test_internal_calls_not_guarded(self):
        m, _ = build()
        fn = m.get_function("f")
        insts = list(fn.instructions())
        for i, inst in enumerate(insts):
            if isinstance(inst, Call) and inst.callee.name == "helper":
                prev = insts[i - 1]
                assert not (
                    isinstance(prev, Call)
                    and prev.callee.name == CALL_GUARD_SYMBOL
                )

    def test_idempotent_and_metadata(self):
        m, _ = build()
        assert m.metadata[META_CALL_GUARDED] is True
        again = CallGuardPass()
        assert again.run(m) is False

    def test_memory_guards_exempt(self):
        src = "long g; __export void f(void) { g = 1; }"
        compiled = compile_module(
            src, CompileOptions(module_name="mg", guard_calls=True)
        )
        # No external call sites besides carat_guard itself.
        names = [
            i.callee.name
            for fn in compiled.ir.defined_functions()
            for i in fn.instructions()
            if isinstance(i, Call)
        ]
        assert CALL_GUARD_SYMBOL not in names


class TestEnforcement:
    def _system_with_module(self, allowlist):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        compiled = compile_module(
            SRC,
            CompileOptions(module_name="caller", key=system.signing_key,
                           guard_calls=True),
        )
        loaded = system.kernel.insmod(compiled)
        mgr = system.policy_manager
        mgr.set_call_allowlist(True)
        for name in allowlist:
            mgr.allow_call(name)
        return system, loaded

    def test_allowed_calls_pass(self):
        system, loaded = self._system_with_module(
            ["kmalloc", "kfree", "printk"]
        )
        r = system.kernel.run_function(loaded, "f", [])
        assert r != 0

    def test_unlisted_call_panics(self):
        system, loaded = self._system_with_module(["kmalloc", "printk"])
        with pytest.raises(KernelPanic, match="call to kfree"):
            system.kernel.run_function(loaded, "f", [])
        assert any("DENY-CALL" in l for l in system.kernel.dmesg_log)

    def test_allow_all_mode_default(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        compiled = compile_module(
            SRC,
            CompileOptions(module_name="caller", key=system.signing_key,
                           guard_calls=True),
        )
        loaded = system.kernel.insmod(compiled)
        system.kernel.run_function(loaded, "f", [])  # no allowlist: fine

    def test_deny_call_revokes(self):
        system, loaded = self._system_with_module(
            ["kmalloc", "kfree", "printk"]
        )
        system.kernel.run_function(loaded, "f", [])
        system.policy_manager.deny_call("printk")
        with pytest.raises(KernelPanic, match="call to printk"):
            system.kernel.run_function(loaded, "f", [])

    def test_driver_runs_under_full_guarding(self):
        """The e1000e driver with memory + intrinsic + call guards all on."""
        from repro.e1000e import DRIVER_NAME, DRIVER_SOURCE, E1000ENetDev

        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        system.kernel.rmmod(DRIVER_NAME)
        compiled = compile_module(
            DRIVER_SOURCE,
            CompileOptions(module_name=DRIVER_NAME, key=system.signing_key,
                           guard_calls=True, guard_intrinsics=True),
        )
        loaded = system.kernel.insmod(compiled)
        mgr = system.policy_manager
        mgr.set_call_allowlist(True)
        for name in ("kmalloc", "kfree", "printk", "ioremap",
                     "virt_to_phys", "udelay"):
            mgr.allow_call(name)
        netdev = E1000ENetDev(system.kernel, loaded, system.device)
        netdev.probe()
        from repro.net import make_test_frame

        for seq in range(20):
            assert netdev.xmit(make_test_frame(128, seq)) == 0
        assert system.sink.packets == 20
