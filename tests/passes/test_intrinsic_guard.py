"""Intrinsic-guard pass tests (paper §5 extension)."""

from repro.ir import verify_module
from repro.ir.instructions import Call
from repro.minicc import compile_source
from repro.passes import AttestationPass, GuardInjectionPass, Mem2RegPass, PassManager
from repro.passes.intrinsic_guard import (
    INTRINSIC_GUARD_SYMBOL,
    IntrinsicGuardPass,
    META_INTRINSIC_GUARDED,
    PRIVILEGED_INTRINSICS,
)

SRC = """
extern void wrmsr(int msr, long value);
extern long rdmsr(int msr);
extern void cli(void);
extern int printk(char *fmt, ...);

__export void poke_msrs(void) {
    long old = rdmsr(0x1A4);
    wrmsr(0x1A4, old | 1);
    wrmsr(0x1A5, 0);
    cli();
    printk("done");
}
"""


def build(src=SRC):
    m = compile_source(src, "im")
    PassManager([Mem2RegPass(), AttestationPass()]).run(m)
    p = IntrinsicGuardPass()
    p.run(m)
    verify_module(m)
    return m, p


def test_each_intrinsic_call_site_guarded():
    m, p = build()
    assert p.guards_inserted == 4  # rdmsr + 2x wrmsr + cli
    fn = m.get_function("poke_msrs")
    insts = list(fn.instructions())
    for i, inst in enumerate(insts):
        if isinstance(inst, Call) and inst.callee.name in PRIVILEGED_INTRINSICS:
            prev = insts[i - 1]
            assert isinstance(prev, Call)
            assert prev.callee.name == INTRINSIC_GUARD_SYMBOL


def test_non_privileged_calls_untouched():
    m, _ = build()
    fn = m.get_function("poke_msrs")
    insts = list(fn.instructions())
    for i, inst in enumerate(insts):
        if isinstance(inst, Call) and inst.callee.name == "printk":
            prev = insts[i - 1]
            assert not (
                isinstance(prev, Call)
                and prev.callee.name == INTRINSIC_GUARD_SYMBOL
            )


def test_name_strings_deduplicated():
    m, _ = build()
    wrmsr_strings = [g for g in m.globals if g.startswith(".intr.wrmsr")]
    assert len(wrmsr_strings) == 1


def test_metadata_and_idempotence():
    m, _ = build()
    assert m.metadata[META_INTRINSIC_GUARDED] is True
    again = IntrinsicGuardPass()
    assert again.run(m) is False
    assert again.guards_inserted == 0


def test_module_without_intrinsics_unchanged():
    src = "__export long f(long a) { return a + 1; }"
    m = compile_source(src, "clean")
    PassManager([AttestationPass()]).run(m)
    p = IntrinsicGuardPass()
    changed = p.run(m)
    assert changed is False
    assert INTRINSIC_GUARD_SYMBOL not in m.functions


def test_composes_with_memory_guards():
    m = compile_source(SRC, "both")
    PassManager(
        [Mem2RegPass(), AttestationPass(), GuardInjectionPass()]
    ).run(m)
    IntrinsicGuardPass().run(m)
    verify_module(m)
    guards = [
        i for fn in m.defined_functions() for i in fn.instructions()
        if isinstance(i, Call) and i.callee.name == INTRINSIC_GUARD_SYMBOL
    ]
    assert len(guards) == 4
