"""Unit tests for the -O3 abstract-interpretation verifier.

Covers the interval domain's arithmetic (wrap refusal, atom capping,
sign extension), the contract set's canonical digest and resolution,
``RegionTable.check_range``'s exactness under first-match semantics,
and the ``ModuleVerifier`` itself on small hand-compiled modules — in
particular that it never certifies a guard the dynamic table would
deny (soundness is the whole point of the tier).
"""

import pytest

from repro import abi
from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import layout
from repro.passes.absint import (
    AREAS,
    TOP,
    U64_MAX,
    ArgContract,
    ContractSet,
    FieldContract,
    ModuleVerifier,
    av_add,
    av_const,
    av_join,
    av_mul,
    av_sext,
    av_sub,
    elidable_guard_ids,
)
from repro.policy import RegionTable
from repro.policy.region import Region

RW = abi.FLAG_READ | abi.FLAG_WRITE


# -- interval-domain arithmetic ---------------------------------------------


def test_av_const_and_join():
    a = av_const(5)
    assert a == ((5, 5),)
    j = av_join(av_const(3), av_const(9))
    assert j == ((3, 3), (9, 9))
    # Adjacent atoms merge.
    assert av_join(av_const(4), av_const(5)) == ((4, 5),)


def test_av_join_caps_atom_count():
    vals = av_const(0)
    for x in (100, 200, 300, 400, 500):
        vals = av_join(vals, av_const(x))
    assert len(vals) <= 4
    # Capping merges gaps — the result over-approximates, never drops.
    lo, hi = vals[0][0], vals[-1][1]
    assert lo == 0 and hi == 500


def test_av_add_refuses_wrap():
    near_top = ((U64_MAX - 1, U64_MAX - 1),)
    assert av_add(near_top, av_const(10), U64_MAX) == TOP
    assert av_add(av_const(7), av_const(8), U64_MAX) == ((15, 15),)


def test_av_add_refuses_wrap_at_instruction_width():
    # An 8-bit add that could wrap at *its own* width is refused even
    # though it fits comfortably in 64 bits (the caller then clamps
    # TOP to the instruction's width).
    m8 = (1 << 8) - 1
    assert av_add(av_const(250), av_const(10), m8) == TOP


def test_av_sub_refuses_below_zero():
    assert av_sub(av_const(3), av_const(5)) == TOP
    assert av_sub(av_const(9), av_const(4)) == ((5, 5),)


def test_av_mul():
    assert av_mul(av_const(6), av_const(7), U64_MAX) == ((42, 42),)
    big = ((1 << 63, 1 << 63),)
    assert av_mul(big, av_const(4), U64_MAX) == TOP


def test_av_sext_splits_at_sign_boundary():
    # i32 -> i64: 0xFFFFFFFF is -1, which sign-extends to U64_MAX.
    m32 = (1 << 32) - 1
    out = av_sext(((m32, m32),), 32, 64)
    assert out == ((U64_MAX, U64_MAX),)
    # Non-negative values pass through.
    assert av_sext(av_const(41), 32, 64) == ((41, 41),)


# -- contracts --------------------------------------------------------------


def test_contract_digest_is_order_independent():
    a = ContractSet([ArgContract("f", 0, lo=1, hi=2),
                     FieldContract("g", "x", lo=0, hi=7)])
    b = ContractSet([FieldContract("g", "x", lo=0, hi=7),
                     ArgContract("f", 0, lo=1, hi=2)])
    assert a.digest() == b.digest()
    assert a.digest() != ContractSet([]).digest()


def test_area_contract_reserve_shrinks_window():
    lo, hi = AREAS["heap"]
    c = ArgContract("f", 0, area="heap", reserve=64)
    clo, chi = c.interval()
    assert clo == lo
    assert chi == hi - 63


# -- check_range exactness --------------------------------------------------


def test_check_range_matches_pointwise_check():
    table = RegionTable(default_allow=False)
    table.add(Region(0x1000, 0x100, RW))
    table.add(Region(0x1080, 0x200, abi.FLAG_READ))  # shadowed then deciding
    for lo, hi in [(0x1000, 0x10F8), (0x1000, 0x1279), (0x10F0, 0x1120),
                   (0xF00, 0x1000), (0x1270, 0x1290)]:
        want = all(table.check(a, 8, RW)[0] for a in range(lo, hi + 1))
        got = table.check_range(lo, hi, 8, RW)
        assert got == want, (hex(lo), hex(hi), got, want)


def test_check_range_first_match_deny_counterexample():
    """A small early DENY region inside a big later ALLOW region: the
    range is NOT uniformly allowed even though an interval-only view of
    the allow region would say it is."""
    table = RegionTable(default_allow=False)
    table.add(Region(0x2010, 0x10, 0))  # deny hole, matched first
    table.add(Region(0x2000, 0x100, RW))
    assert table.check_range(0x2000, 0x2008, 8, RW)
    assert not table.check_range(0x2000, 0x2040, 8, RW)  # spans the hole
    assert not table.check_range(0x2010, 0x2010, 8, RW)


def test_check_range_default_decides_leftovers():
    empty = RegionTable(default_allow=True)
    assert empty.check_range(0, U64_MAX - 8, 8, RW)
    empty_deny = RegionTable(default_allow=False)
    assert not empty_deny.check_range(0x5000, 0x5010, 8, RW)


def test_digest_tracks_regions_and_default():
    t = RegionTable(default_allow=False)
    d0 = t.digest()
    t.add(Region(0x1000, 0x100, RW))
    d1 = t.digest()
    assert d0 != d1
    t.default_allow = True
    assert t.digest() not in (d0, d1)


# -- the verifier on real modules -------------------------------------------

_SIMPLE = """
long cells[8];
__export long run(long seed) {
    cells[0] = seed;
    cells[1] = cells[0] + 1;
    long acc = 0;
    for (long i = 0; i < 8; i++) { acc += cells[i]; }
    return acc;
}
"""


def _verify(source, table, contracts=None, opt_level=2):
    compiled = compile_module(
        source,
        CompileOptions(module_name="m", protect=True, opt_level=opt_level),
    )
    verifier = ModuleVerifier(compiled.ir, table, contracts)
    return compiled, verifier.run()


def test_verifier_proves_globals_under_module_window():
    table = RegionTable(default_allow=False)
    lo, hi = AREAS["module"]
    table.add(Region(lo, hi - lo + 1, RW))
    _, report = _verify(_SIMPLE, table)
    assert report.guards_dynamic == 0
    assert report.guards_proven > 0


def test_verifier_proves_nothing_under_deny_all():
    table = RegionTable(default_allow=False)
    _, report = _verify(_SIMPLE, table)
    assert report.guards_proven == 0
    assert report.guards_dynamic > 0


def test_verifier_counts_match_guard_sites():
    table = RegionTable(default_allow=True)
    compiled, report = _verify(_SIMPLE, table)
    total = report.guards_proven + report.guards_dynamic
    assert total == compiled.guard_count
    elided = elidable_guard_ids(compiled.ir, report.proven_map())
    assert len(elided) == report.guards_proven


def test_verifier_respects_exact_size_against_window_edge():
    """A guard whose object could start at the last byte of the allow
    window must stay dynamic unless provenance reserves the object's
    size — the size-aware window is what makes edges provable."""
    table = RegionTable(default_allow=False)
    lo, _ = AREAS["module"]
    # Window ends mid-array: the sweep's tail cannot be proven.
    table.add(Region(lo, 4 * 8, RW))  # only cells[0..3]
    _, report = _verify(_SIMPLE, table)
    assert report.guards_dynamic > 0


def test_verifier_is_deterministic():
    table = RegionTable(default_allow=True)
    _, r1 = _verify(_SIMPLE, table)
    _, r2 = _verify(_SIMPLE, table)
    assert r1.verdicts == r2.verdicts
    assert r1.contracts_digest == r2.contracts_digest
