"""Guard-injection pass tests: the paper's §3.3 core transform."""

import pytest

from repro import abi
from repro.ir import Module, parse_module, print_module, verify_module
from repro.ir.instructions import Call, Load, Store
from repro.minicc import compile_source
from repro.passes import (
    AttestationPass,
    DCEPass,
    GuardInjectionPass,
    Mem2RegPass,
    PassManager,
    PeepholePass,
)

SRC = """
long buffer[16];
__export long f(long i, long v) {
    buffer[i] = v;          /* store */
    long x = buffer[i];     /* load  */
    buffer[i + 1] = x + 1;  /* store */
    return buffer[0];       /* load  */
}
"""


def compiled_module(src=SRC, optimize=True):
    m = compile_source(src, "gm")
    passes = [Mem2RegPass(), PeepholePass(), DCEPass()] if optimize else []
    PassManager(passes + [AttestationPass(), GuardInjectionPass()]).run(m)
    verify_module(m)
    return m


def guards_in(m: Module):
    return [
        inst
        for fn in m.defined_functions()
        for inst in fn.instructions()
        if isinstance(inst, Call) and inst.is_guard
    ]


class TestInjection:
    def test_every_load_and_store_guarded(self):
        m = compiled_module()
        for fn in m.defined_functions():
            for block in fn.blocks:
                insts = block.instructions
                for i, inst in enumerate(insts):
                    if isinstance(inst, (Load, Store)):
                        assert i > 0, f"{inst.opcode} at block start, unguarded"
                        prev = insts[i - 1]
                        assert isinstance(prev, Call) and prev.is_guard, (
                            f"{inst.opcode} not immediately preceded by guard"
                        )

    def test_guard_count_matches_accesses(self):
        m = compiled_module()
        n_access = sum(
            isinstance(i, (Load, Store))
            for fn in m.defined_functions()
            for i in fn.instructions()
        )
        assert len(guards_in(m)) == n_access
        assert m.metadata[abi.META_GUARD_COUNT] == n_access

    def test_guard_metadata_set(self):
        m = compiled_module()
        assert m.metadata[abi.META_GUARDED] is True

    def test_guard_declaration_added(self):
        m = compiled_module()
        guard = m.functions[abi.GUARD_SYMBOL]
        assert guard.is_declaration
        assert guard.function_type is abi.guard_function_type()

    def test_idempotent(self):
        m = compiled_module()
        before = len(guards_in(m))
        changed = GuardInjectionPass().run(m)
        assert changed is False
        assert len(guards_in(m)) == before

    def test_guard_flags_read_vs_write(self):
        m = compiled_module()
        for fn in m.defined_functions():
            for block in fn.blocks:
                insts = block.instructions
                for i, inst in enumerate(insts):
                    if isinstance(inst, (Load, Store)):
                        guard = insts[i - 1]
                        flags = guard.args[2].value
                        if isinstance(inst, Load):
                            assert flags == abi.FLAG_READ
                        else:
                            assert flags == abi.FLAG_WRITE

    def test_guard_sizes_match_access_width(self):
        src = """
        __export void f(char *c, short *s, int *i, long *l) {
            *c = 1; *s = 2; *i = 3; *l = 4;
        }
        """
        m = compiled_module(src)
        sizes = [g.args[1].value for g in guards_in(m)]
        assert sorted(sizes) == [1, 2, 4, 8]

    def test_guard_address_is_i8_pointer(self):
        m = compiled_module()
        from repro.ir import I8, PointerType

        for g in guards_in(m):
            assert g.args[0].type is PointerType(I8)

    def test_unoptimized_build_guards_stack_traffic(self):
        # Without mem2reg every local access is memory: many more guards.
        opt = len(guards_in(compiled_module(optimize=True)))
        unopt = len(guards_in(compiled_module(optimize=False)))
        assert unopt > opt

    def test_printed_form_round_trips(self):
        m = compiled_module()
        text = print_module(m)
        m2 = parse_module(text)
        verify_module(m2)
        assert len(guards_in(m2)) == len(guards_in(m))
        assert print_module(m2) == text

    def test_module_without_memory_ops_gets_no_guards(self):
        src = "__export long f(long a, long b) { return a + b; }"
        m = compiled_module(src)
        assert guards_in(m) == []
        assert m.metadata[abi.META_GUARD_COUNT] == 0
        # Still marked as transformed (the property is "was processed").
        assert m.metadata[abi.META_GUARDED] is True


class TestSemanticsPreserved:
    def test_guarded_module_computes_same_results(self):
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.kernel import Kernel
        from repro.policy import CaratPolicyModule, PolicyManager

        results = {}
        for protect in (False, True):
            kernel = Kernel()
            if protect:
                CaratPolicyModule(kernel).install()
                PolicyManager(kernel).install_two_region_policy()
            compiled = compile_module(
                SRC, CompileOptions(module_name="gm", protect=protect)
            )
            loaded = kernel.insmod(compiled)
            results[protect] = [
                kernel.run_function(loaded, "f", [i, i * 7]) for i in range(8)
            ]
        assert results[False] == results[True]
