"""Guard optimization (abl2) tests: elimination and loop hoisting."""

from repro.ir import Module, verify_module
from repro.ir.instructions import Call
from repro.minicc import compile_source
from repro.passes import (
    AttestationPass,
    DCEPass,
    GuardInjectionPass,
    GuardOptPass,
    Mem2RegPass,
    PassManager,
    PeepholePass,
)


def build(src: str, hoist=True):
    m = compile_source(src, "go")
    PassManager(
        [Mem2RegPass(), PeepholePass(), DCEPass(), AttestationPass(),
         GuardInjectionPass()]
    ).run(m)
    opt = GuardOptPass(hoist_loops=hoist)
    opt.run(m)
    DCEPass().run(m)
    verify_module(m)
    return m, opt


def guard_count(m: Module) -> int:
    return sum(
        1
        for fn in m.defined_functions()
        for i in fn.instructions()
        if isinstance(i, Call) and i.is_guard
    )


class TestDominatedElimination:
    def test_repeated_access_same_pointer_dedups(self):
        src = """
        __export long f(long *p) {
            long a = *p;
            long b = *p;
            long c = *p;
            return a + b + c;
        }
        """
        m, opt = build(src, hoist=False)
        assert opt.guards_removed == 2
        assert guard_count(m) == 1

    def test_different_flags_not_merged(self):
        src = """
        __export void f(long *p) {
            long a = *p;   /* read  */
            *p = a + 1;    /* write: different flags, guard kept */
        }
        """
        m, opt = build(src, hoist=False)
        assert guard_count(m) == 2

    def test_different_pointers_not_merged(self):
        src = """
        __export long f(long *p, long *q) {
            return *p + *q;
        }
        """
        m, opt = build(src, hoist=False)
        assert guard_count(m) == 2

    def test_cross_block_domination(self):
        src = """
        __export long f(long *p, int c) {
            long a = *p;          /* dominates both branches */
            if (c) return a + *p; /* redundant */
            return *p;            /* redundant */
        }
        """
        m, opt = build(src, hoist=False)
        assert guard_count(m) == 1

    def test_branch_guards_not_merged_across_siblings(self):
        src = """
        __export long f(long *p, int c) {
            if (c) return *p;
            return *p;   /* neither branch dominates the other */
        }
        """
        m, opt = build(src, hoist=False)
        assert guard_count(m) == 2


class TestLoopHoisting:
    LOOP = """
    __export long f(long *p, long n) {
        long s = 0;
        for (long i = 0; i < n; i++) {
            s += *p;      /* loop-invariant address */
        }
        return s;
    }
    """

    def test_invariant_guard_hoisted(self):
        m, opt = build(self.LOOP, hoist=True)
        assert opt.guards_hoisted >= 1
        # After hoist + dedup, the loop body holds no guards.
        fn = m.get_function("f")
        from repro.passes import find_loops

        for loop in find_loops(fn):
            for block in loop.blocks:
                assert not any(
                    isinstance(i, Call) and i.is_guard
                    for i in block.instructions
                ), "guard left inside loop"

    def test_variant_address_not_hoisted(self):
        src = """
        __export long f(long *p, long n) {
            long s = 0;
            for (long i = 0; i < n; i++) {
                s += p[i];   /* address depends on i */
            }
            return s;
        }
        """
        m, opt = build(src, hoist=True)
        assert opt.guards_hoisted == 0

    def test_semantics_preserved_after_hoisting(self):
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.kernel import Kernel

        kernel = Kernel()
        results = {}
        for label, optimize_guards in (("plain", False), ("opt", True)):
            compiled = compile_module(
                """
                long data[8];
                __export long f(long n) {
                    long s = 0;
                    data[3] = 7;
                    for (long i = 0; i < n; i++) { s += data[3]; }
                    return s;
                }
                """,
                CompileOptions(
                    module_name=f"hm_{label}", protect=True,
                    optimize_guards=optimize_guards,
                ),
            )
            # No policy module: run unenforced by loading into a kernel with
            # a permissive guard stub.
            k = Kernel()
            k.export_native("carat_guard", lambda ctx, a, s, f, m="": 1)
            loaded = k.insmod(compiled)
            results[label] = [k.run_function(loaded, "f", [n]) for n in range(6)]
        assert results["plain"] == results["opt"]

    def test_guard_count_metadata_updated(self):
        from repro import abi

        m, opt = build(self.LOOP, hoist=True)
        assert m.metadata[abi.META_GUARD_COUNT] == guard_count(m)

    def test_optimized_has_fewer_runtime_guards(self):
        """The abl2 headline: hoisting reduces executed guards per call."""
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.kernel import Kernel

        counts = {}
        for optimize_guards in (False, True):
            k = Kernel()
            executed = [0]

            def guard(ctx, a, s, f, m="", _e=executed):
                _e[0] += 1
                return 1

            k.export_native("carat_guard", guard)
            compiled = compile_module(
                self.LOOP,
                CompileOptions(
                    module_name="lm", protect=True,
                    optimize_guards=optimize_guards,
                ),
            )
            loaded = k.insmod(compiled)
            buf = k.kmalloc_allocator.kmalloc(8)
            k.run_function(loaded, "f", [buf, 50])
            counts[optimize_guards] = executed[0]
        assert counts[True] < counts[False]
        assert counts[False] >= 50  # one guard per iteration unoptimized
        assert counts[True] <= 3    # hoisted: constant per call
