"""mem2reg + DCE + peephole tests: structure and semantics preservation."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel
from repro.ir import Module, verify_module
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.minicc import compile_source
from repro.passes import DCEPass, Mem2RegPass, PassManager, PeepholePass


def counts(module: Module):
    allocas = loads = stores = phis = 0
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, Alloca):
                allocas += 1
            elif isinstance(inst, Load):
                loads += 1
            elif isinstance(inst, Store):
                stores += 1
            elif isinstance(inst, Phi):
                phis += 1
    return allocas, loads, stores, phis


SCALAR_HEAVY = """
__export long f(long n) {
    long a = 1;
    long b = 2;
    long c = a + b;
    for (long i = 0; i < n; i++) {
        c = c + a;
        a = b;
        b = c;
    }
    return c;
}
"""


class TestMem2Reg:
    def test_promotes_scalar_locals(self):
        m = compile_source(SCALAR_HEAVY, "m")
        before = counts(m)
        assert before[0] > 0
        changed = Mem2RegPass().run(m)
        assert changed
        verify_module(m)
        after = counts(m)
        assert after[0] == 0, "all scalar allocas should be promoted"
        assert after[1] == 0 and after[2] == 0
        assert after[3] > 0, "loop-carried values need phis"

    def test_keeps_escaping_allocas(self):
        src = """
        static void mutate(long *p) { *p = 42; }
        __export long f(void) {
            long x = 0;
            mutate(&x);
            return x;
        }
        """
        m = compile_source(src, "m")
        Mem2RegPass().run(m)
        verify_module(m)
        allocas, loads, stores, _ = counts(m)
        assert allocas == 1, "address-taken local must stay in memory"
        assert loads >= 1

    def test_keeps_aggregate_allocas(self):
        src = """
        __export int f(void) {
            int xs[4];
            xs[0] = 5;
            return xs[0];
        }
        """
        m = compile_source(src, "m")
        Mem2RegPass().run(m)
        allocas, *_ = counts(m)
        assert allocas == 1

    def test_idempotent(self):
        m = compile_source(SCALAR_HEAVY, "m")
        Mem2RegPass().run(m)
        assert Mem2RegPass().run(m) is False

    def test_semantics_preserved(self):
        def run(optimize):
            kernel = Kernel()
            compiled = compile_module(
                SCALAR_HEAVY,
                CompileOptions(
                    module_name=f"m{int(optimize)}", protect=False,
                    optimize=optimize,
                ),
            )
            loaded = kernel.insmod(compiled)
            return [kernel.run_function(loaded, "f", [n]) for n in range(8)]

        assert run(False) == run(True)

    def test_conditional_phi_values(self, run_c):
        # After mem2reg `x` is a phi of 1 and 2; result must match C.
        src = """
        __export int f(int c) {
            int x;
            if (c) x = 1; else x = 2;
            return x;
        }
        """
        assert run_c(src, "f", 1) == 1
        assert run_c(src, "f", 0) == 2

    def test_uninitialized_variable_reads_do_not_crash(self, run_c):
        src = """
        __export int f(int c) {
            int x;
            if (c) x = 7;
            if (c) return x;
            return 0;
        }
        """
        assert run_c(src, "f", 1) == 7
        assert run_c(src, "f", 0) == 0


class TestDCE:
    def test_removes_dead_arithmetic(self):
        src = """
        __export int f(int a) {
            int dead = a * 12345;
            int dead2 = dead + 1;
            return a;
        }
        """
        m = compile_source(src, "m")
        Mem2RegPass().run(m)
        dce = DCEPass()
        dce.run(m)
        assert dce.removed >= 2

    def test_keeps_loads(self):
        # Loads may hit MMIO; DCE must not delete them.
        src = """
        __export int f(int *p) {
            int unused = *p;
            return 0;
        }
        """
        m = compile_source(src, "m")
        Mem2RegPass().run(m)
        DCEPass().run(m)
        _, loads, _, _ = counts(m)
        assert loads == 1

    def test_keeps_calls(self):
        src = """
        extern int printk(char *fmt, ...);
        __export int f(void) {
            printk("side effect");
            return 0;
        }
        """
        m = compile_source(src, "m")
        Mem2RegPass().run(m)
        DCEPass().run(m)
        assert any(
            i.opcode == "call" for i in m.get_function("f").instructions()
        )


class TestPeephole:
    def test_folds_constant_arithmetic(self):
        src = "__export int f(void) { return (3 + 4) * 2; }"
        m = compile_source(src, "m")
        pm = PassManager([Mem2RegPass(), PeepholePass(), DCEPass()])
        pm.run(m)
        fn = m.get_function("f")
        ret = fn.entry.terminator
        from repro.ir.values import ConstantInt

        assert isinstance(ret.value, ConstantInt)
        assert ret.value.signed == 14

    def test_collapses_bool_recheck_pattern(self, run_c):
        # if (a < b) emits icmp;zext;icmp ne 0 before peephole; after,
        # a single icmp should remain — and semantics must hold.
        src = "__export int f(int a, int b) { if (a < b) return 1; return 0; }"
        m = compile_source(src, "m")
        pm = PassManager([Mem2RegPass(), PeepholePass(), DCEPass()])
        pm.run(m)
        icmps = [
            i for i in m.get_function("f").instructions() if i.opcode == "icmp"
        ]
        assert len(icmps) == 1
        assert run_c(src, "f", 1, 2) == 1
        assert run_c(src, "f", 2, 1) == 0

    def test_division_by_zero_not_folded(self):
        src = "__export int f(void) { return 1 / 0; }"
        m = compile_source(src, "m")
        PeepholePass().run(m)
        # The sdiv must survive so the runtime fault fires.
        assert any(
            i.opcode == "binop" and i.op == "sdiv"
            for i in m.get_function("f").instructions()
        )

    def test_algebraic_identities(self):
        src = "__export long f(long x) { return (x + 0) * 1 | 0; }"
        m = compile_source(src, "m")
        pm = PassManager([Mem2RegPass(), PeepholePass(), DCEPass()])
        pm.run(m)
        binops = [
            i for i in m.get_function("f").instructions() if i.opcode == "binop"
        ]
        assert binops == []

    def test_semantics_preserved_random_inputs(self, run_c):
        src = """
        __export long f(long a, long b) {
            long x = (a + 0) * 1;
            long y = (b | 0) ^ 0;
            return (x << 1) + (y >> 1) + (3 * 4);
        }
        """
        for a, b in ((1, 2), (100, 7), (0, 0)):
            expected = (a << 1) + (b >> 1) + 12
            assert run_c(src, "f", a, b) == expected
