"""Dominator / loop analysis tests on hand-built CFGs."""

from repro.ir import Function, FunctionType, I32, IRBuilder, VOID
from repro.passes import DominatorTree, find_loops, unreachable_blocks


def diamond():
    """entry -> (left | right) -> merge"""
    fn = Function("diamond", FunctionType(VOID, [I32]), ["c"])
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    merge = fn.add_block("merge")
    b = IRBuilder(entry)
    cond = b.icmp("ne", fn.args[0], b.const_i32(0))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.ret()
    return fn, entry, left, right, merge


def loop_cfg():
    """entry -> header <-> body, header -> exit"""
    fn = Function("loopy", FunctionType(VOID, [I32]), ["n"])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    c = b.icmp("sgt", fn.args[0], b.const_i32(0))
    b.cond_br(c, body, exit_)
    b.position_at_end(body)
    b.br(header)
    b.position_at_end(exit_)
    b.ret()
    return fn, entry, header, body, exit_


class TestDominators:
    def test_entry_dominates_all(self):
        fn, entry, left, right, merge = diamond()
        dom = DominatorTree(fn)
        for block in fn.blocks:
            assert dom.dominates(entry, block)

    def test_branches_do_not_dominate_merge(self):
        fn, entry, left, right, merge = diamond()
        dom = DominatorTree(fn)
        assert not dom.dominates(left, merge)
        assert not dom.dominates(right, merge)
        assert dom.idom[id(merge)] is entry

    def test_dominance_is_reflexive(self):
        fn, entry, *_ = diamond()
        dom = DominatorTree(fn)
        assert dom.dominates(entry, entry)

    def test_dominance_frontier_of_branches_is_merge(self):
        fn, entry, left, right, merge = diamond()
        dom = DominatorTree(fn)
        assert dom.frontiers[id(left)] == [merge]
        assert dom.frontiers[id(right)] == [merge]

    def test_loop_header_frontier_contains_itself(self):
        fn, entry, header, body, exit_ = loop_cfg()
        dom = DominatorTree(fn)
        assert header in dom.frontiers[id(body)]

    def test_children_partition(self):
        fn, entry, left, right, merge = diamond()
        dom = DominatorTree(fn)
        kids = dom.children[id(entry)]
        assert {b.name for b in kids} == {"left", "right", "merge"}


class TestLoops:
    def test_finds_natural_loop(self):
        fn, entry, header, body, exit_ = loop_cfg()
        loops = find_loops(fn)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header is header
        assert loop.contains(body)
        assert not loop.contains(entry)
        assert not loop.contains(exit_)
        assert loop.latches == [body]

    def test_no_loops_in_diamond(self):
        fn, *_ = diamond()
        assert find_loops(fn) == []

    def test_nested_loop_membership(self):
        fn = Function("nested", FunctionType(VOID, [I32]), ["n"])
        entry = fn.add_block("entry")
        outer = fn.add_block("outer")
        inner = fn.add_block("inner")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        b.br(outer)
        b.position_at_end(outer)
        c = b.icmp("sgt", fn.args[0], b.const_i32(0))
        b.cond_br(c, inner, exit_)
        b.position_at_end(inner)
        c2 = b.icmp("sgt", fn.args[0], b.const_i32(5))
        b.cond_br(c2, inner, outer)
        b.position_at_end(exit_)
        b.ret()
        loops = find_loops(fn)
        headers = {loop.header.name for loop in loops}
        assert headers == {"outer", "inner"}
        outer_loop = next(l for l in loops if l.header.name == "outer")
        assert outer_loop.contains(inner)


class TestUnreachable:
    def test_detects_orphan_blocks(self):
        fn, *_ = diamond()
        orphan = fn.add_block("orphan")
        b = IRBuilder(orphan)
        b.ret()
        dead = unreachable_blocks(fn)
        assert [d.name for d in dead] == [orphan.name]

    def test_all_reachable(self):
        fn, *_ = diamond()
        assert unreachable_blocks(fn) == []
