"""-O2 range coalescing and the value-numbering guard key.

Covers the two new GuardOptPass behaviours: merging same-block guards at
constant offsets off one root, and replacing ``base + i*stride`` loop
sweeps with a single preheader-wide range guard — plus the regression
for the old ``id(root)``-based guard key, which both missed structurally
identical recreated address chains and could alias recycled ids.
"""

from repro.ir import Module, verify_module
from repro.ir.instructions import Call
from repro.minicc import compile_source
from repro.passes import (
    AttestationPass,
    DCEPass,
    GuardInjectionPass,
    GuardOptPass,
    Mem2RegPass,
    PassManager,
    PeepholePass,
)
from repro.passes.guard_opt import _ValueNumber


def build(src: str, **opt_kwargs):
    m = compile_source(src, "cm")
    PassManager(
        [Mem2RegPass(), PeepholePass(), DCEPass(), AttestationPass(),
         GuardInjectionPass()]
    ).run(m)
    opt = GuardOptPass(**opt_kwargs)
    opt.run(m)
    DCEPass().run(m)
    verify_module(m)
    return m, opt


def guards(m: Module) -> list[Call]:
    return [
        i
        for fn in m.defined_functions()
        for i in fn.instructions()
        if isinstance(i, Call) and i.is_guard
    ]


class TestBlockCoalescing:
    RING = """
    long ring[8];
    __export void fill() {
        ring[0] = 1;
        ring[1] = 2;
        ring[2] = 3;
        ring[3] = 4;
    }
    """

    def test_consecutive_stores_merge_to_one_wide_guard(self):
        m, opt = build(self.RING, coalesce=True)
        assert opt.guards_coalesced == 3
        gs = guards(m)
        assert len(gs) == 1
        # The wide guard spans all four 8-byte slots.
        assert gs[0].args[1].value == 32

    def test_coalescing_off_by_default(self):
        m, opt = build(self.RING)
        assert opt.guards_coalesced == 0
        assert len(guards(m)) == 4

    def test_mixed_flags_not_merged(self):
        src = """
        long ring[8];
        __export long f() {
            ring[0] = 1;          /* write */
            return ring[1];       /* read: different flags */
        }
        """
        m, opt = build(src, coalesce=True)
        assert opt.guards_coalesced == 0
        assert len(guards(m)) == 2

    def test_different_roots_not_merged(self):
        src = """
        long a[4];
        long b[4];
        __export void f() {
            a[0] = 1;
            b[0] = 2;
        }
        """
        m, opt = build(src, coalesce=True)
        assert opt.guards_coalesced == 0
        assert len(guards(m)) == 2

    def test_semantics_preserved(self):
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.kernel import Kernel

        src = """
        long ring[8];
        __export long f(long x) {
            ring[0] = x;
            ring[1] = x + 1;
            ring[2] = x + 2;
            long s = 0;
            for (long i = 0; i < 3; i++) { s += ring[i]; }
            return s;
        }
        """
        results = {}
        for level in (0, 2):
            k = Kernel()
            k.export_native("carat_guard", lambda ctx, a, s, f, m="": 1)
            compiled = compile_module(
                src,
                CompileOptions(module_name=f"cm{level}", protect=True,
                               opt_level=level),
            )
            loaded = k.insmod(compiled)
            results[level] = [k.run_function(loaded, "f", [x]) for x in range(5)]
        assert results[2] == results[0]


class TestSweepCoalescing:
    SWEEP = """
    long buf[16];
    __export void fill() {
        for (long i = 0; i < 16; i++) {
            buf[i] = i;
        }
    }
    """

    def test_counted_sweep_becomes_one_range_guard(self):
        m, opt = build(self.SWEEP, coalesce=True)
        assert opt.guards_coalesced >= 1
        gs = guards(m)
        assert len(gs) == 1
        # One wide guard over the whole 16 * 8-byte sweep.
        assert gs[0].args[1].value == 16 * 8

    def test_runtime_guard_count_drops_to_constant(self):
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.kernel import Kernel

        counts = {}
        for level in (0, 2):
            k = Kernel()
            executed = [0]

            def guard(ctx, a, s, f, m="", _e=executed):
                _e[0] += 1
                return 1

            k.export_native("carat_guard", guard)
            compiled = compile_module(
                self.SWEEP,
                CompileOptions(module_name=f"sw{level}", protect=True,
                               opt_level=level),
            )
            loaded = k.insmod(compiled)
            k.run_function(loaded, "fill", [])
            counts[level] = executed[0]
        assert counts[0] >= 16   # one guard per iteration, faithful build
        assert counts[2] <= 2    # one wide preheader guard

    def test_unknown_bound_not_coalesced(self):
        src = """
        long buf[16];
        __export void fill(long n) {
            for (long i = 0; i < n; i++) {
                buf[i] = i;
            }
        }
        """
        m, opt = build(src, coalesce=True)
        assert opt.guards_coalesced == 0


class TestValueNumberKey:
    def test_recreated_address_chains_dedup(self):
        """Two separately materialized ``data[5]`` chains guard once.

        The old ``id(root)`` key treated the recreated GEP objects as
        distinct roots and kept both guards.
        """
        src = """
        long data[16];
        __export long f() {
            long a = data[5];
            long b = data[5];
            return a + b;
        }
        """
        m, opt = build(src, hoist_loops=False)
        assert opt.guards_removed >= 1
        assert len(guards(m)) == 1

    def test_opaque_roots_stay_distinct(self):
        """Loads produce fresh values: ``**pp`` twice must keep both
        inner guards (the outer load may return different pointers)."""
        src = """
        __export long f(long **pp) {
            long a = **pp;
            long b = **pp;
            return a + b;
        }
        """
        m, opt = build(src, hoist_loops=False)
        # Outer *pp guards dedup (same argument root); inner guards on
        # the two loaded pointers must not.
        inner = [
            g for g in guards(m)
            if not any(
                getattr(arg, "index", None) == 0 for arg in g.args
            )
        ]
        assert len(guards(m)) >= 2

    def test_memo_rejects_recycled_id(self):
        """Regression for the id-reuse hazard: a memo slot whose id was
        recycled by a different object must recompute, never return the
        stale key."""
        from repro.ir.types import I64
        from repro.ir.values import ConstantInt

        vn = _ValueNumber()
        a = ConstantInt(I64, 1)
        b = ConstantInt(I64, 2)
        # Simulate id(a) being recycled: plant a's slot with b's entry.
        vn._memo[id(a)] = (b, ("const", "i64", 2))
        assert vn.key(a) == ("const", "i64", 1)

    def test_structural_keys_equal_for_equal_chains(self):
        from repro.ir.types import I64, PointerType
        from repro.ir.values import ConstantInt, GlobalValue

        vn = _ValueNumber()
        ptr = PointerType(I64)
        g = GlobalValue(ptr, "data")
        from repro.ir.instructions import Gep

        g1 = Gep(ptr, g, ConstantInt(I64, 5), 8, 0, "g1")
        g2 = Gep(ptr, g, ConstantInt(I64, 5), 8, 0, "g2")
        assert vn.key(g1) == vn.key(g2)
        g3 = Gep(ptr, g, ConstantInt(I64, 6), 8, 0, "g3")
        assert vn.key(g3) != vn.key(g1)
