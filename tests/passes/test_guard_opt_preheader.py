"""Guard hoisting when the loop header needs an edge split (no natural
preheader): the conditional-entry case the structured front end never
emits, built by hand in IR."""

from repro import abi
from repro.ir import (
    Function,
    FunctionType,
    I64,
    IRBuilder,
    Module,
    VOID,
    ptr,
    verify_module,
)
from repro.ir.instructions import Call
from repro.passes import (
    AttestationPass,
    GuardInjectionPass,
    GuardOptPass,
    PassManager,
)


def build_conditional_entry_loop() -> Module:
    """f(p, n): if (n > 0) { do { *p; } while (--n); }  — the branch jumps
    straight to the loop header, so hoisting must split the edge."""
    m = Module("preheader")
    fn = Function("f", FunctionType(I64, [ptr(I64), I64]), ["p", "n"])
    m.add_function(fn)
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    done = fn.add_block("done")
    b = IRBuilder(entry)
    c = b.icmp("sgt", fn.args[1], b.const_i64(0))
    b.cond_br(c, header, done)  # conditional edge INTO the header
    b.position_at_end(header)
    n_phi = b.phi(I64, "n.loop")
    v = b.load(fn.args[0], "v")
    n_next = b.sub(n_phi, b.const_i64(1), "n.next")
    c2 = b.icmp("sgt", n_next, b.const_i64(0), "c2")
    b.cond_br(c2, header, done)
    b.position_at_end(done)
    b.ret(b.const_i64(0))
    n_phi.add_incoming(fn.args[1], entry)
    n_phi.add_incoming(n_next, header)
    verify_module(m)
    return m


def guards_in_block(block):
    return [i for i in block.instructions if isinstance(i, Call) and i.is_guard]


def test_edge_split_creates_preheader_and_hoists():
    m = build_conditional_entry_loop()
    PassManager([AttestationPass(), GuardInjectionPass()]).run(m)
    fn = m.get_function("f")
    header = fn.block_named("header")
    assert len(guards_in_block(header)) == 1

    opt = GuardOptPass()
    opt.run(m)
    verify_module(m)
    assert opt.guards_hoisted == 1

    # A new preheader block exists on the entry edge...
    names = [b.name for b in fn.blocks]
    pre = [n for n in names if "preheader" in n]
    assert pre, f"no preheader created: {names}"
    preheader = fn.block_named(pre[0])
    # ...containing the hoisted guard...
    assert len(guards_in_block(preheader)) == 1
    # ...and the loop header runs guard-free.
    assert guards_in_block(header) == []
    # The entry branch was retargeted and the phi rewired.
    entry = fn.block_named("entry")
    assert preheader in entry.terminator.targets
    phi = next(iter(header.phis()))
    incoming_blocks = {blk.name for _, blk in phi.incoming}
    assert pre[0] in incoming_blocks and "entry" not in incoming_blocks


def test_split_loop_still_computes_correctly():
    from repro.kernel import Kernel
    from repro.kernel.module_loader import CompiledModule

    m = build_conditional_entry_loop()
    PassManager([AttestationPass(), GuardInjectionPass()]).run(m)
    GuardOptPass().run(m)
    verify_module(m)
    kernel = Kernel()
    executed = [0]
    kernel.export_native(
        "carat_guard", lambda ctx, a, s, f, mod="": executed.__setitem__(
            0, executed[0] + 1
        ) or 1
    )
    loaded = kernel.insmod(CompiledModule(ir=m))
    buf = kernel.kmalloc_allocator.kmalloc(8)
    assert kernel.run_function(loaded, "f", [buf, 5]) == 0
    assert executed[0] == 1  # hoisted: one guard for five iterations
    # n = 0 path: the guard is speculative (preheader runs only when the
    # branch enters the loop) — here the loop is skipped entirely.
    executed[0] = 0
    assert kernel.run_function(loaded, "f", [buf, 0]) == 0
    assert executed[0] == 0
