"""/proc introspection tests."""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.net import make_test_frame


@pytest.fixture()
def system():
    return CaratKopSystem(SystemConfig(machine=None, protect=True))


class TestProc:
    def test_modules_lists_driver(self, system):
        text = system.kernel.proc.read("/proc/modules")
        assert "e1000e" in text
        assert "protected" in text
        assert "guards=" in text

    def test_interrupts_after_enable(self, system):
        system.netdev.enable_interrupts()
        system.netdev.inject_rx(make_test_frame(64, 0))
        text = system.kernel.proc.read("/proc/interrupts")
        assert "e1000e" in text
        line = [l for l in text.splitlines() if "e1000e" in l][0]
        assert " 1 " in line or line.split()[1] == "1"

    def test_meminfo_tracks_kmalloc(self, system):
        before = system.kernel.proc.read("/proc/meminfo")
        addr = system.kernel.kmalloc_allocator.kmalloc(4096)
        after = system.kernel.proc.read("/proc/meminfo")
        assert before != after
        assert "KmallocLive" in after

    def test_devices_lists_carat(self, system):
        assert "/dev/carat" in system.kernel.proc.read("/proc/devices")

    def test_carat_policy_dump(self, system):
        system.blast(size=128, count=5)
        text = system.kernel.proc.read("/proc/carat")
        assert "index: linear-table" in text
        assert "enforce: on" in text
        assert "checks:" in text
        assert "default DENY" in text
        assert "call_policy: allow-all" in text

    def test_carat_without_policy_module(self, kernel):
        assert "no policy module" in kernel.proc.read("/proc/carat")

    def test_unknown_path(self, system):
        with pytest.raises(FileNotFoundError):
            system.kernel.proc.read("/proc/nope")

    def test_paths(self, system):
        assert "/proc/carat" in system.kernel.proc.paths()

    def test_call_allowlist_shown(self, system):
        system.policy_manager.set_call_allowlist(True)
        system.policy_manager.allow_call("kmalloc")
        text = system.kernel.proc.read("/proc/carat")
        assert "allowlist(1)" in text


class TestProcEnforcement:
    """The graceful-enforcement additions to /proc/carat and /proc/journal."""

    def test_carat_shows_global_mode(self, system):
        text = system.kernel.proc.read("/proc/carat")
        assert "mode: panic" in text
        system.policy_manager.set_mode("eject")
        assert "mode: eject" in system.kernel.proc.read("/proc/carat")
        # The legacy line keeps its meaning: eject still enforces.
        assert "enforce: on" in system.kernel.proc.read("/proc/carat")

    def test_carat_shows_override_and_violations(self, system):
        from repro import abi
        from repro.kernel import ViolationFault

        policy = system.policy
        policy.set_module_mode("rogue", "eject")
        with pytest.raises(ViolationFault):
            policy._guard(None, 0x400, 8, abi.FLAG_WRITE, "rogue")
        text = system.kernel.proc.read("/proc/carat")
        assert "mode[rogue]: eject" in text
        assert "violations[rogue]: 1" in text

    def test_carat_shows_isolated_and_quarantined(self, system):
        system.kernel.isolate("e1000e", "operator request")
        system.kernel.quarantine_module(system.driver_compiled, "bad actor")
        text = system.kernel.proc.read("/proc/carat")
        assert "isolated: e1000e" in text
        assert "quarantined: e1000e (bad actor)" in text
        assert "entry_refusals:" in text
        assert "violation_faults:" in text

    def test_journal_tracks_driver_side_effects(self, system):
        # insmod journaled the driver's exported symbols at minimum.
        text = system.kernel.proc.read("/proc/journal")
        assert "e1000e: depth=" in text
        assert "symbol=" in text

    def test_journal_records_rollbacks(self, system):
        from repro.core.pipeline import CompileOptions, compile_module

        src = "__export long f(void) { return 7; }\n"
        compiled = compile_module(src, CompileOptions(
            module_name="victim", key=system.signing_key))
        system.kernel.insmod(compiled)
        system.kernel.eject("victim", "test")
        text = system.kernel.proc.read("/proc/journal")
        assert "rollback: victim" in text
        assert "victim: depth=" not in text  # drained after rollback
