"""Timer-wheel tests + the heartbeat workload module."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel import KernelPanic

HEARTBEAT_MODULE = r"""
extern void *kmalloc(long size, int flags);
extern long mod_timer(char *handler, long delay_us, long arg);
extern long del_timer(long timer_id);
extern long time_us(void);
extern int printk(char *fmt, ...);

enum { RING_SLOTS = 32 };

long *stamp_ring;
long beats;
long period_us;
long armed_timer;
int  stopping;

/* The timer handler: record a timestamp, re-arm for the next beat. */
__export void hb_tick(long arg) {
    long slot = beats % RING_SLOTS;
    stamp_ring[slot] = time_us();
    beats += 1;
    if (!stopping) {
        armed_timer = mod_timer("hb_tick", period_us, arg);
    }
}

__export int hb_start(long period) {
    stamp_ring = (long *)kmalloc(RING_SLOTS * 8, 0);
    if (stamp_ring == null) { return -1; }
    for (int i = 0; i < RING_SLOTS; i++) { stamp_ring[i] = 0; }
    beats = 0;
    stopping = 0;
    period_us = period;
    armed_timer = mod_timer("hb_tick", period, 0);
    return armed_timer > 0 ? 0 : -1;
}

__export int hb_stop(void) {
    stopping = 1;
    del_timer(armed_timer);
    return 0;
}

__export long hb_beats(void) { return beats; }
__export long hb_stamp(int slot) { return stamp_ring[slot]; }
"""


@pytest.fixture()
def hb_system():
    system = CaratKopSystem(SystemConfig(machine=None, protect=True))
    compiled = compile_module(
        HEARTBEAT_MODULE,
        CompileOptions(module_name="heartbeat", key=system.signing_key),
    )
    loaded = system.kernel.insmod(compiled)
    return system, loaded


class TestTimerWheel:
    def test_timer_fires_after_delay(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        assert kernel.run_function(loaded, "hb_start", [1000]) == 0
        assert kernel.run_function(loaded, "hb_beats", []) == 0
        kernel.advance_time(999)
        assert kernel.run_function(loaded, "hb_beats", []) == 0
        kernel.advance_time(2)
        assert kernel.run_function(loaded, "hb_beats", []) == 1

    def test_rearm_produces_steady_beats(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        kernel.run_function(loaded, "hb_start", [100])
        for _ in range(10):
            kernel.advance_time(100)
        beats = kernel.run_function(loaded, "hb_beats", [])
        assert beats == 10

    def test_one_advance_fires_all_due_beats(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        kernel.run_function(loaded, "hb_start", [100])
        # A single big advance only fires timers due at its end: the
        # handler's re-arm lands in the future relative to 'now'.
        kernel.advance_time(1000)
        assert kernel.run_function(loaded, "hb_beats", []) == 1

    def test_stop_cancels(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        kernel.run_function(loaded, "hb_start", [100])
        kernel.advance_time(100)
        kernel.run_function(loaded, "hb_stop", [])
        kernel.advance_time(1000)
        assert kernel.run_function(loaded, "hb_beats", []) == 1
        assert kernel.timers.pending() == 0

    def test_timestamps_recorded_under_guards(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        checks_before = system.guard_stats()["checks"]
        kernel.run_function(loaded, "hb_start", [50])
        for _ in range(5):
            kernel.advance_time(50)
        assert system.guard_stats()["checks"] > checks_before
        stamps = [
            kernel.run_function(loaded, "hb_stamp", [i]) for i in range(5)
        ]
        assert stamps == sorted(stamps)
        assert stamps[0] > 0

    def test_rmmod_releases_timers(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        kernel.run_function(loaded, "hb_start", [100])
        kernel.rmmod("heartbeat")
        assert kernel.timers.pending() == 0
        kernel.advance_time(1000)  # nothing fires, nothing crashes

    def test_timer_policy_violation_panics(self, hb_system):
        """A heartbeat whose ring the operator firewalled: the very first
        tick dies inside the handler."""
        system, loaded = hb_system
        kernel = system.kernel
        kernel.run_function(loaded, "hb_start", [100])
        ring = kernel.run_function(loaded, "hb_stamp", [0])  # warm read ok
        # Deny the module its stamp ring (simulating a policy mistake,
        # cause (1) of §3.1's three).
        mgr = system.policy_manager
        mgr.clear()
        mgr.set_default(False)
        with pytest.raises(KernelPanic):
            kernel.advance_time(100)

    def test_unknown_handler_rejected_via_native(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        bad = compile_module(
            """
            extern long mod_timer(char *handler, long delay_us, long arg);
            __export long f(void) { return mod_timer("ghost", 10, 0); }
            """,
            CompileOptions(module_name="badtimer", key=system.signing_key),
        )
        lb = kernel.insmod(bad)
        rc = kernel.run_function(lb, "f", [])
        assert rc == (1 << 64) - 1  # -1: rejected
        assert any("mod_timer failed" in l for l in kernel.dmesg_log)

    def test_del_timer_unknown_id(self, hb_system):
        system, _ = hb_system
        assert system.kernel.timers.del_timer(9999) is False

    def test_time_advances_with_machine_clock(self):
        system = CaratKopSystem(SystemConfig(machine="r350", protect=True))
        t0 = system.kernel.time_us()
        system.blast(size=128, count=50)
        t1 = system.kernel.time_us()
        assert t1 > t0
        # 50 packets at ~115kpps is ~435us of simulated time.
        assert 200 < (t1 - t0) < 2000

    def test_timer_storm_watchdog(self, hb_system):
        system, loaded = hb_system
        kernel = system.kernel
        kernel.run_function(loaded, "hb_start", [0])  # zero period!
        kernel.advance_time(10)
        assert any("timer storm" in l for l in kernel.dmesg_log)
