"""Module loader, symbol table, chardev, and native tests."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import (
    IoctlError,
    Kernel,
    KernelPanic,
    LoadError,
    Symbol,
    SymbolTable,
)
from repro.kernel.chardev import ENOENT, EPERM


class TestSymbolTable:
    def test_export_and_resolve(self):
        t = SymbolTable()
        t.export_native("foo", lambda ctx: 1)
        assert t.resolve("foo").is_native
        assert "foo" in t

    def test_duplicate_export_rejected(self):
        t = SymbolTable()
        t.export_native("foo", lambda ctx: 1)
        with pytest.raises(ValueError):
            t.export_native("foo", lambda ctx: 2)

    def test_unresolved_raises(self):
        t = SymbolTable()
        with pytest.raises(KeyError):
            t.resolve("ghost")
        assert t.lookup("ghost") is None

    def test_remove_owner(self):
        t = SymbolTable()
        t.export_native("a", lambda: 0, owner="mod1")
        t.export_native("b", lambda: 0, owner="mod1")
        t.export_native("c", lambda: 0, owner="mod2")
        removed = t.remove_owner("mod1")
        assert sorted(removed) == ["a", "b"]
        assert "c" in t and "a" not in t

    def test_symbol_needs_exactly_one_impl(self):
        with pytest.raises(ValueError):
            Symbol("x")
        with pytest.raises(ValueError):
            from repro.ir import Function, FunctionType, VOID

            Symbol("x", native=lambda: 0,
                   function=Function("f", FunctionType(VOID, [])))


MODULE_A = """
long shared_state;
__export long get_state(void) { return shared_state; }
__export long set_state(long v) { shared_state = v; return v; }
"""

MODULE_B = """
extern long get_state(void);
extern long set_state(long v);
__export long use_a(void) { set_state(41); return get_state() + 1; }
"""


class TestLoader:
    def test_insmod_rmmod_cycle(self, kernel):
        a = compile_module(MODULE_A, CompileOptions(module_name="a", protect=False))
        kernel.insmod(a)
        assert kernel.lsmod() == ["a"]
        kernel.rmmod("a")
        assert kernel.lsmod() == []

    def test_duplicate_insmod_rejected(self, kernel):
        a = compile_module(MODULE_A, CompileOptions(module_name="a", protect=False))
        kernel.insmod(a)
        with pytest.raises(LoadError, match="already loaded"):
            kernel.insmod(a)

    def test_rmmod_unknown(self, kernel):
        with pytest.raises(LoadError, match="not loaded"):
            kernel.rmmod("ghost")

    def test_cross_module_linking(self, kernel):
        a = compile_module(MODULE_A, CompileOptions(module_name="a", protect=False))
        b = compile_module(MODULE_B, CompileOptions(module_name="b", protect=False))
        kernel.insmod(a)
        loaded_b = kernel.insmod(b)
        assert kernel.run_function(loaded_b, "use_a", []) == 42

    def test_unresolved_symbol_rejected(self, kernel):
        b = compile_module(MODULE_B, CompileOptions(module_name="b", protect=False))
        with pytest.raises(LoadError, match="unresolved symbol"):
            kernel.insmod(b)  # module a absent

    def test_refcount_blocks_rmmod(self, kernel):
        a = compile_module(MODULE_A, CompileOptions(module_name="a", protect=False))
        b = compile_module(MODULE_B, CompileOptions(module_name="b", protect=False))
        kernel.insmod(a)
        kernel.insmod(b)
        with pytest.raises(LoadError, match="in use"):
            kernel.rmmod("a")
        kernel.rmmod("b")
        kernel.rmmod("a")  # now fine

    def test_init_module_runs_on_insmod(self, kernel):
        src = """
        extern int printk(char *fmt, ...);
        long initialized;
        __export int init_module(void) { initialized = 7; return 0; }
        __export long check(void) { return initialized; }
        """
        loaded = kernel.insmod(
            compile_module(src, CompileOptions(module_name="i", protect=False))
        )
        assert kernel.run_function(loaded, "check", []) == 7

    def test_failing_init_aborts_load(self, kernel):
        src = "__export int init_module(void) { return -1; }"
        with pytest.raises(LoadError, match="init_module returned"):
            kernel.insmod(
                compile_module(src, CompileOptions(module_name="bad", protect=False))
            )
        assert kernel.lsmod() == []

    def test_cleanup_module_runs_on_rmmod(self, kernel):
        src = """
        extern int printk(char *fmt, ...);
        __export int cleanup_module(void) { printk("bye from cleanup"); return 0; }
        __export int noop(void) { return 0; }
        """
        kernel.insmod(
            compile_module(src, CompileOptions(module_name="c", protect=False))
        )
        kernel.rmmod("c")
        assert any("bye from cleanup" in l for l in kernel.dmesg_log)

    def test_globals_initialized(self, kernel):
        src = """
        long answer = 42;
        int small = -7;
        char msg[6] = "hey";
        __export long get(void) { return answer; }
        __export int get_small(void) { return small; }
        __export int get_msg0(void) { return msg[0]; }
        """
        loaded = kernel.insmod(
            compile_module(src, CompileOptions(module_name="g", protect=False))
        )
        assert kernel.run_function(loaded, "get", []) == 42
        v = kernel.run_function(loaded, "get_small", [])
        assert v - (1 << 32) == -7 or v == -7
        assert kernel.run_function(loaded, "get_msg0", []) == ord("h")

    def test_module_memory_unmapped_after_rmmod(self, kernel):
        a = compile_module(MODULE_A, CompileOptions(module_name="a", protect=False))
        loaded = kernel.insmod(a)
        base = loaded.base
        kernel.rmmod("a")
        from repro.kernel import MemoryFault

        with pytest.raises(MemoryFault):
            kernel.address_space.read_bytes(base, 8)

    def test_modules_get_disjoint_regions(self, kernel):
        a = compile_module(MODULE_A, CompileOptions(module_name="a", protect=False))
        b = compile_module(MODULE_B, CompileOptions(module_name="b", protect=False))
        la = kernel.insmod(a)
        lb = kernel.insmod(b)
        assert la.base + la.size <= lb.base or lb.base + lb.size <= la.base


class TestNatives:
    def test_printk_formats(self, kernel, run_c):
        src = r"""
        extern int printk(char *fmt, ...);
        __export int f(void) {
            printk("int=%d hex=%x str=%s char=%c pct=%%", -5, 255, "ok", 'Z');
            return 0;
        }
        """
        run_c(src, "f")
        assert any(
            "int=-5 hex=ff str=ok char=Z pct=%" in l for l in kernel.dmesg_log
        )

    def test_memset_memcpy(self, kernel, run_c):
        src = """
        extern void *kmalloc(long size, int flags);
        extern void *memset(void *d, int c, long n);
        extern void *memcpy(void *d, void *s, long n);
        __export int f(void) {
            char *a = (char *)kmalloc(16, 0);
            char *b = (char *)kmalloc(16, 0);
            memset(a, 0x41, 16);
            memcpy(b, a, 16);
            return b[0] + b[15];
        }
        """
        assert run_c(src, "f") == 0x41 * 2

    def test_panic_native(self, kernel, run_c):
        src = """
        extern void panic(char *msg);
        __export int f(void) { panic("module-triggered halt"); return 0; }
        """
        with pytest.raises(KernelPanic, match="module-triggered halt"):
            run_c(src, "f")
        assert kernel.panicked == "module-triggered halt"

    def test_virt_phys_roundtrip(self, kernel, run_c):
        src = """
        extern void *kmalloc(long size, int flags);
        extern long virt_to_phys(void *p);
        extern long phys_to_virt(long phys);
        __export int f(void) {
            void *p = kmalloc(64, 0);
            return phys_to_virt(virt_to_phys(p)) == (long)p;
        }
        """
        assert run_c(src, "f") == 1

    def test_msr_natives(self, kernel, run_c):
        src = """
        extern void wrmsr(int msr, long value);
        extern long rdmsr(int msr);
        __export long f(void) { wrmsr(0x10, 777); return rdmsr(0x10); }
        """
        assert run_c(src, "f") == 777
        assert kernel.msr[0x10] == 777


class TestChardev:
    def test_unknown_device(self, kernel):
        with pytest.raises(IoctlError) as e:
            kernel.devices.ioctl("/dev/nope", 1)
        assert e.value.errno == ENOENT

    def test_register_requires_dev_prefix(self, kernel):
        with pytest.raises(ValueError):
            kernel.devices.register("carat", object())

    def test_dispatch(self, kernel):
        class Dev:
            def ioctl(self, cmd, arg, *, uid):
                return bytes([cmd & 0xFF]) + arg

        kernel.devices.register("/dev/t", Dev())
        assert kernel.devices.ioctl("/dev/t", 7, b"x") == b"\x07x"
        assert kernel.devices.paths() == ["/dev/t"]

    def test_unregister(self, kernel):
        class Dev:
            def ioctl(self, cmd, arg, *, uid):
                return b""

        kernel.devices.register("/dev/t", Dev())
        kernel.devices.unregister("/dev/t")
        with pytest.raises(IoctlError):
            kernel.devices.ioctl("/dev/t", 0)
