"""SMP primitives: per-CPU data, the cooperative scheduler, and RCU."""

import pytest

from repro.kernel import Kernel, PerCpu, RcuDomain, RcuError, SmpTopology


class TestPerCpu:
    def test_slots_never_alias(self):
        pc = PerCpu(4, lambda cpu: [])
        pc[0].append("x")
        assert [list(v) for v in pc] == [["x"], [], [], []]

    def test_factory_sees_cpu_id(self):
        pc = PerCpu(3, lambda cpu: cpu * 10)
        assert list(pc) == [0, 10, 20]
        assert list(pc.items()) == [(0, 0), (1, 10), (2, 20)]

    def test_len_and_setitem(self):
        pc = PerCpu(2, lambda cpu: None)
        assert len(pc) == 2
        pc[1] = "new"
        assert pc[1] == "new"

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            PerCpu(0, lambda cpu: None)


class TestSmpTopology:
    def test_default_is_single_cpu_zero(self):
        smp = SmpTopology()
        assert smp.ncpus == 1
        assert smp.current == 0
        assert smp.switches == 0

    def test_switch_to_counts_only_real_switches(self):
        smp = SmpTopology(4)
        assert smp.switch_to(2) == 0
        assert smp.current == 2
        assert smp.switches == 1
        smp.switch_to(2)  # no-op: same CPU
        assert smp.switches == 1
        with pytest.raises(ValueError):
            smp.switch_to(4)

    def test_on_restores_previous_cpu_even_on_error(self):
        smp = SmpTopology(2)
        with pytest.raises(RuntimeError):
            with smp.on(1):
                assert smp.current == 1
                raise RuntimeError("boom")
        assert smp.current == 0

    def test_next_cpu_rotates_from_seed(self):
        smp = SmpTopology(3, seed=2)
        assert [smp.next_cpu() for _ in range(5)] == [2, 0, 1, 2, 0]

    def test_round_robin_reconstructs_global_order(self):
        # CPU k gets the seqs congruent to its turn offset; draining
        # round-robin must visit 0, 1, 2, ... in order — the property
        # the --cpus bit-identity check rests on.
        for ncpus in (1, 2, 3, 4):
            smp = SmpTopology(ncpus)
            seen = []

            def shard(seqs):
                for seq in seqs:
                    seen.append((smp.current, seq))
                    yield

            tasks = [shard(range(cpu, 10, ncpus)) for cpu in range(ncpus)]
            steps = smp.run_round_robin(tasks)
            assert steps == 10
            assert [seq for _, seq in seen] == list(range(10))
            assert all(cpu == seq % ncpus for cpu, seq in seen)

    def test_round_robin_uneven_tasks(self):
        smp = SmpTopology(3)
        out = []

        def shard(n, tag):
            for i in range(n):
                out.append(tag)
                yield

        smp.run_round_robin([shard(4, "a"), shard(1, "b"), shard(2, "c")])
        assert out == ["a", "b", "c", "a", "c", "a", "a"]

    def test_round_robin_rejects_too_many_tasks(self):
        smp = SmpTopology(2)
        with pytest.raises(ValueError):
            smp.run_round_robin([iter(()), iter(()), iter(())])

    def test_seed_rotates_turn_order(self):
        smp = SmpTopology(2, seed=1)
        order = []

        def shard(tag):
            order.append(tag)
            yield

        smp.run_round_robin([shard("cpu0"), shard("cpu1")])
        assert order == ["cpu1", "cpu0"]


class TestRcu:
    def _domain(self, ncpus=2):
        return RcuDomain(SmpTopology(ncpus))

    def test_read_sections_nest(self):
        rcu = self._domain()
        with rcu.read():
            with rcu.read():
                assert rcu.in_read_section()
            assert rcu.in_read_section()
        assert not rcu.in_read_section()
        assert rcu.read_sections == 2

    def test_unlock_without_lock_raises(self):
        rcu = self._domain()
        with pytest.raises(RcuError):
            rcu.read_unlock()

    def test_synchronize_completes_grace_period(self):
        rcu = self._domain()
        seq = rcu.synchronize()
        assert seq == 1
        assert rcu.grace_periods == 1

    def test_synchronize_inside_read_section_raises(self):
        rcu = self._domain()
        with rcu.read():
            with pytest.raises(RcuError):
                rcu.synchronize()

    def test_synchronize_blocked_by_other_cpu_reader(self):
        rcu = self._domain(ncpus=2)
        rcu.read_lock(cpu=1)
        with pytest.raises(RcuError):
            rcu.synchronize()  # current CPU is 0, but CPU 1 never quiesces
        rcu.read_unlock(cpu=1)
        rcu.synchronize()

    def test_call_rcu_defers_until_grace_period(self):
        rcu = self._domain()
        freed = []
        rcu.call_rcu(lambda: freed.append("old"))
        assert freed == []
        assert rcu.callbacks_pending == 1
        rcu.synchronize()
        assert freed == ["old"]
        assert rcu.callbacks_pending == 0
        assert rcu.callbacks_invoked == 1

    def test_callback_enqueued_during_gp_waits_for_next(self):
        rcu = self._domain()
        rcu.synchronize()
        freed = []
        rcu.call_rcu(lambda: freed.append(1))
        rcu.barrier()
        assert freed == [1]

    def test_stats_shape(self):
        rcu = self._domain()
        with rcu.read():
            pass
        rcu.synchronize()
        assert rcu.stats() == {
            "grace_periods": 1,
            "read_sections": 1,
            "callbacks_pending": 0,
            "callbacks_invoked": 0,
        }


class TestKernelWiring:
    def test_kernel_defaults_to_one_cpu(self):
        kernel = Kernel()
        assert kernel.smp.ncpus == 1
        assert kernel.rcu.smp is kernel.smp

    def test_kernel_honours_ncpus_and_seed(self):
        kernel = Kernel(ncpus=4, smp_seed=3)
        assert kernel.smp.ncpus == 4
        assert kernel.smp.current == 3
        assert len(kernel.trace.rings) == 4
