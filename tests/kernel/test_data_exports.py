"""Exported data symbols: __export on globals + cross-module data links."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel, LoadError

PROVIDER = """
__export long shared_counter = 100;
__export long config_table[4];
static long private_state;
__export long bump(void) { shared_counter += 1; return shared_counter; }
"""

CONSUMER = """
extern long shared_counter;
extern long config_table[4];
__export long read_counter(void) { return shared_counter; }
__export long write_counter(long v) { shared_counter = v; return v; }
__export long read_table(int i) { return config_table[i]; }
"""


@pytest.fixture()
def pair(kernel):
    provider = kernel.insmod(
        compile_module(PROVIDER, CompileOptions(module_name="prov", protect=False))
    )
    consumer = kernel.insmod(
        compile_module(CONSUMER, CompileOptions(module_name="cons", protect=False))
    )
    return kernel, provider, consumer


class TestDataExports:
    def test_exported_global_has_exported_linkage(self):
        compiled = compile_module(
            PROVIDER, CompileOptions(module_name="p", protect=False)
        )
        assert compiled.ir.get_global("shared_counter").linkage == "exported"
        assert compiled.ir.get_global("private_state").linkage == "internal"

    def test_consumer_sees_provider_initializer(self, pair):
        kernel, _, consumer = pair
        assert kernel.run_function(consumer, "read_counter", []) == 100

    def test_both_modules_share_one_storage(self, pair):
        kernel, provider, consumer = pair
        kernel.run_function(consumer, "write_counter", [555])
        assert kernel.run_function(provider, "bump", []) == 556
        assert kernel.run_function(consumer, "read_counter", []) == 556

    def test_array_export(self, pair):
        kernel, provider, consumer = pair
        addr = provider.address_of("config_table")
        kernel.address_space.write_int(addr + 16, 8, 77)
        assert kernel.run_function(consumer, "read_table", [2]) == 77

    def test_data_import_pins_provider(self, pair):
        kernel, *_ = pair
        with pytest.raises(LoadError, match="in use"):
            kernel.rmmod("prov")
        kernel.rmmod("cons")
        kernel.rmmod("prov")

    def test_unresolved_data_symbol(self, kernel):
        with pytest.raises(LoadError, match="unresolved data symbol"):
            kernel.insmod(
                compile_module(
                    CONSUMER, CompileOptions(module_name="cons", protect=False)
                )
            )

    def test_internal_globals_not_importable(self, kernel):
        kernel.insmod(
            compile_module(PROVIDER, CompileOptions(module_name="prov", protect=False))
        )
        with pytest.raises(LoadError, match="unresolved data symbol"):
            kernel.insmod(
                compile_module(
                    "extern long private_state;\n"
                    "__export long f(void) { return private_state; }",
                    CompileOptions(module_name="snoop", protect=False),
                )
            )

    def test_guarded_cross_module_data_access(self, key):
        """Protected consumer touching provider data goes through guards
        against the provider's module region."""
        from repro.core.system import CaratKopSystem, SystemConfig

        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        kernel = system.kernel
        kernel.insmod(
            compile_module(
                PROVIDER, CompileOptions(module_name="prov", key=system.signing_key)
            )
        )
        consumer = kernel.insmod(
            compile_module(
                CONSUMER, CompileOptions(module_name="cons", key=system.signing_key)
            )
        )
        checks = system.guard_stats()["checks"]
        assert kernel.run_function(consumer, "read_counter", []) == 100
        assert system.guard_stats()["checks"] == checks + 1

    def test_printed_ir_roundtrips_exported_globals(self):
        from repro.ir import parse_module, print_module

        compiled = compile_module(
            PROVIDER, CompileOptions(module_name="p", protect=False)
        )
        text = print_module(compiled.ir)
        m2 = parse_module(text)
        assert m2.get_global("shared_counter").linkage == "exported"
