"""Physical memory and address-space tests."""

import pytest

from repro.kernel import KernelAddressSpace, MemoryFault, PhysicalMemory, layout


@pytest.fixture()
def ram():
    return PhysicalMemory(16 << 20)


@pytest.fixture()
def space(ram):
    return KernelAddressSpace(ram)


class TestPhysicalMemory:
    def test_zero_initialized(self, ram):
        assert ram.read(0x1234, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self, ram):
        ram.write(0x1000, b"hello world")
        assert ram.read(0x1000, 11) == b"hello world"

    def test_cross_page_write(self, ram):
        addr = layout.PAGE_SIZE - 3
        ram.write(addr, b"ABCDEFGH")
        assert ram.read(addr, 8) == b"ABCDEFGH"

    def test_sparse_residency(self, ram):
        assert ram.resident_bytes == 0
        ram.write(5 * layout.PAGE_SIZE, b"x")
        assert ram.resident_bytes == layout.PAGE_SIZE

    def test_reads_do_not_materialize_pages(self, ram):
        ram.read(0, 4096)
        assert ram.resident_bytes == 0

    def test_out_of_range_rejected(self, ram):
        with pytest.raises(MemoryFault):
            ram.read(ram.size - 4, 8)
        with pytest.raises(MemoryFault):
            ram.write(ram.size, b"x")

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(1000)  # not page multiple
        with pytest.raises(ValueError):
            PhysicalMemory(0)


class TestDirectMap:
    def test_direct_map_aliases_ram(self, space, ram):
        ram.write(0x2000, b"paint")
        virt = layout.direct_map_address(0x2000)
        assert space.read_bytes(virt, 5) == b"paint"

    def test_write_through_direct_map(self, space, ram):
        virt = layout.direct_map_address(0x3000)
        space.write_bytes(virt, b"kernel")
        assert ram.read(0x3000, 6) == b"kernel"

    def test_direct_map_bounds(self, space, ram):
        with pytest.raises(MemoryFault):
            space.read_bytes(layout.direct_map_address(ram.size), 1)


class TestMappings:
    def test_unmapped_address_faults(self, space):
        with pytest.raises(MemoryFault, match="no mapping"):
            space.read_bytes(0xDEAD0000, 4)
        with pytest.raises(MemoryFault):
            space.write_bytes(0x1000, b"x")  # user half unmapped in kernel

    def test_linear_mapping(self, space):
        base = 0xFFFF_C000_0000_0000
        space.map_linear(base, layout.PAGE_SIZE, phys_base=0x4000, name="win")
        space.write_bytes(base + 8, b"zz")
        assert space.ram.read(0x4008, 2) == b"zz"

    def test_overlapping_mapping_rejected(self, space):
        base = 0xFFFF_C000_0000_0000
        space.map_linear(base, 2 * layout.PAGE_SIZE, 0, "a")
        with pytest.raises(ValueError, match="overlaps"):
            space.map_linear(base + layout.PAGE_SIZE, layout.PAGE_SIZE, 0, "b")

    def test_unmap(self, space):
        base = 0xFFFF_C000_0000_0000
        space.map_linear(base, layout.PAGE_SIZE, 0, "tmp")
        space.unmap(base)
        with pytest.raises(MemoryFault):
            space.read_bytes(base, 1)
        with pytest.raises(KeyError):
            space.unmap(base)

    def test_read_only_mapping(self, space):
        base = 0xFFFF_C000_0000_0000
        space.map_linear(base, layout.PAGE_SIZE, 0, "ro", writable=False)
        space.read_bytes(base, 4)
        with pytest.raises(MemoryFault, match="read-only"):
            space.write_bytes(base, b"x")

    def test_access_straddling_mapping_end_faults(self, space):
        base = 0xFFFF_C000_0000_0000
        space.map_linear(base, layout.PAGE_SIZE, 0, "small")
        with pytest.raises(MemoryFault):
            space.read_bytes(base + layout.PAGE_SIZE - 2, 4)

    def test_find(self, space):
        m = space.find(layout.DIRECT_MAP_BASE + 100)
        assert m is not None and m.name == "direct-map"
        assert space.find(0x10) is None


class _Device:
    def __init__(self):
        self.reads = []
        self.writes = []
        self.regs = {0: 0xCAFEBABE}

    def mmio_read(self, offset, size):
        self.reads.append((offset, size))
        return self.regs.get(offset, 0)

    def mmio_write(self, offset, size, value):
        self.writes.append((offset, size, value))
        self.regs[offset] = value


class TestMMIO:
    def test_mmio_read_dispatches_to_device(self, space):
        dev = _Device()
        base = 0xFFFF_C900_0000_0000
        space.map_mmio(base, 0x1000, dev, "nic")
        assert space.read_int(base, 4) == 0xCAFEBABE
        assert dev.reads == [(0, 4)]

    def test_mmio_write_dispatches(self, space):
        dev = _Device()
        base = 0xFFFF_C900_0000_0000
        space.map_mmio(base, 0x1000, dev, "nic")
        space.write_int(base + 0x10, 4, 0x1234)
        assert dev.writes == [(0x10, 4, 0x1234)]
        assert space.read_int(base + 0x10, 4) == 0x1234


class TestTypedAccess:
    def test_little_endian_ints(self, space):
        virt = layout.direct_map_address(0x100)
        space.write_int(virt, 4, 0x11223344)
        assert space.read_bytes(virt, 4) == b"\x44\x33\x22\x11"
        assert space.read_int(virt, 4) == 0x11223344

    def test_int_write_masks_to_size(self, space):
        virt = layout.direct_map_address(0x100)
        space.write_int(virt, 2, 0x12345678)
        assert space.read_int(virt, 2) == 0x5678

    def test_floats(self, space):
        virt = layout.direct_map_address(0x200)
        space.write_f64(virt, 3.14159)
        assert space.read_f64(virt) == pytest.approx(3.14159)
        space.write_f32(virt, 2.5)
        assert space.read_f32(virt) == 2.5

    def test_cstring(self, space):
        virt = layout.direct_map_address(0x300)
        space.write_bytes(virt, b"hello\x00world")
        assert space.read_cstring(virt) == b"hello"

    def test_cstring_max_len(self, space):
        virt = layout.direct_map_address(0x400)
        space.write_bytes(virt, b"a" * 100)
        assert len(space.read_cstring(virt, max_len=10)) == 10


class TestLayoutHelpers:
    def test_half_space_predicates(self):
        assert layout.is_user_address(0x1000)
        assert not layout.is_user_address(layout.KERNEL_SPACE_START)
        assert layout.is_kernel_address(layout.DIRECT_MAP_BASE)

    def test_page_align(self):
        assert layout.page_align_up(1) == layout.PAGE_SIZE
        assert layout.page_align_up(layout.PAGE_SIZE) == layout.PAGE_SIZE

    def test_direct_map_inverse(self):
        assert layout.direct_map_to_phys(layout.direct_map_address(12345)) == 12345
