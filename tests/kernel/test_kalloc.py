"""Allocator tests: page allocator and kmalloc slab."""

import pytest

from repro.kernel import KernelPanic, PageAllocator, PhysicalMemory, layout
from repro.kernel.kalloc import KmallocAllocator


@pytest.fixture()
def pages():
    return PageAllocator(PhysicalMemory(8 << 20))


@pytest.fixture()
def km(pages):
    return KmallocAllocator(pages)


class TestPageAllocator:
    def test_returns_aligned_distinct_pages(self, pages):
        a = pages.alloc_pages(1)
        b = pages.alloc_pages(1)
        assert a % layout.PAGE_SIZE == 0
        assert b % layout.PAGE_SIZE == 0
        assert a != b

    def test_reserved_low_memory(self, pages):
        assert pages.alloc_pages(1) >= 1 << 20

    def test_free_then_realloc_reuses(self, pages):
        a = pages.alloc_pages(2)
        pages.free_pages(a, 2)
        b = pages.alloc_pages(2)
        assert b == a

    def test_coalescing(self, pages):
        a = pages.alloc_pages(1)
        b = pages.alloc_pages(1)
        assert b == a + layout.PAGE_SIZE
        pages.free_pages(a, 1)
        pages.free_pages(b, 1)
        c = pages.alloc_pages(2)  # needs the coalesced pair
        assert c == a

    def test_out_of_memory_panics(self, pages):
        with pytest.raises(KernelPanic, match="out of memory"):
            pages.alloc_pages(1 << 20)

    def test_counters(self, pages):
        a = pages.alloc_pages(3)
        assert pages.allocated_pages == 3
        pages.free_pages(a, 3)
        assert pages.allocated_pages == 0

    def test_bad_requests(self, pages):
        with pytest.raises(ValueError):
            pages.alloc_pages(0)
        with pytest.raises(ValueError):
            pages.free_pages(123, 1)  # unaligned


class TestKmalloc:
    def test_returns_direct_map_addresses(self, km):
        addr = km.kmalloc(100)
        assert addr >= layout.DIRECT_MAP_BASE

    def test_size_class_rounding(self, km):
        addr = km.kmalloc(100)
        assert km.usable_size(addr) == 128

    def test_distinct_allocations(self, km):
        addrs = {km.kmalloc(64) for _ in range(100)}
        assert len(addrs) == 100

    def test_free_and_reuse(self, km):
        a = km.kmalloc(64)
        km.kfree(a)
        b = km.kmalloc(64)
        assert b == a

    def test_kfree_null_is_noop(self, km):
        km.kfree(0)

    def test_double_free_panics(self, km):
        a = km.kmalloc(32)
        km.kfree(a)
        with pytest.raises(KernelPanic, match="kfree"):
            km.kfree(a)

    def test_free_unknown_address_panics(self, km):
        with pytest.raises(KernelPanic):
            km.kfree(layout.DIRECT_MAP_BASE + 12345)

    def test_large_allocation_whole_pages(self, km):
        addr = km.kmalloc(3 * layout.PAGE_SIZE + 1)
        assert km.usable_size(addr) == 4 * layout.PAGE_SIZE
        km.kfree(addr)

    def test_accounting(self, km):
        a = km.kmalloc(64)
        b = km.kmalloc(200)
        assert km.live_allocations == 2
        assert km.bytes_allocated == 64 + 256
        km.kfree(a)
        km.kfree(b)
        assert km.live_allocations == 0
        assert km.bytes_allocated == 0

    def test_allocation_range_for_interior_pointer(self, km):
        a = km.kmalloc(256)
        base, size = km.allocation_range(a + 100)
        assert base == a and size == 256
        with pytest.raises(KeyError):
            km.allocation_range(layout.DIRECT_MAP_BASE)

    def test_owns(self, km):
        a = km.kmalloc(16)
        assert km.owns(a)
        assert not km.owns(a + 1)

    def test_invalid_size(self, km):
        with pytest.raises(ValueError):
            km.kmalloc(0)

    def test_allocations_do_not_overlap(self, km):
        spans = []
        for _ in range(50):
            a = km.kmalloc(48)
            spans.append((a, a + km.usable_size(a)))
        spans.sort()
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
