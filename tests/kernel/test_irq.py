"""Interrupt-controller and interrupt-driven driver tests."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel.irq import IrqError
from repro.net import make_test_frame

HANDLER_MODULE = """
long hits;
long last_line;
__export int my_isr(int line) {
    hits += 1;
    last_line = (long)line;
    return 1;
}
__export long get_hits(void) { return hits; }
__export long get_line(void) { return last_line; }
"""


@pytest.fixture()
def loaded(kernel):
    compiled = compile_module(
        HANDLER_MODULE, CompileOptions(module_name="isr_mod", protect=False)
    )
    return kernel.insmod(compiled)


class TestController:
    def test_register_and_raise(self, kernel, loaded):
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        assert kernel.irq.raise_irq(line) is True
        assert kernel.run_function(loaded, "get_hits", []) == 1
        assert kernel.run_function(loaded, "get_line", []) == line

    def test_spurious_interrupt_logged(self, kernel):
        assert kernel.irq.raise_irq(40) is False
        assert any("spurious" in l for l in kernel.dmesg_log)

    def test_line_conflict(self, kernel, loaded):
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        with pytest.raises(IrqError, match="already requested"):
            kernel.irq.request_irq(line, loaded, "my_isr")

    def test_unknown_handler_rejected(self, kernel, loaded):
        with pytest.raises(IrqError, match="does not define"):
            kernel.irq.request_irq(kernel.irq.allocate_line(), loaded, "ghost")

    def test_bad_handler_arity_rejected(self, kernel, loaded):
        with pytest.raises(IrqError, match="one argument"):
            kernel.irq.request_irq(
                kernel.irq.allocate_line(), loaded, "get_hits"
            )

    def test_free_irq(self, kernel, loaded):
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        kernel.irq.free_irq(line, loaded)
        assert kernel.irq.raise_irq(line) is False

    def test_free_wrong_owner(self, kernel, loaded):
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        other = kernel.insmod(
            compile_module(
                "__export int h(int l) { return 0; }",
                CompileOptions(module_name="other", protect=False),
            )
        )
        with pytest.raises(IrqError, match="not owned"):
            kernel.irq.free_irq(line, other)

    def test_cli_masks_delivery(self, kernel, loaded):
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        kernel.interrupts_enabled = False
        assert kernel.irq.raise_irq(line) is False
        kernel.interrupts_enabled = True
        assert kernel.irq.raise_irq(line) is True

    def test_rmmod_releases_lines(self, kernel, loaded):
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        kernel.rmmod("isr_mod")
        assert kernel.irq.action_for(line) is None

    def test_stats(self, kernel, loaded):
        line = kernel.irq.allocate_line()
        action = kernel.irq.request_irq(line, loaded, "my_isr")
        kernel.irq.raise_irq(line)
        kernel.irq.raise_irq(line)
        assert action.fired == 2
        assert action.coalesced == 0


class TestInterruptDrivenDriver:
    def test_rx_interrupt_drives_clean(self):
        """With interrupts on, injected frames reach the stack with NO
        explicit polling — the ISR does the work."""
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        assert system.netdev.enable_interrupts() == 0
        frames = [make_test_frame(100, seq) for seq in range(5)]
        for f in frames:
            assert system.netdev.inject_rx(f)
        # No poll_rx() call: the device raised, the ISR cleaned.
        assert system.netdev.rx_queue == [f.encode() for f in frames]
        assert system.netdev.stats()["irq_count"] == 5

    def test_tx_interrupt_cleans_ring(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        system.netdev.enable_interrupts()
        for seq in range(10):
            assert system.netdev.xmit(make_test_frame(128, seq)) == 0
        stats = system.netdev.stats()
        assert stats["irq_count"] > 0
        assert stats["cleaned"] >= 1

    def test_isr_runs_under_guards(self):
        """ISR code is module code: its memory accesses are guarded."""
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        system.netdev.enable_interrupts()
        checks_before = system.guard_stats()["checks"]
        system.netdev.inject_rx(make_test_frame(64, 0))
        assert system.guard_stats()["checks"] > checks_before

    def test_disable_interrupts_restores_polling(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        system.netdev.enable_interrupts()
        system.netdev.inject_rx(make_test_frame(64, 0))
        assert system.netdev.disable_interrupts() == 0
        system.netdev.inject_rx(make_test_frame(64, 1))
        assert len(system.netdev.rx_queue) == 1  # second frame waits
        system.netdev.poll_rx()
        assert len(system.netdev.rx_queue) == 2

    def test_polling_mode_default_no_irqs(self):
        """The evaluation path (paper §4) polls; IMS stays masked."""
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        system.blast(size=128, count=10)
        assert system.netdev.stats()["irq_count"] == 0
