"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel
from repro.policy import CaratPolicyModule, PolicyManager
from repro.signing import SigningKey


@pytest.fixture(scope="session")
def key() -> SigningKey:
    return SigningKey.generate("test-key")


@pytest.fixture()
def kernel() -> Kernel:
    """A plain booted kernel (no machine model, no signature requirement)."""
    return Kernel()


@pytest.fixture()
def protected_kernel(key) -> Kernel:
    """A kernel that validates signatures and requires protected modules."""
    return Kernel(signing_key=key, require_protected_modules=True)


@pytest.fixture()
def policy_kernel(kernel) -> tuple[Kernel, CaratPolicyModule, PolicyManager]:
    """Kernel + installed policy module + manager, default-deny policy."""
    policy = CaratPolicyModule(kernel).install()
    manager = PolicyManager(kernel)
    return kernel, policy, manager


def compile_c(source: str, name: str = "testmod", *, protect: bool = True,
              key: SigningKey | None = None, **kw):
    """Convenience compile used across test modules."""
    return compile_module(
        source,
        CompileOptions(module_name=name, protect=protect, key=key, **kw),
    )


@pytest.fixture()
def run_c(kernel):
    """Compile a mini-C snippet (unprotected), load it, and call functions.

    Returns ``call(fn_name, *args)``; the module is compiled once per
    source text.
    """
    cache: dict[str, object] = {}

    def runner(source: str, fn: str, *args, signed_bits: int = 64):
        loaded = cache.get(source)
        if loaded is None:
            compiled = compile_c(source, name=f"testmod{len(cache)}",
                                 protect=False)
            loaded = kernel.insmod(compiled)
            cache[source] = loaded
        out = kernel.run_function(loaded, fn, list(args))
        if signed_bits and isinstance(out, int) and out >= 1 << (signed_bits - 1):
            out -= 1 << signed_bits
        return out

    return runner
