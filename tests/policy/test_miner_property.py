"""Property tests for the policy miner's coalescing invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import abi
from repro.policy.miner import AccessRecord, PolicyMiner
from repro.policy.table import MAX_REGIONS


def mine(records, max_regions=MAX_REGIONS, page_align=False):
    miner = PolicyMiner.__new__(PolicyMiner)
    miner.max_regions = max_regions
    miner.records = [AccessRecord(*r) for r in records]
    return PolicyMiner.mine(miner, page_align=page_align)


@st.composite
def access_records(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    out = []
    for _ in range(n):
        addr = draw(st.integers(min_value=0x1000, max_value=0x100_0000))
        size = draw(st.sampled_from((1, 2, 4, 8, 16, 64)))
        flags = draw(st.sampled_from((abi.FLAG_READ, abi.FLAG_WRITE,
                                      abi.FLAG_READ | abi.FLAG_WRITE)))
        out.append((addr, size, flags))
    return out


@settings(max_examples=120, deadline=None)
@given(access_records(), st.integers(min_value=1, max_value=16),
       st.booleans())
def test_mined_policy_covers_every_observation(records, budget, page_align):
    mined = mine(records, max_regions=budget, page_align=page_align)
    assert len(mined.regions) <= budget
    for addr, size, flags in records:
        assert mined.covers(addr, size, flags), (
            f"mined policy lost {addr:#x}+{size}"
        )


@settings(max_examples=80, deadline=None)
@given(access_records())
def test_regions_are_disjoint_and_sorted(records):
    mined = mine(records)
    regions = mined.regions
    for a, b in zip(regions, regions[1:]):
        assert a.end <= b.base, "mined regions overlap or are unsorted"


@settings(max_examples=80, deadline=None)
@given(access_records(), st.integers(min_value=1, max_value=8))
def test_slack_only_appears_under_budget_pressure(records, budget):
    exact = mine(records, max_regions=MAX_REGIONS)
    squeezed = mine(records, max_regions=budget)
    assert exact.slack_bytes == 0 or len(exact.regions) == MAX_REGIONS
    # Squeezing can only add slack, never lose observed bytes.
    assert squeezed.observed_bytes == exact.observed_bytes
    assert squeezed.slack_bytes >= 0
    if len(exact.regions) <= budget:
        assert squeezed.slack_bytes == exact.slack_bytes


@settings(max_examples=60, deadline=None)
@given(access_records())
def test_flags_are_permissive_upward_only(records):
    """A mined region grants a flag only if some merged access used it."""
    mined = mine(records, max_regions=4)
    for region in mined.regions:
        contributing = [
            f for a, s, f in records
            if region.base <= a and a + s <= region.end
        ]
        assert contributing, "region with no contributing access"
        union = 0
        for f in contributing:
            union |= f
        assert region.prot == union
