"""Decision-identity of the interval index on OVERLAPPED policies.

The structures-parity property test only covers disjoint regions (the
abl1 restriction).  The interval index's reason to exist is that it
keeps the linear table's first-match-wins semantics under arbitrary
overlap — quarantine rules shadowing broad allow rules — with no
``OverlapError`` fallback.  This file is the proof obligation from the
ISSUE: for ANY region list (any overlap, any add order) and ANY query,
``IntervalRegionTable.check`` and its RCU replica decide exactly like
``RegionTable.check``.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import abi
from repro.policy import IntervalRegionTable, Region, RegionTable
from repro.policy.interval import LINEAR_CUTOFF

PROTS = (0, abi.FLAG_READ, abi.FLAG_WRITE, abi.FLAG_READ | abi.FLAG_WRITE)
BASE = 0x40000000


@st.composite
def overlapped_policy(draw):
    """Regions drawn WITHOUT a disjointness constraint: duplicates,
    nestings, and partial overlaps are all fair game, and order matters
    (first match wins)."""
    n = draw(st.integers(min_value=0, max_value=48))
    regions = []
    for _ in range(n):
        base = BASE + draw(st.integers(0, 4096))
        length = draw(st.integers(1, 512))
        prot = draw(st.sampled_from(PROTS))
        regions.append(Region(base, length, prot))
    return regions


@st.composite
def probes(draw, regions):
    """Queries biased toward region boundaries, where segment math can
    go wrong, plus uniform background noise."""
    out = []
    edges = []
    for r in regions:
        edges += [r.base, r.base + r.length - 1, r.base + r.length]
    for _ in range(draw(st.integers(1, 24))):
        if edges and draw(st.booleans()):
            addr = draw(st.sampled_from(edges)) + draw(st.integers(-2, 2))
        else:
            addr = BASE + draw(st.integers(-64, 4096 + 640))
        size = draw(st.sampled_from((1, 2, 4, 8, 16)))
        flags = draw(st.sampled_from(PROTS[1:]))
        out.append((addr, size, flags))
    return out


def _build_pair(regions, default_allow):
    linear = RegionTable(default_allow=default_allow)
    interval = IntervalRegionTable(default_allow=default_allow)
    for r in regions:
        linear.add(r)
        interval.add(r)
    return linear, interval


@settings(max_examples=120, deadline=None)
@given(st.data(), overlapped_policy(), st.booleans())
def test_decision_identical_to_linear_table(data, regions, default_allow):
    linear, interval = _build_pair(regions, default_allow)
    replica = interval.snapshot()
    for addr, size, flags in data.draw(probes(regions)):
        want, _ = linear.check(addr, size, flags)
        got, steps = interval.check(addr, size, flags)
        assert got == want, (
            f"interval disagrees at {addr:#x}+{size}: got {got}, want {want}"
        )
        assert steps >= 1
        assert replica.check(addr, size, flags)[0] == want


@settings(max_examples=60, deadline=None)
@given(st.data(), overlapped_policy(), st.booleans())
def test_replica_tracks_mutations(data, regions, default_allow):
    """Every epoch's snapshot is decision-identical to the master at
    snapshot time (the RCU publish invariant), including after removes
    that expose previously shadowed overlapping regions."""
    linear, interval = _build_pair(regions, default_allow)
    qs = data.draw(probes(regions))
    for _ in range(min(3, len(regions))):
        victim = regions[data.draw(st.integers(0, len(regions) - 1))]
        linear.remove(victim.base, victim.length)
        interval.remove(victim.base, victim.length)
        replica = interval.snapshot()
        assert replica.epoch == interval.epoch
        for addr, size, flags in qs:
            want, _ = linear.check(addr, size, flags)
            assert interval.check(addr, size, flags)[0] == want
            assert replica.check(addr, size, flags)[0] == want


@settings(max_examples=60, deadline=None)
@given(overlapped_policy(), st.booleans())
def test_small_tables_charge_identical_scan_counts(regions, default_allow):
    """At or below LINEAR_CUTOFF regions the index degrades to the exact
    paper walk — byte-identical decisions AND entries-scanned counts, so
    fig3-style timing at small n cannot regress."""
    regions = regions[:LINEAR_CUTOFF]
    linear, interval = _build_pair(regions, default_allow)
    for r in regions:
        for addr in (r.base, r.base + r.length - 1):
            for flags in PROTS[1:]:
                assert (
                    interval.check(addr, 1, flags)
                    == linear.check(addr, 1, flags)
                )


class TestFirstMatchWins:
    def test_shadowing_deny_beats_later_allow(self):
        """A narrow prot-0 rule listed first shadows a broad RW rule —
        the overlap shape the sorted/splay structures cannot express."""
        for cls in (RegionTable, IntervalRegionTable):
            table = cls()
            table.add(Region(BASE + 0x100, 0x10, 0))                 # deny
            table.add(Region(BASE, 0x1000, abi.FLAG_READ | abi.FLAG_WRITE))
            allowed, _ = table.check(BASE + 0x100, 8, abi.FLAG_READ)
            assert allowed is False, cls.name
            allowed, _ = table.check(BASE + 0x200, 8, abi.FLAG_READ)
            assert allowed is True, cls.name

    def test_reversed_order_flips_the_decision_in_both(self):
        for cls in (RegionTable, IntervalRegionTable):
            table = cls()
            table.add(Region(BASE, 0x1000, abi.FLAG_READ | abi.FLAG_WRITE))
            table.add(Region(BASE + 0x100, 0x10, 0))
            allowed, _ = table.check(BASE + 0x100, 8, abi.FLAG_READ)
            assert allowed is True, cls.name

    def test_no_overlap_error_on_add(self):
        table = IntervalRegionTable()
        for i in range(32):
            table.add(Region(BASE + i * 8, 64, abi.FLAG_READ))
        assert table.supports_overlap
        assert len(table) == 32

    def test_sublinear_scan_counts_at_64_disjoint_regions(self):
        """The headline operator observable: mean comparisons/guard
        drop from ~n/2 to ~log2(n) + overlap depth."""
        linear = RegionTable()
        interval = IntervalRegionTable()
        for i in range(64):
            r = Region(BASE + i * 0x1000, 0x1000, abi.FLAG_READ)
            linear.add(r)
            interval.add(r)
        lin_total = int_total = 0
        for i in range(64):
            addr = BASE + i * 0x1000 + 8
            lin_total += linear.check(addr, 8, abi.FLAG_READ)[1]
            int_total += interval.check(addr, 8, abi.FLAG_READ)[1]
        assert int_total < lin_total / 3
