"""Alternative policy-index structures: unit tests per structure."""

import pytest

from repro import abi
from repro.policy import (
    AMQFilterIndex,
    BloomFilter,
    CachedIndex,
    LSHBucketIndex,
    OverlapError,
    Region,
    RegionTable,
    SortedRegionIndex,
    SplayRegionIndex,
    STRUCTURES,
    make_index,
)

RW = abi.FLAG_READ | abi.FLAG_WRITE

ALT_CLASSES = [SortedRegionIndex, SplayRegionIndex, AMQFilterIndex, LSHBucketIndex]


def populated(cls, n=8):
    idx = cls()
    regions = [Region(0x10000 * (i + 1), 0x1000, RW) for i in range(n)]
    for r in regions:
        idx.add(r)
    return idx, regions


@pytest.mark.parametrize("cls", ALT_CLASSES)
class TestCommonBehaviour:
    def test_hit_inside_region(self, cls):
        idx, regions = populated(cls)
        for r in regions:
            allowed, scanned = idx.check(r.base + 4, 8, abi.FLAG_READ)
            assert allowed, f"{cls.__name__} missed {r.describe()}"
            assert scanned >= 1

    def test_miss_outside_regions(self, cls):
        idx, _ = populated(cls)
        assert idx.check(0x5, 8, abi.FLAG_READ)[0] is False
        assert idx.check(0xFFFF_FFFF, 8, abi.FLAG_READ)[0] is False

    def test_default_allow(self, cls):
        idx = cls(default_allow=True)
        assert idx.check(0x123, 8, abi.FLAG_READ)[0] is True

    def test_flags_respected(self, cls):
        idx = cls()
        idx.add(Region(0x1000, 0x100, abi.FLAG_READ))
        assert idx.check(0x1000, 4, abi.FLAG_READ)[0] is True
        assert idx.check(0x1000, 4, abi.FLAG_WRITE)[0] is False

    def test_boundary_exact(self, cls):
        idx = cls()
        idx.add(Region(0x1000, 0x100, RW))
        assert idx.check(0x1000, 0x100, abi.FLAG_READ)[0] is True
        assert idx.check(0x1000, 0x101, abi.FLAG_READ)[0] is False
        assert idx.check(0x10FF, 1, abi.FLAG_READ)[0] is True

    def test_overlap_rejected(self, cls):
        idx = cls()
        idx.add(Region(0x1000, 0x100, RW))
        with pytest.raises(OverlapError):
            idx.add(Region(0x10FF, 0x10, RW))
        assert not cls.supports_overlap

    def test_remove(self, cls):
        idx, regions = populated(cls, n=4)
        r = regions[2]
        assert idx.remove(r.base, r.length) is True
        assert idx.check(r.base, 8, abi.FLAG_READ)[0] is False
        assert len(idx) == 3
        assert idx.remove(r.base, r.length) is False

    def test_clear(self, cls):
        idx, _ = populated(cls)
        idx.clear()
        assert len(idx) == 0
        assert idx.check(0x10000, 8, abi.FLAG_READ)[0] is False

    def test_huge_half_space_region(self, cls):
        """Every structure must handle the paper's 'kernel half' rule."""
        idx = cls()
        base = 0xFFFF_8000_0000_0000
        idx.add(Region(base, (1 << 64) - base, RW))
        assert idx.check(0xFFFF_8880_1234_0000, 8, RW)[0] is True
        assert idx.check(0x1000, 8, RW)[0] is False


class TestSorted:
    def test_logarithmic_scan_count(self):
        idx, _ = populated(SortedRegionIndex, n=64)
        _, scanned = idx.check(0x10000 * 40 + 8, 8, abi.FLAG_READ)
        assert scanned <= 8  # ~log2(64) + cover check

    def test_keeps_sorted_under_mixed_inserts(self):
        idx = SortedRegionIndex()
        for base in (0x50000, 0x10000, 0x30000, 0x70000, 0x20000):
            idx.add(Region(base, 0x100, RW))
        bases = [r.base for r in idx.regions()]
        assert bases == sorted(bases)


class TestSplay:
    def test_repeated_hits_get_cheaper(self):
        idx, regions = populated(SplayRegionIndex, n=32)
        target = regions[27]
        _, first = idx.check(target.base, 8, abi.FLAG_READ)
        _, second = idx.check(target.base, 8, abi.FLAG_READ)
        assert second <= first  # splayed to the root

    def test_rebuild_after_remove(self):
        idx, regions = populated(SplayRegionIndex, n=8)
        idx.remove(regions[0].base, regions[0].length)
        for r in regions[1:]:
            assert idx.check(r.base, 8, abi.FLAG_READ)[0] is True


class TestBloom:
    def test_no_false_negatives(self):
        f = BloomFilter(bits=1 << 10)
        keys = list(range(0, 2000, 7))
        for k in keys:
            f.insert(k)
        assert all(k in f for k in keys)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=1000)

    def test_clear(self):
        f = BloomFilter()
        f.insert(42)
        f.clear()
        assert 42 not in f

    def test_amq_fast_deny_path(self):
        idx = AMQFilterIndex()
        for i in range(16):
            idx.add(Region(0x100000 + i * 0x10000, 0x1000, RW))
        # A miss far away: the filter answers without a full scan.
        _, scanned = idx.check(0x9999_0000_0000, 8, abi.FLAG_READ)
        assert scanned <= 2


class TestLSH:
    def test_bucket_lookup_constantish(self):
        idx, _ = populated(LSHBucketIndex, n=64)
        _, scanned = idx.check(0x10000 * 10 + 4, 8, abi.FLAG_READ)
        assert scanned <= 3

    def test_oversize_side_list(self):
        idx = LSHBucketIndex()
        base = 0xFFFF_8000_0000_0000
        idx.add(Region(base, (1 << 64) - base, RW))  # giant
        idx.add(Region(0x1000, 0x100, RW))
        assert idx.check(base + 0x123456, 8, RW)[0] is True
        assert idx.check(0x1004, 4, RW)[0] is True


class TestCachedIndex:
    def test_cache_hit_costs_one(self):
        inner = RegionTable()
        for i in range(32):
            inner.add(Region(0x10000 * (i + 1), 0x1000, RW))
        idx = CachedIndex(inner)
        target = 0x10000 * 30
        idx.check(target, 8, abi.FLAG_READ)
        allowed, scanned = idx.check(target + 8, 8, abi.FLAG_READ)
        assert allowed and scanned == 1
        assert idx.hits == 1

    def test_cache_invalidated_on_mutation(self):
        inner = RegionTable()
        inner.add(Region(0x1000, 0x100, RW))
        idx = CachedIndex(inner)
        idx.check(0x1000, 8, abi.FLAG_READ)
        idx.remove(0x1000, 0x100)
        assert idx.check(0x1000, 8, abi.FLAG_READ)[0] is False

    def test_name_reflects_inner(self):
        assert make_index("splay", cached=True).name == "cached(splay-tree)"


class TestFactory:
    def test_all_kinds_constructible(self):
        for kind in STRUCTURES:
            idx = make_index(kind)
            idx.add(Region(0x1000, 0x100, RW))
            assert idx.check(0x1000, 8, abi.FLAG_READ)[0] is True

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_index("btree")
