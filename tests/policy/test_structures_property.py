"""Property-based parity: every index structure must decide exactly like
the paper's linear table on non-overlapping policies (the invariant that
makes the abl1 comparison meaningful)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import abi
from repro.policy import Region, RegionTable, STRUCTURES, CachedIndex, make_index

PROTS = (0, abi.FLAG_READ, abi.FLAG_WRITE, abi.FLAG_READ | abi.FLAG_WRITE)


@st.composite
def disjoint_policy(draw):
    """A list of non-overlapping regions on a 0x10000-aligned lattice."""
    n = draw(st.integers(min_value=0, max_value=24))
    slots = draw(
        st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=n, max_size=n, unique=True,
        )
    )
    regions = []
    for slot in slots:
        base = 0x40000000 + slot * 0x10000
        length = draw(st.integers(min_value=1, max_value=0x10000))
        prot = draw(st.sampled_from(PROTS))
        regions.append(Region(base, length, prot))
    return regions


@st.composite
def queries(draw):
    out = []
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        addr = draw(
            st.one_of(
                # inside the lattice the policy lives on
                st.integers(0x40000000, 0x40000000 + 501 * 0x10000),
                # far away
                st.integers(0, 1 << 48),
            )
        )
        size = draw(st.sampled_from((1, 2, 4, 8, 16)))
        flags = draw(st.sampled_from(PROTS[1:]))
        out.append((addr, size, flags))
    return out


@settings(max_examples=80, deadline=None)
@given(disjoint_policy(), queries(), st.booleans())
def test_all_structures_agree_with_linear_table(regions, qs, default_allow):
    reference = RegionTable(default_allow=default_allow)
    for r in regions:
        reference.add(r)
    candidates = {}
    for kind in STRUCTURES:
        if kind == "linear":
            continue
        idx = make_index(kind, default_allow=default_allow)
        for r in regions:
            idx.add(r)
        candidates[kind] = idx
    candidates["cached"] = CachedIndex(
        make_index("linear", default_allow=default_allow)
    )
    for r in regions:
        candidates["cached"].add(r)

    for addr, size, flags in qs:
        want, _ = reference.check(addr, size, flags)
        for kind, idx in candidates.items():
            got, scanned = idx.check(addr, size, flags)
            assert got == want, (
                f"{kind} disagrees at {addr:#x}+{size} "
                f"{abi.flags_name(flags)}: got {got}, want {want}"
            )
            assert scanned >= 1


@settings(max_examples=60, deadline=None)
@given(disjoint_policy(), queries())
def test_removal_keeps_parity(regions, qs):
    if not regions:
        return
    reference = RegionTable()
    others = {kind: make_index(kind) for kind in STRUCTURES if kind != "linear"}
    for r in regions:
        reference.add(r)
        for idx in others.values():
            idx.add(r)
    victim = regions[len(regions) // 2]
    reference.remove(victim.base, victim.length)
    for idx in others.values():
        assert idx.remove(victim.base, victim.length)
    for addr, size, flags in qs:
        want, _ = reference.check(addr, size, flags)
        for kind, idx in others.items():
            assert idx.check(addr, size, flags)[0] == want, kind
