"""ioctl fuzz: the /dev/carat surface fails closed on arbitrary payloads.

The device is the user-space attack surface: any cmd/arg/uid combination
must yield a result or an errno-carrying IoctlError — never an internal
exception, and non-root must never mutate the policy.
"""

import hypothesis.strategies as st
from hypothesis import example, given, settings

from repro.kernel import IoctlError, Kernel
from repro.policy import CaratPolicyModule
from repro.policy import module as pm

ALL_CMDS = [
    pm.CMD_ADD_REGION, pm.CMD_DEL_REGION, pm.CMD_CLEAR, pm.CMD_SET_DEFAULT,
    pm.CMD_GET_STATS, pm.CMD_GET_REGION, pm.CMD_COUNT, pm.CMD_SET_ENFORCE,
    pm.CMD_ALLOW_INTRINSIC, pm.CMD_DENY_INTRINSIC, pm.CMD_ALLOW_CALL,
    pm.CMD_DENY_CALL, pm.CMD_CALL_POLICY, pm.CMD_ADD_REGION_FOR,
    pm.CMD_CLEAR_FOR, pm.CMD_SET_MODE, pm.CMD_SET_MODE_FOR, pm.CMD_GET_MODE,
    pm.CMD_GET_VIOLATIONS, pm.CMD_UNQUARANTINE,
]


def fresh():
    kernel = Kernel()
    policy = CaratPolicyModule(kernel).install()
    return kernel, policy


@settings(max_examples=400, deadline=None)
@example(pm.CMD_ALLOW_INTRINSIC, b"\x96\xb4B", 0)   # non-UTF8 (regression)
@example(pm.CMD_ADD_REGION_FOR, b"\xff" * 52, 0)
@example(pm.CMD_CLEAR_FOR, b"\xc5}", 0)
@example(pm.CMD_ADD_REGION, b"\x00" * 20, 0)        # zero-length region
@example(pm.CMD_SET_MODE, b"\x09\x00\x00\x00", 0)   # unknown mode code
@example(pm.CMD_SET_MODE, b"\x01", 0)               # short payload
@example(pm.CMD_SET_MODE_FOR, b"\x00" * 35, 0)      # truncated name+code
@example(pm.CMD_SET_MODE_FOR, b"\xff" * 36, 0)      # non-UTF8 name
@example(pm.CMD_GET_MODE, b"\x00" * 7, 0)           # neither empty nor name
@example(pm.CMD_GET_VIOLATIONS, b"", 0)             # missing name
@example(pm.CMD_UNQUARANTINE, b"x" * 33, 0)         # oversized name
@given(
    st.sampled_from(ALL_CMDS + [0, 1, 0xDEAD]),
    st.binary(max_size=64),
    st.sampled_from((0, 1000)),
)
def test_ioctl_fails_closed(cmd, arg, uid):
    kernel, policy = fresh()
    try:
        kernel.devices.ioctl(pm.DEVICE_PATH, cmd, arg, uid=uid)
    except IoctlError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.sampled_from(ALL_CMDS), st.binary(max_size=64))
def test_non_root_never_mutates(cmd, arg):
    kernel, policy = fresh()
    before = (
        len(policy.index), policy.index.default_allow, policy.enforce,
        set(policy.allowed_intrinsics),
        None if policy.allowed_calls is None else set(policy.allowed_calls),
        dict(policy.module_indexes),
    )
    try:
        kernel.devices.ioctl(pm.DEVICE_PATH, cmd, arg, uid=1000)
    except IoctlError as e:
        assert e.errno == 1  # EPERM
    after = (
        len(policy.index), policy.index.default_allow, policy.enforce,
        set(policy.allowed_intrinsics),
        None if policy.allowed_calls is None else set(policy.allowed_calls),
        dict(policy.module_indexes),
    )
    assert before == after
