"""Region and RegionTable semantics (the paper's 64-entry table, §3.1)."""

import pytest

from repro import abi
from repro.policy import MAX_REGIONS, PolicyTableFull, Region, RegionTable

RW = abi.FLAG_READ | abi.FLAG_WRITE


class TestRegion:
    def test_covers_full_range_only(self):
        r = Region(0x1000, 0x100, RW)
        assert r.covers(0x1000, 8)
        assert r.covers(0x10F8, 8)
        assert not r.covers(0x10F9, 8)  # spills past the end
        assert not r.covers(0xFFF, 8)

    def test_contains_point(self):
        r = Region(0x1000, 0x100, RW)
        assert r.contains(0x1000) and r.contains(0x10FF)
        assert not r.contains(0x1100)

    def test_overlap(self):
        a = Region(0x1000, 0x100, RW)
        assert a.overlaps(Region(0x10FF, 0x10, RW))
        assert not a.overlaps(Region(0x1100, 0x10, RW))
        assert a.overlaps(Region(0x0, 0x10000, RW))

    def test_permits_requires_all_flags(self):
        r = Region(0, 0x1000, abi.FLAG_READ)
        assert r.permits(abi.FLAG_READ)
        assert not r.permits(abi.FLAG_WRITE)
        assert not r.permits(RW)

    def test_deny_region_permits_nothing(self):
        r = Region(0, 0x1000, 0)
        assert not r.permits(abi.FLAG_READ)

    def test_validation(self):
        with pytest.raises(ValueError):
            Region(0, 0, RW)
        with pytest.raises(ValueError):
            Region(-1, 10, RW)
        with pytest.raises(ValueError):
            Region((1 << 64) - 4, 8, RW)

    def test_describe_mentions_flags(self):
        assert "RW" in Region(0, 8, RW).describe()


class TestRegionTable:
    def test_empty_table_uses_default(self):
        deny = RegionTable(default_allow=False)
        allow = RegionTable(default_allow=True)
        assert deny.check(0x1000, 8, abi.FLAG_READ) == (False, 0)
        assert allow.check(0x1000, 8, abi.FLAG_READ)[0] is True

    def test_first_match_wins(self):
        t = RegionTable()
        t.add(Region(0x1000, 0x100, 0))        # deny hole first
        t.add(Region(0x0, 0x100000, RW))       # broad allow second
        assert t.check(0x1010, 8, abi.FLAG_READ)[0] is False
        assert t.check(0x2000, 8, abi.FLAG_READ)[0] is True

    def test_order_reversed_changes_decision(self):
        t = RegionTable()
        t.add(Region(0x0, 0x100000, RW))
        t.add(Region(0x1000, 0x100, 0))
        # Broad allow matches first now: the hole is shadowed.
        assert t.check(0x1010, 8, abi.FLAG_READ)[0] is True

    def test_entries_scanned_reported(self):
        t = RegionTable()
        for i in range(10):
            t.add(Region(0x10000 * (i + 1), 0x100, RW))
        _, scanned = t.check(0x10000 * 10, 8, abi.FLAG_READ)
        assert scanned == 10
        _, scanned = t.check(0x10000, 8, abi.FLAG_READ)
        assert scanned == 1
        _, scanned = t.check(0xDEAD_0000, 8, abi.FLAG_READ)
        assert scanned == 10  # full scan on miss

    def test_access_straddling_region_boundary_misses(self):
        t = RegionTable(default_allow=False)
        t.add(Region(0x1000, 0x100, RW))
        t.add(Region(0x1100, 0x100, RW))
        # Access spans two adjacent allowed regions: no single region
        # covers it, so it falls to the default (deny) — strictest reading.
        assert t.check(0x10FC, 8, abi.FLAG_READ)[0] is False

    def test_capacity_limit(self):
        t = RegionTable()
        for i in range(MAX_REGIONS):
            t.add(Region(0x100000 + i * 0x1000, 0x100, RW))
        with pytest.raises(PolicyTableFull):
            t.add(Region(0xFF000000, 0x100, RW))

    def test_remove_exact_match_only(self):
        t = RegionTable()
        t.add(Region(0x1000, 0x100, RW))
        assert t.remove(0x1000, 0x200) is False
        assert t.remove(0x1000, 0x100) is True
        assert len(t) == 0

    def test_clear(self):
        t = RegionTable()
        t.add(Region(0x1000, 0x100, RW))
        t.clear()
        assert len(t) == 0

    def test_find(self):
        t = RegionTable()
        r = Region(0x1000, 0x100, RW)
        t.add(r)
        assert t.find(0x1000, 8) == r
        assert t.find(0x9000, 8) is None

    def test_write_to_read_only_region_denied(self):
        t = RegionTable()
        t.add(Region(0x1000, 0x100, abi.FLAG_READ))
        assert t.check(0x1000, 8, abi.FLAG_READ)[0] is True
        assert t.check(0x1000, 8, abi.FLAG_WRITE)[0] is False
        assert t.check(0x1000, 8, RW)[0] is False

    def test_describe_lists_regions(self):
        t = RegionTable()
        t.add(Region(0x1000, 0x100, RW))
        text = t.describe()
        assert "1 region" in text and "DENY" in text

    def test_byte_granularity(self):
        """CARAT guards operate at arbitrary granularity (paper §2)."""
        t = RegionTable(default_allow=False)
        t.add(Region(0x1003, 1, abi.FLAG_WRITE))  # exactly one byte
        assert t.check(0x1003, 1, abi.FLAG_WRITE)[0] is True
        assert t.check(0x1002, 1, abi.FLAG_WRITE)[0] is False
        assert t.check(0x1003, 2, abi.FLAG_WRITE)[0] is False
