"""RCU-replicated region table: the replica may never diverge from the
master, and per-CPU guard-decision caches must invalidate whenever the
enforcement epoch moves.

The replica is the SMP read-scaling mechanism (each CPU's ``carat_guard``
reads an immutable CPU-local snapshot lock-free; ioctl mutations publish
a fresh snapshot and wait a grace period) — so the property that matters
is byte-identical decisions: same ``(allowed, entries_scanned)`` from the
replica as from the master, for every query, after every mutation.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import abi
from repro.kernel import Kernel
from repro.policy import (
    CaratPolicyModule,
    PolicyManager,
    Region,
    RegionTable,
    RegionTableReplica,
)

PROTS = (abi.FLAG_READ, abi.FLAG_WRITE, abi.FLAG_READ | abi.FLAG_WRITE)

# Hypothesis op tape: mutations and checks against a live policy module.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(0, 120),           # slot on a 0x1000 lattice
            st.integers(1, 0x1000),        # length
            st.sampled_from(PROTS),
        ),
        st.tuples(st.just("remove"), st.integers(0, 120)),
        st.tuples(st.just("clear")),
        st.tuples(st.just("default"), st.booleans()),
        st.tuples(
            st.just("check"),
            st.integers(0, 121 * 0x1000),  # offset into the lattice
            st.sampled_from((1, 4, 8, 64)),
            st.sampled_from(PROTS),
        ),
    ),
    min_size=1,
    max_size=40,
)

_BASE = 0x4000_0000


def _slot_region(slot, length=0x1000, prot=abi.FLAG_READ | abi.FLAG_WRITE):
    return _BASE + slot * 0x1000, length, prot


class TestSnapshotSemantics:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 60), st.integers(1, 0x1000),
                      st.sampled_from(PROTS)),
            max_size=20, unique_by=lambda t: t[0],
        ),
        st.lists(
            st.tuples(st.integers(0, 61 * 0x1000), st.sampled_from((1, 8)),
                      st.sampled_from(PROTS)),
            min_size=1, max_size=20,
        ),
        st.booleans(),
    )
    def test_snapshot_decides_exactly_like_master(self, regions, queries,
                                                  default_allow):
        master = RegionTable(default_allow=default_allow)
        for slot, length, prot in regions:
            master.add(Region(_BASE + slot * 0x1000, length, prot))
        replica = master.snapshot()
        assert isinstance(replica, RegionTableReplica)
        assert replica.epoch == master.epoch
        assert replica.default_allow == master.default_allow
        assert len(replica) == len(master)
        for off, size, flags in queries:
            addr = _BASE + off
            assert replica.check(addr, size, flags) == \
                master.check(addr, size, flags)

    def test_snapshot_is_immutable_under_master_mutation(self):
        master = RegionTable()
        master.add(Region(_BASE, 0x1000, abi.FLAG_READ))
        replica = master.snapshot()
        master.add(Region(_BASE + 0x1000, 0x1000, abi.FLAG_WRITE))
        master.remove(_BASE, 0x1000)
        # The replica still answers from the state it snapshotted.
        assert replica.check(_BASE, 8, abi.FLAG_READ)[0] is True
        assert replica.check(_BASE + 0x1000, 8, abi.FLAG_WRITE)[0] is False
        assert replica.epoch != master.epoch  # staleness is detectable


def _audit_policy(ncpus):
    kernel = Kernel(ncpus=ncpus)
    policy = CaratPolicyModule(kernel, enforce=False).install()
    return kernel, policy, PolicyManager(kernel)


class TestReplicaNeverDiverges:
    @settings(max_examples=40, deadline=None)
    @given(ops=_ops, ncpus=st.sampled_from((1, 2, 4)))
    def test_randomized_ops(self, ops, ncpus):
        """Drive mutations through the ioctl write path (RCU publish)
        and checks through ``carat_guard`` on rotating CPUs; the guard's
        answer must always equal a direct master check."""
        kernel, policy, manager = _audit_policy(ncpus)
        master = policy.index
        cpu = 0
        for op in ops:
            kind = op[0]
            if kind == "add":
                _, slot, length, prot = op
                base, length, prot = _slot_region(slot, length, prot)
                manager.add_region(base, length, prot)
            elif kind == "remove":
                base, length, _ = _slot_region(op[1])
                manager.remove_region(base, length)
            elif kind == "clear":
                manager.clear()
            elif kind == "default":
                manager.set_default(op[1])
            else:
                _, off, size, flags = op
                addr = _BASE + off
                expect_allowed, expect_scanned = master.check(
                    addr, size, flags)
                with kernel.smp.on(cpu):
                    scanned = policy._guard(None, addr, size, flags, "t")
                assert scanned == expect_scanned
                # Audit mode returns the scan count for allow and deny
                # alike; the decision itself shows up in the counters.
                cpu = (cpu + 1) % ncpus
        # Every ioctl mutation re-published, so the only lazy rebuilds
        # are each CPU's very first guard before any publish happened.
        assert policy.replica_refreshes <= ncpus
        if ncpus > 1:
            merged = policy.stats.as_dict()
            per_cpu = policy.stats_per_cpu()
            for key in merged:
                assert merged[key] == sum(row[key] for row in per_cpu)

    @pytest.mark.parametrize("ncpus", [1, 2, 4])
    def test_direct_master_mutation_rebuilds_lazily(self, ncpus):
        """A mutation that bypasses the ioctl path (tests poking the
        index directly) must be caught by the staleness token and
        rebuilt CPU-locally — never answered from the stale replica."""
        kernel, policy, _ = _audit_policy(ncpus)
        base, length, prot = _slot_region(3)
        # Warm every CPU's replica on an empty table.
        for cpu in range(ncpus):
            with kernel.smp.on(cpu):
                policy._guard(None, base, 8, abi.FLAG_READ, "t")
        policy.index.add(Region(base, length, prot))  # no publish
        refreshes_before = policy.replica_refreshes
        for cpu in range(ncpus):
            with kernel.smp.on(cpu):
                scanned = policy._guard(None, base, 8, abi.FLAG_READ, "t")
            assert scanned == policy.index.check(base, 8, abi.FLAG_READ)[1]
        assert policy.replica_refreshes == refreshes_before + ncpus

    @pytest.mark.parametrize("ncpus", [1, 4])
    def test_publish_waits_a_grace_period(self, ncpus):
        kernel, policy, manager = _audit_policy(ncpus)
        gps_before = kernel.rcu.grace_periods
        base, length, prot = _slot_region(0)
        manager.add_region(base, length, prot)
        assert policy.replica_publishes > 0
        assert kernel.rcu.grace_periods > gps_before


class TestGuardCacheInvalidation:
    @pytest.mark.parametrize("ncpus", [1, 2, 4])
    def test_enforce_epoch_bump_invalidates_every_cpu(self, ncpus):
        kernel, policy, manager = _audit_policy(ncpus)
        base, length, prot = _slot_region(0)
        manager.add_region(base, length, prot)
        query = (base, 8, abi.FLAG_READ)

        def miss_hit_counts():
            rows = policy.stats_per_cpu()
            return [(r["guard_cache_misses"], r["guard_cache_hits"])
                    for r in rows]

        # Warm each CPU's decision cache: one miss then one hit apiece.
        for cpu in range(ncpus):
            with kernel.smp.on(cpu):
                policy._guard(None, *query, "t")
                policy._guard(None, *query, "t")
        assert miss_hit_counts() == [(1, 1)] * ncpus

        # A mode change bumps the enforcement epoch: every CPU's cached
        # decisions are stale and the next guard must miss.
        policy.enforce = True
        policy.enforce = False  # back to audit so denials don't raise
        for cpu in range(ncpus):
            with kernel.smp.on(cpu):
                policy._guard(None, *query, "t")
        assert miss_hit_counts() == [(2, 1)] * ncpus

    @pytest.mark.parametrize("ncpus", [1, 2])
    def test_region_epoch_bump_invalidates_too(self, ncpus):
        kernel, policy, manager = _audit_policy(ncpus)
        base, length, prot = _slot_region(0)
        manager.add_region(base, length, prot)
        query = (base, 8, abi.FLAG_READ)
        for cpu in range(ncpus):
            with kernel.smp.on(cpu):
                policy._guard(None, *query, "t")
                policy._guard(None, *query, "t")
        manager.add_region(*_slot_region(1))  # index epoch moves
        for cpu in range(ncpus):
            with kernel.smp.on(cpu):
                policy._guard(None, *query, "t")
        for misses, hits in (
            (r["guard_cache_misses"], r["guard_cache_hits"])
            for r in policy.stats_per_cpu()
        ):
            assert (misses, hits) == (2, 1)


@pytest.mark.parametrize("engine", ["interp", "compiled"])
class TestLiveSystemBothEngines:
    def test_replicated_reads_survive_live_mutation(self, engine):
        """Full-system check under both engines: blast, mutate the policy
        through the ioctl path mid-run, blast again — replicated guards
        must keep deciding exactly like the master (no denials, counters
        coherent, publishes recorded)."""
        from repro.core.system import CaratKopSystem, SystemConfig

        system = CaratKopSystem(SystemConfig(
            machine="r415", protect=True, engine=engine, cpus=2,
        ))
        r1 = system.blast(size=128, count=30)
        assert r1.errors == 0
        publishes_before = system.policy.replica_publishes
        system.policy_manager.add_region(
            0x7000_0000, 0x1000, abi.FLAG_READ | abi.FLAG_WRITE)
        assert system.policy.replica_publishes == publishes_before + 1
        r2 = system.blast(size=128, count=30)
        assert r2.errors == 0
        stats = system.guard_stats()
        assert stats["denied"] == 0
        assert stats["checks"] == stats["allowed"]
        assert system.policy.replica_refreshes == 0


class TestVerifyEpochDemotion:
    """PR-7 regression: every policy-mutation ioctl must also demote
    loaded -O3 modules whose verification certificates the mutation
    invalidated — a stale elision set is a policy bypass, exactly like
    a stale guard-decision cache (the two tests above)."""

    SOURCE = """
    long cells[4];
    __export long run(long seed) {
        cells[0] = seed;
        cells[1] = cells[0] + 1;
        return cells[1];
    }
    """

    def _loaded_o3(self, ncpus=1):
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.passes.absint import AREAS

        kernel, policy, manager = _audit_policy(ncpus)
        lo, hi = AREAS["module"]
        manager.allow(lo, hi - lo + 1)
        manager.set_default(False)
        compiled = compile_module(
            self.SOURCE,
            CompileOptions(module_name="prog", protect=True, opt_level=3,
                           verify_table=policy.index),
        )
        loaded = kernel.insmod(compiled)
        assert loaded.elided_guards, "setup: nothing was elided"
        return kernel, policy, manager, loaded

    @pytest.mark.parametrize("mutate", [
        lambda m: m.add_region(0x3000_0000, 0x1000,
                               abi.FLAG_READ | abi.FLAG_WRITE),
        lambda m: m.set_default(True),
        lambda m: m.clear(),
        lambda m: m.add_region_for("prog", 0x3000_0000, 0x1000,
                                   abi.FLAG_READ | abi.FLAG_WRITE),
    ], ids=["add_region", "set_default", "clear", "add_region_for"])
    def test_every_mutating_ioctl_demotes(self, mutate):
        kernel, policy, manager, loaded = self._loaded_o3()
        mutate(manager)
        assert not loaded.elided_guards
        assert loaded.verify_state.startswith("demoted")
        assert kernel.verify_demotions >= 1

    def test_remove_region_demotes(self):
        from repro.passes.absint import AREAS

        kernel, policy, manager, loaded = self._loaded_o3()
        lo, hi = AREAS["module"]
        assert manager.remove_region(lo, hi - lo + 1)
        assert not loaded.elided_guards

    @pytest.mark.parametrize("engine", ["interp", "compiled"])
    def test_deny_visibility_restored_after_demotion(self, engine):
        """The whole point: after the allow region is removed, the
        previously-elided guards run dynamically again and the deny
        is observed — on both engines (the compiled engine must also
        drop its translated bodies)."""
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.passes.absint import AREAS

        kernel = Kernel(engine=engine)
        policy = CaratPolicyModule(kernel, enforce=False).install()
        manager = PolicyManager(kernel)
        lo, hi = AREAS["module"]
        manager.allow(lo, hi - lo + 1)
        manager.set_default(False)
        compiled = compile_module(
            self.SOURCE,
            CompileOptions(module_name="prog", protect=True, opt_level=3,
                           verify_table=policy.index),
        )
        loaded = kernel.insmod(compiled)
        kernel.run_function(loaded, "run", [1])
        checks_elided = policy.stats.checks
        manager.remove_region(lo, hi - lo + 1)  # now everything denies
        assert not loaded.elided_guards
        kernel.run_function(loaded, "run", [2])
        assert policy.stats.checks > checks_elided
        assert policy.stats.denied > 0, "deny stayed hidden after demotion"

    def test_run_function_catches_direct_index_mutation(self):
        """A mutation that bypasses the ioctl path entirely is still
        caught by the staleness token before any elided site runs."""
        kernel, policy, manager, loaded = self._loaded_o3()
        policy.index.clear()  # no publish, no on_policy_mutated()
        kernel.run_function(loaded, "run", [3])
        assert not loaded.elided_guards
        assert loaded.verify_state.startswith("demoted")


class TestVerifyPolicyUnderMutationStorm:
    """S3: ``--verify-policy strict|demote|off`` under a concurrent
    mutation storm.  Three -O3 modules run while three interleaved
    mutators hammer the policy plane (global adds/removes, default
    flips, per-module adds).  The invariants:

    - every loaded -O3 module is demoted **exactly once** per policy
      generation bump that invalidates it — no double demotion, no
      demotion of an already-dynamic module;
    - a module **never executes** with stale elided guards: by the time
      ``run_function`` dispatches, any mutation has already cleared the
      elision set (eager hook) or the staleness token catches it first.
    """

    SOURCE = """
    long cells[4];
    __export long run(long seed) {
        cells[0] = seed;
        cells[1] = cells[0] + 1;
        return cells[1];
    }
    """

    def _storm_kernel(self, verify_policy, ncpus=2):
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.passes.absint import AREAS

        kernel = Kernel(ncpus=ncpus, verify_policy=verify_policy)
        policy = CaratPolicyModule(kernel, enforce=False).install()
        manager = PolicyManager(kernel)
        lo, hi = AREAS["module"]
        manager.allow(lo, hi - lo + 1)
        manager.set_default(False)
        loaded = []
        for i in range(3):
            compiled = compile_module(
                self.SOURCE.replace("run", f"run{i}"),
                CompileOptions(module_name=f"m{i}", protect=True,
                               opt_level=3, verify_table=policy.index),
            )
            loaded.append(kernel.insmod(compiled))
        return kernel, policy, manager, loaded

    def _mutators(self, manager):
        """Three interleaved mutation streams (the 'concurrent' storm:
        round-robin interleaving is the simulator's concurrency model)."""
        base = 0x6000_0000
        step = {"n": 0}

        def global_adds():
            n = step["n"] = step["n"] + 1
            manager.add_region(base + n * 0x2000, 0x1000,
                               abi.FLAG_READ | abi.FLAG_WRITE)

        def default_flips():
            manager.set_default(step["n"] % 2 == 0)

        def per_module_adds():
            n = step["n"]
            manager.add_region_for("bystander", base + 0x100_0000
                                   + n * 0x2000, 0x1000, abi.FLAG_READ)

        return [global_adds, default_flips, per_module_adds]

    @pytest.mark.parametrize("verify_policy", ["strict", "demote", "off"])
    def test_storm_demotes_exactly_once_never_runs_stale(self,
                                                         verify_policy):
        kernel, policy, manager, loaded = self._storm_kernel(verify_policy)
        if verify_policy == "off":
            assert all(not m.elided_guards for m in loaded)
        else:
            assert all(m.elided_guards for m in loaded)
        mutators = self._mutators(manager)
        for round_no in range(12):
            mutators[round_no % len(mutators)]()
            # The eager hook must already have cleared every elision set:
            # an elided module whose token went stale at this point would
            # be a stale-guard execution window.
            for i, m in enumerate(loaded):
                assert not (m.elided_guards
                            and kernel._verify_token_stale(m))
                assert kernel.run_function(m, f"run{i}", [round_no]) \
                    == round_no + 1
        # Exactly one generation-bump demotion per elided module, no
        # matter how many mutations followed (re-demoting an
        # already-dynamic module would double-count).
        expected = 0 if verify_policy == "off" else len(loaded)
        assert kernel.verify_demotions == expected
        assert all(not m.elided_guards for m in loaded)

    def test_strict_rejects_stale_certificate_at_insmod(self):
        """strict refuses to load a module whose certificate no longer
        proves the live table — demote-at-insmod is not available."""
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.kernel.module_loader import LoadError
        from repro.passes.absint import AREAS

        kernel = Kernel(verify_policy="strict")
        policy = CaratPolicyModule(kernel, enforce=False).install()
        manager = PolicyManager(kernel)
        lo, hi = AREAS["module"]
        manager.allow(lo, hi - lo + 1)
        manager.set_default(False)
        compiled = compile_module(
            self.SOURCE,
            CompileOptions(module_name="late", protect=True, opt_level=3,
                           verify_table=policy.index),
        )
        manager.add_region(0x6000_0000, 0x1000, abi.FLAG_READ)  # staler now
        with pytest.raises(LoadError):
            kernel.insmod(compiled)

    def test_storm_through_staged_generations(self):
        """The control-plane flavour: every staged canary generation is
        itself a bump — an elided module must be demoted at *stage* time
        (the canary CPU would otherwise run it against a policy its
        certificate never saw)."""
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.passes.absint import AREAS
        from repro.policy import (
            ControlPlaneConfig, OP_ADD, PolicyControlPlane, TenantQuota,
        )

        kernel = Kernel(ncpus=2, verify_policy="demote")
        policy = CaratPolicyModule(kernel, enforce=False).install()
        manager = PolicyManager(kernel)
        cp = PolicyControlPlane(
            kernel, policy, ControlPlaneConfig(canary_tick_limit=1),
        ).attach()
        lo, hi = AREAS["module"]
        manager.allow(lo, hi - lo + 1)
        manager.set_default(False)
        loaded = kernel.insmod(compile_module(
            self.SOURCE,
            CompileOptions(module_name="prog", protect=True, opt_level=3,
                           verify_table=policy.index),
        ))
        assert loaded.elided_guards
        cp.create_tenant("storm", TenantQuota(max_regions=64))
        for n in range(6):
            cp.submit_batch("storm", [
                (OP_ADD, 0x7000_0000 + n * 0x2000, 0x1000, abi.FLAG_READ),
            ])
            assert not loaded.elided_guards  # demoted at stage, not promote
            assert kernel.run_function(loaded, "run", [n]) == n + 1
            cp.tick()
        assert kernel.verify_demotions == 1
