"""Multi-tenant policy control plane: transactional batches, staged
canary rollout with auto-rollback, and the chaos-hardened publish path.

The contract under test is crash consistency as seen from the guard:

- a batch either lands whole or leaves the namespace bit-identical
  (including region *order* — first-match priority makes order policy);
- a staged generation is visible only to canary CPUs until promoted,
  and an auto-rollback restores exactly the pre-batch state;
- injected publish faults (drops, stalls, torn replicas, quota races)
  are absorbed by the watchdog/repair machinery before any guard
  decision is served — a torn generation is never observable.
"""

import pytest

from repro import abi
from repro.faults import FaultInjector
from repro.kernel import Kernel
from repro.kernel.chardev import (
    EAGAIN, EBUSY, EDQUOT, EEXIST, EINVAL, EIO, ENOENT, ENOTTY,
)
from repro.policy import (
    CaratPolicyModule,
    ControlPlaneConfig,
    OP_ADD,
    OP_DEL,
    PolicyControlPlane,
    PolicyManager,
    TenantQuota,
)
from repro.policy import module as pm
from repro.policy.controlplane import _TornReplica

RW = abi.FLAG_READ | abi.FLAG_WRITE
BASE = 0x5000_0000


def _plane(ncpus=1, injector=None, **cfg):
    kernel = Kernel(ncpus=ncpus)
    policy = CaratPolicyModule(kernel, enforce=False).install()
    manager = PolicyManager(kernel)
    cp = PolicyControlPlane(
        kernel, policy, ControlPlaneConfig(**cfg), injector=injector
    ).attach()
    return kernel, policy, manager, cp


def _region(slot, length=0x1000):
    return BASE + slot * 0x2000, length


def _adds(*slots, prot=RW):
    return [(OP_ADD, *_region(s), prot) for s in slots]


def _layout(tenant):
    """The namespace's exact ordered content — the atomicity witness."""
    return [(r.base, r.length, r.prot) for r in tenant.table._regions]


class TestTenantLifecycle:
    def test_create_duplicate_and_bad_names(self):
        _, _, _, cp = _plane()
        cp.create_tenant("a")
        with pytest.raises(OSError) as e:
            cp.create_tenant("a")
        assert e.value.errno == EEXIST
        for bad in ("", "x" * 33):
            with pytest.raises(OSError) as e:
                cp.create_tenant(bad)
            assert e.value.errno == EINVAL

    def test_delete_missing_is_enoent(self):
        _, _, _, cp = _plane()
        with pytest.raises(OSError) as e:
            cp.delete_tenant("ghost")
        assert e.value.errno == ENOENT

    def test_delete_with_regions_republishes(self):
        kernel, policy, _, cp = _plane(canary_tick_limit=1)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        assert cp.tick() == 1  # promote
        base, _ = _region(0)
        assert policy._replica_check(policy.index, 0, base, 8,
                                     abi.FLAG_READ)[0]
        gen = cp.generation
        cp.delete_tenant("a")
        assert cp.generation == gen + 1
        assert not policy._replica_check(policy.index, 0, base, 8,
                                         abi.FLAG_READ)[0]

    def test_delete_staged_tenant_is_ebusy(self):
        _, _, _, cp = _plane(canary_tick_limit=100, canary_window=100)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        with pytest.raises(OSError) as e:
            cp.delete_tenant("a")
        assert e.value.errno == EBUSY

    def test_second_attach_rejected_reattach_idempotent(self):
        kernel, policy, _, cp = _plane()
        assert cp.attach() is cp  # idempotent
        with pytest.raises(RuntimeError):
            PolicyControlPlane(kernel, policy).attach()


class TestQuotas:
    def test_region_quota_is_atomic_edquot(self):
        _, _, _, cp = _plane()
        t = cp.create_tenant("a", TenantQuota(max_regions=2))
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(0, 1, 2))
        assert e.value.errno == EDQUOT
        assert _layout(t) == []  # nothing from the batch survived
        assert t.quota_denials == 1 and t.batches_rejected == 1

    def test_rate_quota_resets_with_the_window(self):
        _, _, _, cp = _plane(rate_window_ticks=2, canary_tick_limit=1)
        t = cp.create_tenant(
            "a", TenantQuota(max_mutations_per_window=2))
        cp.submit_batch("a", _adds(0, 1))
        cp.tick()  # promote; also tick 1 of the rate window
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(2))
        assert e.value.errno == EDQUOT
        cp.tick()  # closes the rate window
        assert t.mutations_window == 0
        cp.submit_batch("a", _adds(2))  # now admitted


class TestBatchAtomicity:
    def _promoted(self, cp, name, ops):
        cp.submit_batch(name, ops)
        while cp.status()["staged_generation"]:
            cp.tick()

    def test_overlap_mid_batch_rejects_whole_batch(self):
        kernel, _, _, cp = _plane(canary_tick_limit=1)
        t = cp.create_tenant("a")
        self._promoted(cp, "a", _adds(0, 1))
        before = _layout(t)
        gen = cp.generation
        base0, _ = _region(0)
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(2) + [(OP_ADD, base0 + 8, 8, RW)])
        assert e.value.errno == EEXIST
        assert _layout(t) == before
        assert cp.generation == gen  # nothing staged, nothing published
        assert t.overlap_rejections == 1
        assert "policy:a" not in kernel.journal.modules()  # no residue

    def test_del_of_missing_region_is_enoent(self):
        _, _, _, cp = _plane()
        t = cp.create_tenant("a")
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(0) + [(OP_DEL, *_region(9), 0)])
        assert e.value.errno == ENOENT
        assert _layout(t) == []

    def test_empty_batch_is_einval(self):
        _, _, _, cp = _plane()
        cp.create_tenant("a")
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", [])
        assert e.value.errno == EINVAL

    def test_rollback_restores_exact_region_order(self):
        """Order is first-match priority: undo must restore position,
        not merely membership."""
        _, _, _, cp = _plane(canary_tick_limit=1)
        t = cp.create_tenant("a")
        self._promoted(cp, "a", _adds(0, 1, 2))
        before = _layout(t)
        with pytest.raises(OSError):
            cp.submit_batch("a", [
                (OP_DEL, *_region(1), 0),     # applied, must be undone
                (OP_ADD, *_region(3), RW),    # applied, must be undone
                (OP_DEL, *_region(7), 0),     # ENOENT: tears the batch
            ])
        assert _layout(t) == before

    def test_torn_batch_fault_is_unobservable(self):
        inj = FaultInjector(torn_batch_period=1)
        kernel, policy, _, cp = _plane(injector=inj)
        t = cp.create_tenant("a")
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(0, 1))
        assert e.value.errno == EIO
        assert cp.torn_batches == 1
        assert _layout(t) == []
        assert cp.status()["staged_generation"] == 0
        base, _ = _region(0)
        assert not policy._replica_check(policy.index, 0, base, 8,
                                         abi.FLAG_READ)[0]


class TestStagedRollout:
    def test_stage_then_second_batch_is_ebusy(self):
        _, _, _, cp = _plane(canary_tick_limit=100, canary_window=100)
        cp.create_tenant("a")
        gen = cp.submit_batch("a", _adds(0))
        assert gen == cp.generation + 1
        assert cp.status()["staged_generation"] == gen
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(1))
        assert e.value.errno == EBUSY

    def test_canary_sees_staged_others_see_current(self):
        _, policy, _, cp = _plane(ncpus=4, canary_cpus=2,
                                  canary_tick_limit=100, canary_window=100)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        base, _ = _region(0)
        check = lambda cpu: policy._replica_check(
            policy.index, cpu, base, 8, abi.FLAG_READ)[0]
        assert check(0) and check(1)          # canary: staged allow
        assert not check(2) and not check(3)  # rest: current deny
        while cp.status()["staged_generation"]:
            cp.tick()
        assert all(check(cpu) for cpu in range(4))  # promoted everywhere

    def test_promote_by_tick_limit(self):
        _, _, _, cp = _plane(canary_tick_limit=3, canary_window=10_000)
        t = cp.create_tenant("a")
        gen = cp.submit_batch("a", _adds(0))
        assert cp.tick() == 0 and cp.tick() == 0
        assert cp.tick() == 1
        assert cp.generation == gen == t.generation
        assert t.batches_promoted == 1
        assert cp.status()["staged_generation"] == 0

    def test_promote_by_canary_reads(self):
        kernel, policy, _, cp = _plane(canary_window=2,
                                       canary_tick_limit=10_000)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        base, _ = _region(0)
        for _ in range(2):
            policy._replica_check(policy.index, 0, base, 8, abi.FLAG_READ)
        assert cp.tick() == 1

    def test_violation_budget_triggers_auto_rollback(self):
        kernel, policy, _, cp = _plane(canary_tick_limit=100,
                                       canary_window=100)
        t = cp.create_tenant("bad", TenantQuota(violation_budget=1))
        layout_before = _layout(t)
        gen_before = cp.generation
        cp.submit_batch("bad", [(OP_ADD, *_region(0), 0)])  # deny region
        base, _ = _region(0)
        for _ in range(3):  # canary CPU trips the deny past the budget
            policy._guard(None, base + 8, 8, abi.FLAG_READ, "victim")
        assert cp.tick() == 2
        assert _layout(t) == layout_before
        assert cp.generation == gen_before
        assert t.rollbacks == 1
        record = cp.rollback_records[-1]
        assert "violation budget exceeded" in record["reason"]
        assert record["policy_ops"] == 1
        assert "policy:bad" not in kernel.journal.modules()

    def test_rollbacks_do_not_consume_generations(self):
        """The chaos==clean keystone: a rolled-back stage leaves the
        generation sequence exactly as if it never happened."""
        kernel, policy, _, cp = _plane(canary_tick_limit=100,
                                       canary_window=100)
        cp.create_tenant("bad", TenantQuota(violation_budget=0))
        gen_a = cp.submit_batch("bad", [(OP_ADD, *_region(0), 0)])
        base, _ = _region(0)
        policy._guard(None, base + 8, 8, abi.FLAG_READ, "victim")
        assert cp.tick() == 2
        gen_b = cp.submit_batch("bad", _adds(1))
        assert gen_b == gen_a  # the number was returned to the pool


class TestPublishWatchdog:
    def test_canary_exhaustion_rolls_back_with_eagain(self):
        inj = FaultInjector(publish_drop_period=1)  # every install drops
        kernel, _, _, cp = _plane(injector=inj, publish_max_retries=3)
        t = cp.create_tenant("a")
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(0))
        assert e.value.errno == EAGAIN
        assert cp.publish_failures == 1
        assert cp.publish_retries >= 3
        assert cp.backoff_us_total > 0
        assert _layout(t) == []
        assert cp.rollback_records[-1]["reason"] == "canary publish failed"
        assert cp.status()["staged_generation"] == 0

    def test_stalled_grace_periods_also_exhaust(self):
        inj = FaultInjector(publish_stall_period=1)
        _, _, _, cp = _plane(injector=inj, publish_max_retries=2)
        cp.create_tenant("a")
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", _adds(0))
        assert e.value.errno == EAGAIN

    def test_transient_drop_is_retried_to_success(self):
        inj = FaultInjector(publish_drop_period=2)
        _, _, _, cp = _plane(injector=inj, canary_tick_limit=1)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        assert cp.tick() == 1  # promoted despite the dropped installs
        assert cp.publish_retries >= 1
        assert cp.publish_failures == 0

    def test_backoff_is_exponential_and_capped(self):
        _, _, _, cp = _plane(
            publish_max_retries=6,
            backoff_base_us=100.0, backoff_cap_us=400.0,
        )
        cp.create_tenant("a")
        cp.injector = FaultInjector(publish_drop_period=1)
        with pytest.raises(OSError):
            cp.submit_batch("a", _adds(0))
        # Each exhausted loop backs off 100 + 200 + 400 + 400 + 400 + 400
        # (doubling, capped at 400us); the failed stage runs one loop and
        # its rollback's forced restore runs another.
        assert cp.backoff_us_total == pytest.approx(2 * 1900.0)
        assert cp.max_backoff_us == pytest.approx(400.0)

    def test_promotes_roll_forward_by_force(self):
        """Once the canary window closes, promotion must complete even
        if the publish path faults persistently — no CPU may be left on
        the old generation (that would be a torn promote)."""
        inj = FaultInjector(publish_stall_period=1)
        kernel, _, _, cp = _plane(
            ncpus=2, injector=inj, publish_max_retries=2,
            canary_tick_limit=1,
        )
        # Staging needs one clean canary publish; arm the injector after.
        cp.injector = None
        cp.create_tenant("a")
        gen = cp.submit_batch("a", _adds(0))
        cp.injector = inj
        assert cp.tick() == 1
        assert cp.forced_publishes >= 1
        assert [slot[0] for slot in cp._slots] == [gen, gen]


class TestReplicaRepair:
    def test_torn_slot_with_valid_stamp_is_repaired(self):
        """The stamp tears *with* the payload: detection must use
        canonical-object identity, never trust the stamp."""
        _, policy, _, cp = _plane(canary_tick_limit=1)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        cp.tick()
        cp._slots[0] = (cp.generation, _TornReplica())  # stamp matches!
        base, _ = _region(0)
        repairs = cp.replica_repairs
        allowed, _ = policy._replica_check(policy.index, 0, base, 8,
                                           abi.FLAG_READ)
        assert allowed  # served from the repaired canonical snapshot
        assert cp.replica_repairs == repairs + 1
        assert cp._slots[0][1] is cp._current

    def test_injected_corruption_never_reaches_the_guard(self):
        inj = FaultInjector(replica_corrupt_period=1)
        kernel, policy, _, cp = _plane(ncpus=2, injector=inj,
                                       canary_tick_limit=1)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        cp.tick()
        base, _ = _region(0)
        for cpu in kernel.smp.cpus():  # _TornReplica.check would raise
            assert policy._replica_check(policy.index, cpu, base, 8,
                                         abi.FLAG_READ)[0]
        assert cp.replica_repairs >= 1

    def test_partial_publish_detected_by_stale_stamp(self):
        _, policy, _, cp = _plane(ncpus=2, canary_cpus=2,
                                  canary_tick_limit=1)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        cp.tick()  # promoted
        stale = cp._slots[1]
        cp._slots[1] = (cp.generation - 1, stale[1])  # missed install
        base, _ = _region(0)
        assert policy._replica_check(policy.index, 1, base, 8,
                                     abi.FLAG_READ)[0]
        assert cp._slots[1][0] == cp.generation


class TestQuotaRaceStorm:
    def test_racing_duplicate_batch_leaves_no_residue(self):
        inj = FaultInjector(quota_race_period=1)
        kernel, _, _, cp = _plane(injector=inj, canary_tick_limit=1)
        t = cp.create_tenant("a")
        cp.submit_batch("a", _adds(0, 1))
        assert cp.quota_races == 1
        assert len(t.table) == 2  # the race's duplicate adds all EEXISTed
        assert "policy:#race" not in kernel.journal.modules()


class TestLegacyWritePathPreemption:
    def test_system_mutation_preempts_staged_canary(self):
        kernel, policy, manager, cp = _plane(canary_tick_limit=100,
                                             canary_window=100)
        t = cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        gen = cp.generation
        manager.add_region(0x9000_0000, 0x1000, RW)  # legacy ioctl
        assert cp.status()["staged_generation"] == 0
        assert (cp.rollback_records[-1]["reason"]
                == "preempted by system policy mutation")
        assert _layout(t) == []  # the staged batch was undone
        assert cp.generation == gen + 1  # but the system change published
        assert policy._replica_check(policy.index, 0, 0x9000_0000, 8,
                                     abi.FLAG_READ)[0]

    def test_composition_puts_tenants_before_system(self):
        """First-match priority: a tenant deny carved inside a system
        allow wins for that window."""
        kernel, policy, manager, cp = _plane(canary_tick_limit=1)
        manager.add_region(BASE, 0x10_0000, RW)  # broad system allow
        cp.create_tenant("a")
        cp.submit_batch("a", [(OP_ADD, BASE + 0x2000, 0x1000, 0)])
        while cp.status()["staged_generation"]:
            cp.tick()
        check = lambda addr: policy._replica_check(
            policy.index, 0, addr, 8, abi.FLAG_READ)[0]
        assert check(BASE)  # system allow still rules outside the carve
        assert not check(BASE + 0x2000)  # tenant deny wins inside it


class TestIoctlSurface:
    def test_no_control_plane_is_enotty(self):
        kernel = Kernel()
        CaratPolicyModule(kernel, enforce=False).install()
        manager = PolicyManager(kernel)
        with pytest.raises(OSError) as e:
            manager.create_tenant("a")
        assert e.value.errno == ENOTTY

    def test_full_surface_through_the_chardev(self):
        kernel, _, manager, cp = _plane(canary_tick_limit=2)
        manager.create_tenant("a", max_regions=8,
                              max_mutations_per_window=32,
                              violation_budget=4)
        gen = manager.batch_mutate("a", [
            (OP_ADD, *_region(0), RW),
            (OP_ADD, *_region(1), abi.FLAG_READ),
        ])
        assert gen == 2
        status = manager.cp_status()
        assert status["staged_generation"] == gen
        assert status["tenants"] == 1
        while manager.cp_status()["staged_generation"]:
            manager.cp_tick()
        stats = manager.tenant_stats("a")
        assert stats["generation"] == gen
        assert stats["regions"] == 2
        assert stats["batches_promoted"] == 1
        manager.delete_tenant("a")
        assert manager.cp_status()["tenants"] == 0

    def test_batch_count_length_mismatch_is_einval(self):
        import struct

        kernel, _, manager, cp = _plane()
        cp.create_tenant("a")
        payload = b"a".ljust(32, b"\x00") + struct.pack("<I", 3)
        payload += struct.pack("<IQQI", OP_ADD, BASE, 0x1000, RW)  # only 1
        with pytest.raises(OSError) as e:
            kernel.devices.ioctl(pm.DEVICE_PATH, pm.CMD_BATCH_MUTATE,
                                 payload, uid=0)
        assert e.value.errno == EINVAL

    def test_proc_carat_grows_a_controlplane_section(self):
        kernel, _, manager, cp = _plane(canary_tick_limit=1)
        manager.create_tenant("a")
        manager.batch_mutate("a", [(OP_ADD, *_region(0), RW)])
        manager.cp_tick()
        text = kernel.proc.read("/proc/carat")
        assert "controlplane: generation 2, 1 tenant(s)" in text
        assert "tenant a: gen 2, 1/256 regions" in text


class TestOverlapRejection:
    """S1: mutation ioctls reject overlapping/duplicate adds."""

    def test_add_region_for_duplicate_is_eexist(self):
        kernel = Kernel()
        CaratPolicyModule(kernel, enforce=False).install()
        manager = PolicyManager(kernel)
        manager.add_region_for("mod", BASE, 0x1000, RW)
        with pytest.raises(OSError) as e:
            manager.add_region_for("mod", BASE, 0x1000, RW)
        assert e.value.errno == EEXIST

    def test_add_region_for_partial_overlap_is_eexist(self):
        kernel = Kernel()
        CaratPolicyModule(kernel, enforce=False).install()
        manager = PolicyManager(kernel)
        manager.add_region_for("mod", BASE, 0x1000, RW)
        with pytest.raises(OSError) as e:
            manager.add_region_for("mod", BASE + 0xF00, 0x1000, RW)
        assert e.value.errno == EEXIST
        # Disjoint neighbours are fine, for the same and other modules.
        manager.add_region_for("mod", BASE + 0x1000, 0x1000, RW)
        manager.add_region_for("other", BASE, 0x1000, RW)

    def test_tenant_batch_duplicate_within_batch_is_eexist(self):
        _, _, _, cp = _plane()
        t = cp.create_tenant("a")
        base, length = _region(0)
        with pytest.raises(OSError) as e:
            cp.submit_batch("a", [
                (OP_ADD, base, length, RW),
                (OP_ADD, base, length, RW),  # self-collision
            ])
        assert e.value.errno == EEXIST
        assert _layout(t) == []


class TestStaticVerificationSoundness:
    """-O3 elision certificates prove the *system* namespace; the
    control plane composes tenant regions in front of it, so the
    certificate must be refused or revoked the moment tenants matter."""

    SOURCE = """
    long cells[4];
    __export long run(long seed) {
        cells[0] = seed;
        cells[1] = cells[0] + 1;
        return cells[1];
    }
    """

    def _o3(self, kernel, policy):
        from repro.core.pipeline import CompileOptions, compile_module

        return compile_module(
            self.SOURCE,
            CompileOptions(module_name="prog", protect=True, opt_level=3,
                           verify_table=policy.index),
        )

    def _allow_modules(self, manager):
        from repro.passes.absint import AREAS

        lo, hi = AREAS["module"]
        manager.allow(lo, hi - lo + 1)
        manager.set_default(False)

    def test_insmod_refuses_elision_under_tenant_regions(self):
        kernel, policy, manager, cp = _plane(canary_tick_limit=1)
        self._allow_modules(manager)
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))
        cp.tick()
        loaded = kernel.insmod(self._o3(kernel, policy))
        assert not loaded.elided_guards
        assert "tenant-composed" in loaded.verify_state

    def test_stage_demotes_elided_module_exactly_once(self):
        kernel, policy, manager, cp = _plane(canary_tick_limit=1)
        self._allow_modules(manager)
        loaded = kernel.insmod(self._o3(kernel, policy))
        assert loaded.elided_guards  # tenant-free composition: cert holds
        cp.create_tenant("a")
        cp.submit_batch("a", _adds(0))  # staging demotes eagerly
        assert not loaded.elided_guards
        assert kernel.verify_demotions == 1
        cp.tick()  # promote: nothing left to demote
        assert kernel.verify_demotions == 1
