"""Policy module + manager tests: the /dev/carat ioctl protocol, guard
enforcement, stats, swap-ability (paper §3.1-3.2, Figure 1)."""

import struct

import pytest

from repro import abi
from repro.kernel import IoctlError, Kernel
from repro.kernel.chardev import EINVAL, ENOSPC, ENOTTY, EPERM
from repro.policy import CaratPolicyModule, PolicyManager, Region
from repro.policy import module as pm
from repro.vm.interp import GuardViolation

RW = abi.FLAG_READ | abi.FLAG_WRITE


@pytest.fixture()
def system(kernel):
    policy = CaratPolicyModule(kernel).install()
    return kernel, policy, PolicyManager(kernel)


class TestIoctlProtocol:
    def test_add_region_returns_index(self, system):
        _, _, mgr = system
        assert mgr.add_region(0x1000, 0x100, RW) == 0
        assert mgr.add_region(0x2000, 0x100, RW) == 1
        assert mgr.count() == 2

    def test_get_region_roundtrip(self, system):
        _, _, mgr = system
        mgr.add_region(0x1000, 0x100, abi.FLAG_READ)
        r = mgr.get_region(0)
        assert r == Region(0x1000, 0x100, abi.FLAG_READ)

    def test_remove_region(self, system):
        _, _, mgr = system
        mgr.add_region(0x1000, 0x100, RW)
        assert mgr.remove_region(0x1000, 0x100) is True
        assert mgr.remove_region(0x1000, 0x100) is False
        assert mgr.count() == 0

    def test_clear_and_default(self, system):
        kernel, policy, mgr = system
        mgr.add_region(0x1000, 0x100, RW)
        mgr.clear()
        assert mgr.count() == 0
        mgr.set_default(True)
        assert policy.index.default_allow is True
        mgr.set_default(False)
        assert policy.index.default_allow is False

    def test_non_root_rejected(self, system):
        kernel, _, _ = system
        outsider = PolicyManager(kernel, uid=1000)
        with pytest.raises(IoctlError) as e:
            outsider.add_region(0x1000, 0x100, RW)
        assert e.value.errno == EPERM

    def test_bad_payload_size(self, system):
        kernel, _, _ = system
        with pytest.raises(IoctlError) as e:
            kernel.devices.ioctl(pm.DEVICE_PATH, pm.CMD_ADD_REGION, b"xx", uid=0)
        assert e.value.errno == EINVAL

    def test_unknown_command(self, system):
        kernel, _, _ = system
        with pytest.raises(IoctlError) as e:
            kernel.devices.ioctl(pm.DEVICE_PATH, 0xBADC0DE, b"", uid=0)
        assert e.value.errno == ENOTTY

    def test_table_full_errno(self, system):
        _, _, mgr = system
        for i in range(64):
            mgr.add_region(0x100000 + i * 0x1000, 0x100, RW)
        with pytest.raises(IoctlError) as e:
            mgr.add_region(0xFF000000, 0x100, RW)
        assert e.value.errno == ENOSPC

    def test_invalid_region_errno(self, system):
        _, _, mgr = system
        with pytest.raises(IoctlError) as e:
            mgr.add_region(0x1000, 0, RW)
        assert e.value.errno == EINVAL

    def test_get_region_out_of_range(self, system):
        _, _, mgr = system
        with pytest.raises(IoctlError):
            mgr.get_region(5)

    def test_stats_payload(self, system):
        kernel, policy, mgr = system
        mgr.add_region(0x1000, 0x100, RW)
        policy._guard(None, 0x1000, 8, abi.FLAG_READ, "m")
        stats = mgr.stats()
        assert stats["checks"] == 1
        assert stats["allowed"] == 1
        assert stats["regions"] == 1

    def test_double_install_rejected(self, system):
        kernel, policy, _ = system
        with pytest.raises(RuntimeError):
            policy.install()


class TestGuardEnforcement:
    def test_allowed_access_returns_scan_count(self, system):
        _, policy, mgr = system
        mgr.add_region(0x1000, 0x1000, RW)
        assert policy._guard(None, 0x1500, 8, abi.FLAG_WRITE, "m") == 1

    def test_denied_access_panics_and_logs(self, system):
        kernel, policy, mgr = system
        mgr.set_default(False)
        with pytest.raises(GuardViolation) as e:
            policy._guard(None, 0xBAD0, 8, abi.FLAG_WRITE, "evil_mod")
        assert e.value.addr == 0xBAD0
        assert kernel.panicked is not None
        assert any("DENY module=evil_mod" in l for l in kernel.dmesg_log)
        assert any("Kernel panic" in l for l in kernel.dmesg_log)

    def test_audit_mode_logs_without_panic(self, kernel):
        policy = CaratPolicyModule(kernel, enforce=False).install()
        policy._guard(None, 0xBAD0, 8, abi.FLAG_READ, "m")
        assert kernel.panicked is None
        assert any("DENY" in l for l in kernel.dmesg_log)
        assert policy.stats.denied == 1

    def test_enforce_toggle_via_ioctl(self, system):
        kernel, policy, mgr = system
        mgr.set_enforce(False)
        policy._guard(None, 0xBAD0, 8, abi.FLAG_READ, "m")
        mgr.set_enforce(True)
        with pytest.raises(GuardViolation):
            policy._guard(None, 0xBAD0, 8, abi.FLAG_READ, "m")

    def test_stats_track_scans(self, system):
        _, policy, mgr = system
        for i in range(8):
            mgr.add_region(0x100000 + i * 0x10000, 0x1000, RW)
        policy._guard(None, 0x100000 + 7 * 0x10000, 8, abi.FLAG_READ, "m")
        assert policy.stats.entries_scanned == 8


class TestIntrinsicPolicy:
    def test_intrinsic_allow_deny(self, system):
        kernel, policy, mgr = system
        mgr.allow_intrinsic("wrmsr")
        # Name string must live in kernel memory for the guard to read.
        addr = kernel.kmalloc_allocator.kmalloc(16)
        kernel.address_space.write_bytes(addr, b"wrmsr\x00")
        assert policy._intrinsic_guard(None, addr) == 1
        mgr.deny_intrinsic("wrmsr")
        with pytest.raises(GuardViolation):
            policy._intrinsic_guard(None, addr)
        assert policy.stats.intrinsic_denied == 1


class TestSwapability:
    def test_policy_module_swap_without_recompile(self, kernel, key):
        """§3.2: 'one guard function can be swapped for another without
        having to recompile the guarded module'."""
        from repro.core.pipeline import CompileOptions, compile_module
        from repro.policy import SplayRegionIndex

        first = CaratPolicyModule(kernel).install()
        mgr = PolicyManager(kernel)
        mgr.install_two_region_policy()
        compiled = compile_module(
            "long g; __export long f(long v) { g = v; return g; }",
            CompileOptions(module_name="payload"),
        )
        loaded = kernel.insmod(compiled)
        assert kernel.run_function(loaded, "f", [5]) == 5
        checks_before = first.stats.checks
        assert checks_before > 0

        # Swap: uninstall the table-based policy, install a splay-based one.
        first.uninstall()
        second = CaratPolicyModule(kernel, index=SplayRegionIndex()).install()
        mgr2 = PolicyManager(kernel)
        mgr2.install_two_region_policy()
        assert kernel.run_function(loaded, "f", [6]) == 6
        assert second.stats.checks > 0
        assert first.stats.checks == checks_before  # old module retired

    def test_uninstall_removes_device_and_symbol(self, kernel):
        policy = CaratPolicyModule(kernel).install()
        policy.uninstall()
        assert kernel.devices.get(pm.DEVICE_PATH) is None
        assert kernel.symbols.lookup(abi.GUARD_SYMBOL) is None
        policy.uninstall()  # idempotent


class TestManagerConvenience:
    def test_two_region_policy_shape(self, system):
        kernel, policy, mgr = system
        mgr.install_two_region_policy()
        assert mgr.count() == 2
        regions = policy.index.regions()
        from repro.kernel import layout

        assert regions[0].base == layout.KERNEL_SPACE_START
        assert regions[0].permits(RW)
        assert regions[1].base == 0 and regions[1].prot == 0

    def test_n_region_policy_scan_depth(self, system):
        kernel, policy, mgr = system
        mgr.install_n_region_policy(16)
        assert mgr.count() == 16
        # Kernel-half accesses scan past the decoys.
        _, scanned = policy.index.check(
            0xFFFF_8880_0000_1000, 8, abi.FLAG_READ
        )
        assert scanned == 15

    def test_n_region_policy_minimum(self, system):
        _, _, mgr = system
        with pytest.raises(ValueError):
            mgr.install_n_region_policy(1)

    def test_allow_deny_helpers(self, system):
        kernel, policy, mgr = system
        mgr.allow(0x1000, 0x100, write=False)
        mgr.deny(0x2000, 0x100)
        assert policy.index.check(0x1000, 4, abi.FLAG_READ)[0] is True
        assert policy.index.check(0x1000, 4, abi.FLAG_WRITE)[0] is False
        assert policy.index.check(0x2000, 4, abi.FLAG_READ)[0] is False

    def test_describe(self, system):
        _, _, mgr = system
        mgr.allow(0x1000, 0x100)
        assert "0x" in mgr.describe()
