"""Policy-miner tests: audit -> coalesce -> enforce."""

import pytest

from repro import abi
from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel import KernelPanic
from repro.policy import PolicyMiner
from repro.policy.miner import AccessRecord, MinedPolicy
from repro.policy.region import Region


class TestCoalescing:
    def _mine(self, records, max_regions=64, page_align=False):
        class _FakePolicy:
            pass

        miner = PolicyMiner.__new__(PolicyMiner)
        miner.max_regions = max_regions
        miner.records = [AccessRecord(*r) for r in records]
        return PolicyMiner.mine(miner, page_align=page_align)

    def test_single_access(self):
        mined = self._mine([(0x1000, 8, abi.FLAG_READ)])
        assert mined.regions == [Region(0x1000, 8, abi.FLAG_READ)]
        assert mined.observed_bytes == 8

    def test_adjacent_accesses_merge(self):
        mined = self._mine([
            (0x1000, 8, abi.FLAG_READ),
            (0x1008, 8, abi.FLAG_WRITE),
        ])
        assert len(mined.regions) == 1
        r = mined.regions[0]
        assert r.base == 0x1000 and r.length == 16
        assert r.prot == abi.FLAG_READ | abi.FLAG_WRITE

    def test_overlapping_accesses_merge(self):
        mined = self._mine([
            (0x1000, 16, abi.FLAG_READ),
            (0x1008, 16, abi.FLAG_READ),
        ])
        assert mined.regions[0].length == 24

    def test_distant_accesses_stay_separate(self):
        mined = self._mine([
            (0x1000, 8, abi.FLAG_READ),
            (0x9000, 8, abi.FLAG_READ),
        ])
        assert len(mined.regions) == 2
        assert mined.slack_bytes == 0

    def test_budget_merges_smallest_gaps_first(self):
        records = [
            (0x1000, 8, abi.FLAG_READ),
            (0x1020, 8, abi.FLAG_READ),   # 24-byte gap to the first
            (0x900000, 8, abi.FLAG_READ),  # huge gap
        ]
        mined = self._mine(records, max_regions=2)
        assert len(mined.regions) == 2
        assert mined.regions[0].base == 0x1000
        assert mined.regions[0].length == 0x28  # spans the small gap
        assert mined.slack_bytes == 0x18

    def test_budget_of_one(self):
        mined = self._mine(
            [(0x1000, 8, abi.FLAG_READ), (0x2000, 8, abi.FLAG_WRITE)],
            max_regions=1,
        )
        assert len(mined.regions) == 1
        assert mined.regions[0].prot == abi.FLAG_READ | abi.FLAG_WRITE

    def test_page_align_rounds_out(self):
        mined = self._mine([(0x1ffc, 8, abi.FLAG_READ)], page_align=True)
        r = mined.regions[0]
        assert r.base == 0x1000 and r.length == 0x2000

    def test_empty_records(self):
        mined = self._mine([])
        assert mined.regions == [] and mined.observed_accesses == 0

    def test_mined_policy_always_covers_observations(self):
        records = [
            (0x1000 + i * 24, 8, abi.FLAG_READ if i % 2 else abi.FLAG_WRITE)
            for i in range(40)
        ]
        mined = self._mine(records, max_regions=4)
        for addr, size, flags in records:
            assert mined.covers(addr, size, flags)

    def test_describe(self):
        mined = self._mine([(0x1000, 8, abi.FLAG_READ)])
        assert "1 regions" in mined.describe()


class TestEndToEnd:
    def test_audit_mine_enforce_cycle(self):
        """The full workflow on the real driver: audit a workload, mine a
        policy, replay under enforcement with zero violations, and verify
        untouched memory is now firewalled."""
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        miner = PolicyMiner(system.policy, max_regions=16)
        with miner:
            system.blast(size=128, count=40)
        assert miner.records, "audit saw no guard traffic"
        mined = miner.mine(page_align=True)
        assert 1 <= len(mined.regions) <= 16

        mined.install(system.policy_manager)
        # Replay: zero violations under default-deny enforcement.
        denied_before = system.guard_stats()["denied"]
        result = system.blast(size=128, count=40)
        assert result.errors == 0
        assert system.guard_stats()["denied"] == denied_before

        # Memory the driver never touches is firewalled now.
        from repro.core.pipeline import CompileOptions, compile_module

        rogue = compile_module(
            "__export long peek(long a) { return *(long *)a; }",
            CompileOptions(module_name="peeker", key=system.signing_key),
        )
        loaded = system.kernel.insmod(rogue)
        untouched = system.kernel.kmalloc_allocator.kmalloc(4096)
        # (kmalloc may land inside a mined page; pick a far direct-map spot)
        far = untouched + (64 << 20) - (64 << 20) // 2
        from repro.kernel import layout

        probe = layout.direct_map_address(48 << 20)
        if not mined.covers(probe, 8, abi.FLAG_READ):
            with pytest.raises(KernelPanic):
                system.kernel.run_function(loaded, "peek", [probe])

    def test_miner_restores_enforcement(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        assert system.policy.enforce is True
        with PolicyMiner(system.policy) as miner:
            assert system.policy.enforce is False
            system.blast(size=128, count=2)
        assert system.policy.enforce is True

    def test_double_start_rejected(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        miner = PolicyMiner(system.policy)
        miner.start()
        with pytest.raises(RuntimeError):
            miner.start()
        miner.stop()
        miner.stop()  # idempotent

    def test_reset(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        with PolicyMiner(system.policy) as miner:
            system.blast(size=128, count=2)
        miner.reset()
        assert miner.records == []

    def test_bad_budget(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        with pytest.raises(ValueError):
            PolicyMiner(system.policy, max_regions=0)
