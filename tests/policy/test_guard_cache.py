"""The guard-decision cache: epoch-keyed memoization of policy checks.

The policy module may memoize ``index.check`` results only for indexes
declaring ``pure_check`` (the linear table and the sorted index); the
splay tree and the one-entry-cache index mutate on lookup, so caching
their decisions would change the structures' observable state.  Any
region mutation bumps the index ``epoch`` and must invalidate every
cached decision, and the cached path must report the same ``(allowed,
scanned)`` pair — and therefore the same stats and guard cycle costs —
as the uncached one.
"""

from __future__ import annotations

import pytest

from repro import abi
from repro.kernel import Kernel
from repro.policy import CaratPolicyModule
from repro.policy.region import Region
from repro.policy.structures import (
    CachedIndex,
    SortedRegionIndex,
    SplayRegionIndex,
)
from repro.policy.table import RegionTable
from repro.vm import GuardViolation

RW = abi.FLAG_READ | abi.FLAG_WRITE


def _policy(index=None, enforce=False):
    kernel = Kernel()
    policy = CaratPolicyModule(kernel, index=index, enforce=enforce).install()
    return policy


def test_repeat_checks_hit_the_cache():
    policy = _policy()
    policy.index.add(Region(0x1000, 0x1000, RW))
    for _ in range(5):
        policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    stats = policy.stats.as_dict()
    assert stats["guard_cache_misses"] == 1
    assert stats["guard_cache_hits"] == 4
    assert stats["checks"] == 5
    # Every check reports the real scan depth, cached or not.
    assert stats["entries_scanned"] == 5


def test_mutation_invalidates_via_epoch():
    policy = _policy()
    table = policy.index
    table.add(Region(0x1000, 0x1000, RW))
    assert policy._guard(None, 0x1800, 8, abi.FLAG_READ) == 1
    # Adding a second region bumps the epoch: the next guard re-checks.
    table.add(Region(0x8000, 0x1000, RW))
    assert policy._guard(None, 0x1800, 8, abi.FLAG_READ) == 1
    assert policy.stats.guard_cache_misses == 2
    assert policy.stats.guard_cache_hits == 0
    # Removal invalidates too — and the decision actually changes.
    table.remove(0x1000, 0x1000)
    allowed_before = policy.stats.allowed
    policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    assert policy.stats.allowed == allowed_before  # now denied (audit mode)
    assert policy.stats.denied == 1
    table.clear()
    policy._guard(None, 0x9999, 1, abi.FLAG_READ)
    assert policy.stats.guard_cache_misses == 4


def test_default_allow_flip_invalidates():
    policy = _policy()
    table = policy.index
    policy._guard(None, 0x4000, 8, abi.FLAG_READ)
    assert policy.stats.denied == 1
    # Flipping the default does not move the epoch, but the cache keys on
    # (epoch, default_allow) and must still notice.
    table.default_allow = True
    policy._guard(None, 0x4000, 8, abi.FLAG_READ)
    assert policy.stats.allowed == 1
    assert policy.stats.guard_cache_misses == 2


@pytest.mark.parametrize(
    "make_index",
    [SplayRegionIndex, lambda: CachedIndex(SortedRegionIndex())],
    ids=["splay", "cached"],
)
def test_impure_indexes_bypass_the_cache(make_index):
    policy = _policy(index=make_index())
    policy.index.add(Region(0x1000, 0x1000, RW))
    for _ in range(5):
        policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    assert policy.stats.guard_cache_hits == 0
    assert policy.stats.guard_cache_misses == 0
    assert policy.stats.checks == 5


def test_pure_sorted_index_is_cached():
    policy = _policy(index=SortedRegionIndex())
    policy.index.add(Region(0x1000, 0x1000, RW))
    for _ in range(3):
        policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    assert policy.stats.guard_cache_hits == 2


def test_cached_denial_still_panics_when_enforcing():
    policy = _policy(enforce=True)
    policy.index.add(Region(0x1000, 0x1000, RW))
    with pytest.raises(GuardViolation):
        policy._guard(None, 0xDEAD0000, 8, abi.FLAG_WRITE)
    with pytest.raises(GuardViolation):
        policy._guard(None, 0xDEAD0000, 8, abi.FLAG_WRITE)
    # The second denial came from the cache but panics identically.
    assert policy.stats.guard_cache_hits == 1
    assert policy.stats.denied == 2
    assert len([m for m in policy.kernel.dmesg_log if "DENY" in m]) == 2


def test_per_module_indexes_get_separate_caches():
    policy = _policy()
    policy.index.add(Region(0x1000, 0x1000, RW))
    other = RegionTable(default_allow=True)
    policy.module_indexes["special"] = other
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "e1000e")
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "special")
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "e1000e")
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "special")
    stats = policy.stats.as_dict()
    # One miss per index, then hits — alternating indexes re-binds the
    # one-entry memo but must not cross-contaminate the caches.
    assert stats["guard_cache_misses"] == 2
    assert stats["guard_cache_hits"] == 2


def test_stats_dict_exposes_cache_counters():
    policy = _policy()
    d = policy.stats.as_dict()
    assert "guard_cache_hits" in d and "guard_cache_misses" in d


def test_enforcement_mode_change_invalidates():
    """Satellite regression: switching the enforcement mode bumps the
    enforce epoch, so cached decisions never outlive a mode change."""
    from repro.policy import MODE_EJECT

    policy = _policy()
    policy.index.add(Region(0x1000, 0x1000, RW))
    for _ in range(3):
        policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    assert policy.stats.guard_cache_hits == 2
    policy.set_mode(MODE_EJECT)
    policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    # The first guard after the switch re-checks (miss), not a stale hit.
    assert policy.stats.guard_cache_misses == 2
    assert policy.stats.guard_cache_hits == 2
    # ...and subsequent guards cache again under the new epoch.
    policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    assert policy.stats.guard_cache_hits == 3


def test_per_module_mode_override_invalidates():
    from repro.policy import MODE_ISOLATE

    policy = _policy()
    policy.index.add(Region(0x1000, 0x1000, RW))
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "e1000e")
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "e1000e")
    assert policy.stats.guard_cache_hits == 1
    policy.set_module_mode("e1000e", MODE_ISOLATE)
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "e1000e")
    assert policy.stats.guard_cache_misses == 2
    # Clearing the override is a change too.
    policy.set_module_mode("e1000e", None)
    policy._guard(None, 0x1800, 8, abi.FLAG_READ, "e1000e")
    assert policy.stats.guard_cache_misses == 3


def test_noop_mode_set_does_not_invalidate():
    policy = _policy()
    policy.index.add(Region(0x1000, 0x1000, RW))
    policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    policy.set_mode(policy.mode)  # same mode: no epoch bump
    policy.enforce = policy.enforce  # same legacy flag: no bump either
    policy._guard(None, 0x1800, 8, abi.FLAG_READ)
    assert policy.stats.guard_cache_misses == 1
    assert policy.stats.guard_cache_hits == 1


def test_cached_denial_faults_in_eject_mode():
    """A cache-hit denial raises the catchable fault, not the panic."""
    from repro.kernel import ViolationFault
    from repro.policy import MODE_EJECT

    policy = _policy()
    policy.set_mode(MODE_EJECT)
    policy.index.add(Region(0x1000, 0x1000, RW))
    for _ in range(2):
        with pytest.raises(ViolationFault) as ei:
            policy._guard(None, 0xDEAD0000, 8, abi.FLAG_WRITE, "mod")
        assert ei.value.action == MODE_EJECT
        assert ei.value.module_name == "mod"
    assert policy.stats.guard_cache_hits == 1
    assert policy.kernel.panicked is None
    assert policy.violations["mod"] == 2
