"""Per-module policy tables (paper §5 direction): one module's firewall
must not loosen — or tighten — another's."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel import KernelPanic, layout

# No __export: run_function reaches internal functions, and two copies of
# this module can coexist without kernel symbol collisions.
PEEKER = """
long peek(long a) { return *(long *)a; }
long poke(long a, long v) { *(long *)a = v; return v; }
"""


@pytest.fixture()
def system():
    return CaratKopSystem(SystemConfig(machine=None, protect=True))


def load(system, name):
    compiled = compile_module(
        PEEKER, CompileOptions(module_name=name, key=system.signing_key)
    )
    return system.kernel.insmod(compiled)


class TestPerModulePolicies:
    def test_private_table_overrides_global(self, system):
        kernel = system.kernel
        sandboxed = load(system, "sandboxed")
        target = kernel.kmalloc_allocator.kmalloc(64)
        # Global policy allows the whole kernel half; the sandboxed module
        # gets a private table WITHOUT that allowance.
        system.policy_manager.add_region_for("sandboxed", target, 8, 0x1)
        # Reads inside its one allowed window work…
        kernel.address_space.write_int(target, 8, 7)
        assert kernel.run_function(sandboxed, "peek", [target]) == 7
        # …anything else — even addresses the GLOBAL policy allows — dies.
        other = kernel.kmalloc_allocator.kmalloc(64)
        with pytest.raises(KernelPanic):
            kernel.run_function(sandboxed, "peek", [other])

    def test_other_modules_keep_global_policy(self, system):
        kernel = system.kernel
        load(system, "sandboxed")
        free_roamer = load(system, "roamer")
        system.policy_manager.add_region_for("sandboxed", 0x1000, 8, 0x1)
        spot = kernel.kmalloc_allocator.kmalloc(64)
        kernel.address_space.write_int(spot, 8, 99)
        # The roamer still enjoys the global two-region policy.
        assert kernel.run_function(free_roamer, "peek", [spot]) == 99

    def test_driver_unaffected_by_sibling_sandbox(self, system):
        system.policy_manager.add_region_for("sandboxed", 0x1000, 8, 0x1)
        result = system.blast(size=128, count=20)
        assert result.errors == 0

    def test_clear_module_policy_reverts_to_global(self, system):
        kernel = system.kernel
        sandboxed = load(system, "sandboxed")
        spot = kernel.kmalloc_allocator.kmalloc(64)
        system.policy_manager.add_region_for("sandboxed", 0x2000, 8, 0x1)
        with pytest.raises(KernelPanic):
            kernel.run_function(sandboxed, "peek", [spot])
        system.policy_manager.clear_module_policy("sandboxed")
        kernel.address_space.write_int(spot, 8, 123)
        assert kernel.run_function(sandboxed, "peek", [spot]) == 123

    def test_write_vs_read_in_private_table(self, system):
        kernel = system.kernel
        sandboxed = load(system, "sandboxed")
        target = kernel.kmalloc_allocator.kmalloc(64)
        system.policy_manager.add_region_for("sandboxed", target, 64, 0x1)
        assert kernel.run_function(sandboxed, "peek", [target]) == 0
        with pytest.raises(KernelPanic):
            kernel.run_function(sandboxed, "poke", [target, 1])

    def test_name_length_validated(self, system):
        with pytest.raises(ValueError):
            system.policy_manager.add_region_for("x" * 40, 0, 8, 1)

    def test_bad_payload_size(self, system):
        from repro.kernel import IoctlError
        from repro.policy import module as pm

        with pytest.raises(IoctlError):
            system.kernel.devices.ioctl(
                pm.DEVICE_PATH, pm.CMD_ADD_REGION_FOR, b"short", uid=0
            )
