"""Interpreter semantics tests at the IR level (not through the C front
end): exact integer behaviour, memory, control flow, call dispatch."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.ir import (
    Function,
    FunctionType,
    I1,
    I8,
    I32,
    I64,
    IRBuilder,
    Module,
    VOID,
    ptr,
)
from repro.kernel import Kernel, KernelPanic
from repro.kernel.module_loader import CompiledModule
from repro.vm.interp import InterpreterError
from repro.passes import AttestationPass, PassManager
from repro.signing import SigningKey


def load_ir(kernel: Kernel, module: Module):
    PassManager([AttestationPass()]).run(module)
    return kernel.insmod(CompiledModule(ir=module))


def run_binop(kernel, op, a, b, t=I64):
    m = Module(f"bin_{op}_{a}_{b}")
    fn = Function("f", FunctionType(t, [t, t]), ["a", "b"])
    m.add_function(fn)
    bld = IRBuilder(fn.add_block("entry"))
    bld.ret(bld.binop(op, fn.args[0], fn.args[1]))
    loaded = load_ir(kernel, m)
    return kernel.run_function(loaded, "f", [a, b])


class TestIntegerOps:
    def test_add_wraps(self, kernel):
        assert run_binop(kernel, "add", (1 << 64) - 1, 1) == 0

    def test_sub_wraps(self, kernel):
        assert run_binop(kernel, "sub", 0, 1) == (1 << 64) - 1

    def test_mul_wraps(self, kernel):
        assert run_binop(kernel, "mul", 1 << 33, 1 << 33) == 0

    def test_sdiv_truncates_toward_zero(self, kernel):
        minus7 = (1 << 64) - 7
        assert kernel and run_binop(kernel, "sdiv", minus7, 2) == (1 << 64) - 3

    def test_udiv(self, kernel):
        assert run_binop(kernel, "udiv", (1 << 64) - 2, 2) == (1 << 63) - 1

    def test_srem_sign(self, kernel):
        minus7 = (1 << 64) - 7
        assert run_binop(kernel, "srem", minus7, 3) == (1 << 64) - 1

    def test_urem(self, kernel):
        assert run_binop(kernel, "urem", 10, 3) == 1

    def test_division_by_zero_panics(self, kernel):
        with pytest.raises(KernelPanic, match="divide error"):
            run_binop(kernel, "sdiv", 1, 0)

    def test_urem_by_zero_panics(self, kernel):
        with pytest.raises(KernelPanic, match="divide error"):
            run_binop(kernel, "urem", 1, 0)

    def test_shift_amount_masked(self, kernel):
        # x86 semantics: shift amount taken mod width.
        assert run_binop(kernel, "shl", 1, 64) == 1
        assert run_binop(kernel, "shl", 1, 65) == 2

    def test_ashr_sign_extends(self, kernel):
        neg = (1 << 64) - 8
        assert run_binop(kernel, "ashr", neg, 1) == (1 << 64) - 4

    def test_lshr_zero_fills(self, kernel):
        assert run_binop(kernel, "lshr", 1 << 63, 63) == 1

    def test_i8_ops_wrap_at_8_bits(self, kernel):
        assert run_binop(kernel, "add", 0xFF, 1, t=I8) == 0


class TestCastsAndSelect:
    def test_sext_trunc_zext(self, kernel):
        m = Module("casts")
        fn = Function("f", FunctionType(I64, [I8]), ["x"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        wide = b.cast("sext", fn.args[0], I64)
        narrow = b.cast("trunc", wide, I32)
        back = b.cast("zext", narrow, I64)
        b.ret(back)
        loaded = load_ir(kernel, m)
        # 0x80 as i8 = -128; sext to -128; trunc keeps 0xFFFFFF80; zext.
        assert kernel.run_function(loaded, "f", [0x80]) == 0xFFFFFF80

    def test_select(self, kernel):
        m = Module("sel")
        fn = Function("f", FunctionType(I64, [I64, I64, I64]), ["c", "a", "b"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        cond = b.icmp("ne", fn.args[0], b.const_i64(0))
        b.ret(b.select(cond, fn.args[1], fn.args[2]))
        loaded = load_ir(kernel, m)
        assert kernel.run_function(loaded, "f", [1, 10, 20]) == 10
        assert kernel.run_function(loaded, "f", [0, 10, 20]) == 20

    def test_float_roundtrip(self, kernel):
        from repro.ir import F64

        m = Module("flt")
        fn = Function("f", FunctionType(I64, [I64]), ["x"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        fv = b.cast("sitofp", fn.args[0], F64)
        doubled = b.binop("fmul", fv, b.const_float(F64, 2.5))
        b.ret(b.cast("fptosi", doubled, I64))
        loaded = load_ir(kernel, m)
        assert kernel.run_function(loaded, "f", [4]) == 10


class TestMemoryAndStack:
    def test_alloca_load_store(self, kernel):
        m = Module("mem")
        fn = Function("f", FunctionType(I64, [I64]), ["v"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I64)
        b.store(fn.args[0], slot)
        b.ret(b.load(slot))
        loaded = load_ir(kernel, m)
        assert kernel.run_function(loaded, "f", [987654321]) == 987654321

    def test_stack_frames_released(self, kernel):
        # Deep repeated calls must not leak stack space.
        m = Module("stack")
        fn = Function("f", FunctionType(I64, []), [])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I64, count=512)
        b.store(b.const_i64(1), slot)
        b.ret(b.load(slot))
        loaded = load_ir(kernel, m)
        for _ in range(100):
            assert kernel.run_function(loaded, "f", []) == 1

    def test_recursion_depth_limit_panics(self, kernel):
        src = "__export long f(long n) { return f(n + 1); }"
        compiled = compile_module(
            src, CompileOptions(module_name="rec", protect=False)
        )
        loaded = kernel.insmod(compiled)
        with pytest.raises(KernelPanic, match="stack overflow"):
            kernel.run_function(loaded, "f", [0])

    def test_wild_pointer_faults(self, kernel):
        src = "__export long f(long a) { long *p = (long *)a; return *p; }"
        compiled = compile_module(
            src, CompileOptions(module_name="wild", protect=False)
        )
        loaded = kernel.insmod(compiled)
        from repro.kernel import MemoryFault

        with pytest.raises(MemoryFault):
            kernel.run_function(loaded, "f", [0xDEAD_BEEF_0000])


class TestControlFlowAndPhis:
    def test_loop_phi_swap(self, kernel):
        """Parallel phi evaluation: (a, b) = (b, a) in a loop."""
        src = """
        __export long f(int n) {
            long a = 1;
            long b = 2;
            for (int i = 0; i < n; i++) {
                long t = a; a = b; b = t;
            }
            return a * 10 + b;
        }
        """
        compiled = compile_module(
            src, CompileOptions(module_name="swap", protect=False)
        )
        loaded = kernel.insmod(compiled)
        assert kernel.run_function(loaded, "f", [0]) == 12
        assert kernel.run_function(loaded, "f", [1]) == 21
        assert kernel.run_function(loaded, "f", [2]) == 12

    def test_unreachable_panics(self, kernel):
        m = Module("unr")
        fn = Function("f", FunctionType(VOID, []), [])
        m.add_function(fn)
        IRBuilder(fn.add_block("entry")).unreachable()
        loaded = load_ir(kernel, m)
        with pytest.raises(KernelPanic, match="unreachable"):
            kernel.run_function(loaded, "f", [])

    def test_inline_asm_panics_at_runtime(self, kernel):
        src = '__export int f(void) { __asm__("nop"); return 0; }'
        compiled = compile_module(
            src, CompileOptions(module_name="asmrun", protect=False)
        )
        loaded = kernel.insmod(compiled)
        with pytest.raises(KernelPanic, match="inline assembly"):
            kernel.run_function(loaded, "f", [])

    def test_switch_dispatch(self, kernel):
        m = Module("sw")
        fn = Function("f", FunctionType(I64, [I64]), ["x"])
        m.add_function(fn)
        entry = fn.add_block("entry")
        c10 = fn.add_block("c10")
        c20 = fn.add_block("c20")
        dflt = fn.add_block("dflt")
        b = IRBuilder(entry)
        b.switch(fn.args[0], dflt, [(10, c10), (20, c20)])
        b.position_at_end(c10)
        b.ret(b.const_i64(1))
        b.position_at_end(c20)
        b.ret(b.const_i64(2))
        b.position_at_end(dflt)
        b.ret(b.const_i64(0))
        loaded = load_ir(kernel, m)
        assert kernel.run_function(loaded, "f", [10]) == 1
        assert kernel.run_function(loaded, "f", [20]) == 2
        assert kernel.run_function(loaded, "f", [99]) == 0


class TestCallDispatch:
    def test_wrong_arity_raises(self, kernel, run_c):
        src = "__export long f(long a) { return a; }"
        compiled = compile_module(
            src, CompileOptions(module_name="ar", protect=False)
        )
        loaded = kernel.insmod(compiled)
        with pytest.raises(InterpreterError, match="expected 1 args"):
            kernel.run_function(loaded, "f", [1, 2])

    def test_calling_declaration_directly_raises(self, kernel):
        kernel.export_native("ext", lambda ctx: None)
        m = Module("dec")
        m.declare_function("ext", FunctionType(VOID, []))
        loaded = load_ir(kernel, m)
        with pytest.raises(KeyError):
            loaded.function("ext")

    def test_guard_without_policy_module_panics(self, kernel, key):
        # A protected module loaded into a kernel with no carat_guard
        # exporter fails at link time — the paper's linking step.
        from repro.kernel import LoadError

        compiled = compile_module(
            "long g; __export void f(void) { g = 1; }",
            CompileOptions(module_name="orphan", protect=True),
        )
        with pytest.raises(LoadError, match="unresolved symbol 'carat_guard'"):
            kernel.insmod(compiled)

    def test_instruction_counter_advances(self, kernel, run_c):
        before = kernel.vm.instructions_executed
        run_c("__export long f(void) { return 1 + 2; }", "f")
        assert kernel.vm.instructions_executed > before
