"""Machine models and cycle accounting."""

import pytest

from repro.vm import CycleCounter, MachineModel, get_machine, r350, r415


class TestMachineModels:
    def test_registry(self):
        assert get_machine("r350").freq_hz == 2.8e9
        assert get_machine("R415").freq_hz == 2.2e9
        with pytest.raises(ValueError):
            get_machine("cray1")

    def test_r415_is_slower_per_op(self):
        old, new = r415(), r350()
        assert old.op_cost("binop") > new.op_cost("binop")
        assert old.guard_base_cycles > new.guard_base_cycles
        assert old.guard_entry_cycles > new.guard_entry_cycles

    def test_guard_cost_scales_with_entries(self):
        m = r350()
        assert m.guard_cost(64) > m.guard_cost(1) > 0

    def test_seconds_conversion(self):
        m = r350()
        assert m.seconds(2.8e9) == pytest.approx(1.0)
        assert m.cycles_for_us(1.0) == pytest.approx(2800.0)

    def test_unknown_opcode_costs_default(self):
        assert r350().op_cost("mystery") == 1.0

    def test_paper_machine_identities(self):
        assert "R415" in r415().name and "AMD" in r415().name
        assert "R350" in r350().name and "Xeon" in r350().name


class TestCycleCounter:
    def test_accumulates_ops(self):
        c = CycleCounter(r350())
        c.add_op("binop")
        c.add_op("load")
        assert c.instructions == 2
        assert c.cycles == pytest.approx(
            r350().op_cost("binop") + r350().op_cost("load")
        )

    def test_guard_accounting(self):
        m = r350()
        c = CycleCounter(m)
        c.add_guard(2)
        c.add_guard(64)
        assert c.guards == 2
        assert c.guard_entries_scanned == 66
        assert c.cycles == pytest.approx(m.guard_cost(2) + m.guard_cost(64))

    def test_mmio_accounting(self):
        m = r350()
        c = CycleCounter(m)
        c.add_mmio_read()
        c.add_mmio_write()
        assert c.mmio_reads == 1 and c.mmio_writes == 1
        assert c.cycles == m.mmio_read_cycles + m.mmio_write_cycles

    def test_delay(self):
        m = r350()
        c = CycleCounter(m)
        c.add_delay_us(10)
        assert c.cycles == pytest.approx(m.cycles_for_us(10))

    def test_snapshot_delta(self):
        c = CycleCounter(r350())
        c.add_op("binop")
        snap = c.snapshot()
        c.add_op("binop")
        c.add_guard(1)
        d = c.delta_since(snap)
        assert d["instructions"] == 1
        assert d["guards"] == 1
        assert d["cycles"] > 0

    def test_reset(self):
        c = CycleCounter(r350())
        c.add_op("load")
        c.reset()
        assert c.cycles == 0 and c.instructions == 0


class TestTimedExecution:
    def test_guard_cycles_charged_per_policy_scan(self):
        """End to end: with n regions, guard cost reflects entries scanned."""
        from repro.core.system import CaratKopSystem, SystemConfig

        costs = {}
        for n in (2, 64):
            sys_ = CaratKopSystem(SystemConfig(machine="r350", regions=n))
            t = sys_.kernel.vm.timing
            before = t.snapshot()
            sys_.blast(size=128, count=30)
            d = t.delta_since(before)
            costs[n] = d["guard_entries_scanned"] / d["guards"]
        assert costs[64] > costs[2] * 10

    def test_untimed_kernel_has_no_counter(self):
        from repro.core.system import CaratKopSystem, SystemConfig

        sys_ = CaratKopSystem(SystemConfig(machine=None))
        assert sys_.kernel.vm.timing is None
        result = sys_.blast(size=128, count=5)
        assert result.throughput_pps == 0.0  # no clock, no rate
        assert sys_.sink.packets == 5
