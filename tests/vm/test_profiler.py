"""Execution-profiler tests."""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel import layout
from repro.vm import Profiler


@pytest.fixture()
def profiled_system():
    system = CaratKopSystem(SystemConfig(machine="r350", protect=True))
    profiler = Profiler()
    system.kernel.vm.profiler = profiler
    return system, profiler


class TestProfiler:
    def test_per_function_attribution(self, profiled_system):
        system, profiler = profiled_system
        system.blast(size=128, count=20)
        names = set(profiler.functions)
        assert "e1000e_xmit_frame" in names
        assert "tx_fill_desc" in names
        xmit = profiler.functions["e1000e_xmit_frame"]
        assert xmit.calls == 20
        assert xmit.instructions > 0

    def test_guard_attribution(self, profiled_system):
        system, profiler = profiled_system
        system.blast(size=128, count=10)
        fill = profiler.functions["tx_fill_desc"]
        assert fill.guards >= 70  # 7 descriptor stores x 10 packets
        assert fill.stores >= 70

    def test_totals_match_policy_stats_delta(self, profiled_system):
        system, profiler = profiled_system
        before = system.guard_stats()["checks"]  # probe-time checks
        system.blast(size=128, count=10)
        assert profiler.total_guards() == system.guard_stats()["checks"] - before

    def test_cycles_accumulate_with_machine(self, profiled_system):
        system, profiler = profiled_system
        system.blast(size=128, count=5)
        assert all(p.cycles > 0 for p in profiler.functions.values()
                   if p.instructions)

    def test_guard_page_histogram(self, profiled_system):
        system, profiler = profiled_system
        system.blast(size=128, count=10)
        pages = dict(profiler.hottest_pages(20))
        # The TX descriptor ring page must be among the hottest.
        ring_stat = system.netdev.read_reg(0x3800)  # TDBAL
        ring_page = (layout.direct_map_address(ring_stat)) >> layout.PAGE_SHIFT
        assert any(abs(p - ring_page) <= 1 for p in pages)

    def test_hottest_ordering(self, profiled_system):
        system, profiler = profiled_system
        system.blast(size=128, count=10)
        hot = profiler.hottest(by="instructions", top=3)
        assert hot[0].instructions >= hot[-1].instructions

    def test_report_renders(self, profiled_system):
        system, profiler = profiled_system
        system.blast(size=128, count=5)
        text = profiler.report()
        assert "e1000e_xmit_frame" in text
        assert "guard-hot pages:" in text

    def test_reset(self, profiled_system):
        system, profiler = profiled_system
        system.blast(size=128, count=2)
        profiler.reset()
        assert profiler.functions == {} and profiler.guard_pages == {}

    def test_profiler_without_machine_model(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        profiler = Profiler()
        system.kernel.vm.profiler = profiler
        system.blast(size=128, count=3)
        xmit = profiler.functions["e1000e_xmit_frame"]
        assert xmit.instructions > 0
        assert xmit.cycles == 0.0  # no machine: cycle column stays zero

    def test_profiler_off_by_default(self):
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        assert system.kernel.vm.profiler is None
