"""Differential tests: the compiled engine against the reference interpreter.

The compiled engine's contract is *bit-identical* observable behaviour:
return values, memory, cycle accounting (float addition must not be
reassociated), guard statistics, profiler traces, and dmesg — across
normal execution and panics.  Every test here runs the same workload
under both engines and compares the full observable state.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel import Kernel
from repro.kernel.panic import KernelPanic
from repro.vm import Profiler, get_machine

# ---------------------------------------------------------------------------
# mini-C program bank: each entry is (source, [(fn, args), ...]) and is run
# identically under both engines.

U64 = (1 << 64) - 1

PROGRAMS = [
    # arithmetic breadth: wrap, signed/unsigned div/rem, shifts, compares
    (
        """
        __export long mix(long a, long b) {
            long s = a + b * 3 - (a ^ b);
            s = s | (a & b);
            return (s << 2) >> 1;
        }
        __export long sdivrem(long a, long b) { return a / b + a % b; }
        __export unsigned long udivrem(unsigned long a, unsigned long b) {
            return a / b + a % b;
        }
        __export int cmps(int a, int b) {
            return (a < b) + (a <= b) * 2 + (a > b) * 4 + (a >= b) * 8
                 + (a == b) * 16 + (a != b) * 32;
        }
        __export unsigned int ucmp(unsigned int a, unsigned int b) {
            return (a < b) + (a > b) * 2;
        }
        __export int narrow(int a) { return a + 1; }
        __export int sar(int a) { return a >> 3; }
        """,
        [
            ("mix", (7, 3)),
            ("mix", ((-9) % (1 << 64), 1234567)),
            ("sdivrem", ((-7) % (1 << 64), 2)),
            ("sdivrem", (7, (-2) % (1 << 64))),
            ("udivrem", ((1 << 64) - 8, 3)),
            ("cmps", ((-1) % (1 << 32), 1)),
            ("cmps", (5, 5)),
            ("ucmp", (0xFFFFFFFF, 1)),
            ("narrow", (0x7FFFFFFF,)),
            ("sar", ((-64) % (1 << 32),)),
        ],
    ),
    # control flow: loops (phis), nested ifs, switch, early return
    (
        """
        __export long fib(long n) {
            long a = 0; long b = 1;
            for (long i = 0; i < n; i = i + 1) {
                long t = a + b; a = b; b = t;
            }
            return a;
        }
        __export long collatz(long n) {
            long steps = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                steps = steps + 1;
            }
            return steps;
        }
        __export int dispatch(int k) {
            switch (k) {
                case 0: return 10;
                case 1: return 20;
                case 7: return 70;
                default: return -1;
            }
        }
        """,
        [
            ("fib", (30,)),
            ("collatz", (27,)),
            ("dispatch", (0,)),
            ("dispatch", (7,)),
            ("dispatch", (42,)),
        ],
    ),
    # memory: globals, arrays, pointer arithmetic, mixed widths
    (
        """
        int counter;
        long table[16];
        __export long fill(long n) {
            for (long i = 0; i < n; i = i + 1) {
                table[i] = i * i + counter;
                counter = counter + 1;
            }
            long sum = 0;
            for (long i = 0; i < n; i = i + 1) { sum = sum + table[i]; }
            return sum;
        }
        __export int bytes(void) {
            char buf[8];
            for (int i = 0; i < 8; i = i + 1) { buf[i] = i * 31; }
            int acc = 0;
            for (int i = 0; i < 8; i = i + 1) { acc = acc + buf[i]; }
            return acc;
        }
        """,
        [("fill", (16,)), ("fill", (4,)), ("bytes", ())],
    ),
    # calls: recursion, helpers, void returns
    (
        """
        long helper(long x) { return x * 2 + 1; }
        __export long ack(long m, long n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        __export long chain(long x) {
            return helper(helper(helper(x)));
        }
        """,
        [("ack", (2, 3)), ("chain", (5,))],
    ),
    # floats: arithmetic, compares, conversions, f32 narrowing
    (
        """
        __export double fma(double a, double b, double c) {
            return a * b + c;
        }
        __export int fcmp(double a, double b) {
            return (a < b) + (a > b) * 2 + (a == b) * 4;
        }
        __export long roundtrip(long x) {
            double d = x;
            float f = d;
            double back = f;
            return back;
        }
        """,
        [
            ("fma", (1.5, 2.25, -0.75)),
            ("fcmp", (1.0, 2.0)),
            ("fcmp", (2.0, 2.0)),
            ("roundtrip", (123456789,)),
        ],
    ),
]


def _compile(source, *, protect=False, name="difftest"):
    return compile_module(
        source, CompileOptions(module_name=name, protect=protect)
    )


def _guard_stats(system):
    """Guard stats without the process-global translation-cache traffic
    (cache warmth differs between the engines by construction: the
    interpreter never compiles, and the second compiled system in a
    process hits what the first one missed)."""
    return {
        k: v for k, v in system.guard_stats().items()
        if not k.startswith("translation_")
    }


def _observe(kernel, extra=None):
    vm = kernel.vm
    state = {
        "instructions_executed": vm.instructions_executed,
        "guard_checks": vm.guard_checks,
        "timing": vm.timing.snapshot() if vm.timing is not None else None,
        "dmesg": kernel.dmesg_log,
        "panicked": kernel.panicked,
    }
    if extra:
        state.update(extra)
    return state


def _run_bank(engine, source, calls, *, machine=None, profiler=False):
    kernel = Kernel(machine=machine, engine=engine)
    prof = None
    if profiler:
        prof = Profiler()
        kernel.vm.profiler = prof
    compiled = _compile(source)
    loaded = kernel.insmod(compiled)
    results = []
    for fn, args in calls:
        results.append(kernel.run_function(loaded, fn, list(args)))
    return _observe(
        kernel,
        {
            "results": results,
            "profile": prof.report(top=50) if prof is not None else None,
        },
    )


@pytest.mark.parametrize("machine", [None, "r350", "r415"])
@pytest.mark.parametrize("bank", range(len(PROGRAMS)))
def test_program_bank_identical(bank, machine):
    source, calls = PROGRAMS[bank]
    model = get_machine(machine) if machine else None
    a = _run_bank("interp", source, calls, machine=model)
    b = _run_bank("compiled", source, calls, machine=model)
    assert a == b


def test_profiler_traces_identical():
    source, calls = PROGRAMS[1]
    model = get_machine("r415")
    a = _run_bank("interp", source, calls, machine=model, profiler=True)
    b = _run_bank("compiled", source, calls, machine=model, profiler=True)
    assert a == b
    assert a["profile"]  # the trace is non-empty, not trivially equal


# ---------------------------------------------------------------------------
# panic parity: the engines must agree on everything observable *after* an
# execution error too — message, dmesg, and instruction counts.


def _run_panicking(engine, source, fn, args):
    kernel = Kernel(machine=get_machine("r350"), engine=engine)
    loaded = kernel.insmod(_compile(source))
    try:
        kernel.run_function(loaded, fn, list(args))
        raised = None
    except KernelPanic as e:
        raised = str(e)
    return _observe(kernel, {"raised": raised})


@pytest.mark.parametrize(
    "source,fn,args",
    [
        ("__export long f(long a) { return a / 0; }", "f", (7,)),
        (
            "__export long f(long n) { return n == 0 ? 1 : f(n - 1); }",
            "f",
            (1 << 30,),  # kernel stack overflow via unbounded recursion
        ),
    ],
)
def test_panic_parity(source, fn, args):
    a = _run_panicking("interp", source, fn, args)
    b = _run_panicking("compiled", source, fn, args)
    assert a == b
    assert a["raised"] is not None


# ---------------------------------------------------------------------------
# the paper workload: the guarded e1000e driver moving real frames.  This is
# the Figure 3 hot path — RX/TX rings, MMIO, guards, the policy module.


def _blast_state(engine, *, machine, protect, count=250, size=128):
    system = CaratKopSystem(
        SystemConfig(machine=machine, protect=protect, engine=engine)
    )
    result = system.blast(size=size, count=count)
    vm = system.kernel.vm
    return _observe(
        system.kernel,
        {
            "sent": result.packets_sent,
            "errors": result.errors,
            "stalls": result.stalls,
            "total_cycles": result.total_cycles,
            "pps": result.throughput_pps,
            "guard_stats": _guard_stats(system),
        },
    )


@pytest.mark.parametrize("protect", [True, False])
@pytest.mark.parametrize("machine", ["r350", "r415"])
def test_e1000e_blast_identical(machine, protect):
    a = _blast_state("interp", machine=machine, protect=protect)
    b = _blast_state("compiled", machine=machine, protect=protect)
    assert a == b
    assert a["sent"] > 0


# ---------------------------------------------------------------------------
# eject-mode parity: a guard denial in eject mode unwinds, rolls back the
# offender, and quarantines it — the engines must agree on every observable
# *after* the ejection too: RAM contents, cycles, dmesg, guard stats, the
# module table, the quarantine list, and the journal.


def _ram_digest(kernel):
    import hashlib

    h = hashlib.sha256()
    for pfn in sorted(kernel.ram._pages):
        h.update(pfn.to_bytes(8, "little"))
        h.update(bytes(kernel.ram._pages[pfn]))
    return h.hexdigest()


EJECT_PROGRAMS = [
    # state-heavy offender: kmalloc + globals live when the guard trips
    (
        """
        extern void *kmalloc(long size, int flags);
        long *buf;
        long acc;
        int init_module(void) {
            buf = (long *)kmalloc(512, 0);
            if (buf == null) { return -1; }
            buf[0] = 99;
            acc = 7;
            return 0;
        }
        __export long poke(long addr) {
            acc = acc + 1;
            *(long *)addr = acc;
            return acc;
        }
        """,
        [("poke", (0x2000,))],
    ),
    # violation from a nested helper call: the fault unwinds two frames
    (
        """
        long depth;
        long smash(long addr) { depth = depth + 1; *(long *)addr = 1; return depth; }
        __export long outer(long addr) { depth = 10; return smash(addr); }
        """,
        [("outer", (0x3000,))],
    ),
    # a clean call after the ejection: entry refusal parity (-EACCES)
    (
        """
        __export long ok(void) { return 5; }
        __export long bad(long addr) { return *(long *)addr; }
        """,
        [("ok", ()), ("bad", (0x4000,)), ("ok", ())],
    ),
]


def _run_eject(engine, source, calls, *, machine="r350"):
    system = CaratKopSystem(SystemConfig(
        machine=machine, protect=True, engine=engine, enforce_mode="eject",
    ))
    kernel = system.kernel
    compiled = compile_module(source, CompileOptions(
        module_name="offender", key=system.signing_key))
    loaded = kernel.insmod(compiled)
    results = [kernel.run_function(loaded, fn, list(args))
               for fn, args in calls]
    return _observe(
        kernel,
        {
            "results": results,
            "ram": _ram_digest(kernel),
            "lsmod": kernel.lsmod(),
            "ejected": loaded.ejected,
            "quarantined": kernel.quarantined(),
            "journal_depth": kernel.journal.depth("offender"),
            "rollbacks": kernel.journal.rollbacks,
            "violation_faults": kernel.violation_faults,
            "entry_refusals": kernel.entry_refusals,
            "guard_stats": _guard_stats(system),
        },
    )


@pytest.mark.parametrize("machine", [None, "r350"])
@pytest.mark.parametrize("bank", range(len(EJECT_PROGRAMS)))
def test_eject_mode_identical(bank, machine):
    source, calls = EJECT_PROGRAMS[bank]
    a = _run_eject("interp", source, calls, machine=machine)
    b = _run_eject("compiled", source, calls, machine=machine)
    assert a == b
    assert a["ejected"]
    assert a["lsmod"] == ["e1000e"]
    assert a["panicked"] is None
    assert a["journal_depth"] == 0


def test_isolate_mode_identical():
    a = _run_isolate("interp")
    b = _run_isolate("compiled")
    assert a == b
    assert a["isolated"] == ["offender"]


def _run_isolate(engine):
    system = CaratKopSystem(SystemConfig(
        machine="r415", protect=True, engine=engine, enforce_mode="isolate",
    ))
    kernel = system.kernel
    compiled = compile_module(
        "__export long bad(long a) { *(long *)a = 1; return 0; }",
        CompileOptions(module_name="offender", key=system.signing_key))
    loaded = kernel.insmod(compiled)
    results = [
        kernel.run_function(loaded, "bad", [0x5000]),
        kernel.run_function(loaded, "bad", [0x5000]),  # refused: isolated
    ]
    return _observe(
        kernel,
        {
            "results": results,
            "ram": _ram_digest(kernel),
            "lsmod": kernel.lsmod(),
            "isolated": kernel.isolated_modules(),
            "entry_refusals": kernel.entry_refusals,
            "guard_stats": _guard_stats(system),
        },
    )


# ---------------------------------------------------------------------------
# translation cache behaviour


def test_translations_cached_and_invalidated():
    source, calls = PROGRAMS[0]
    kernel = Kernel(engine="compiled")
    loaded = kernel.insmod(_compile(source))
    fn, args = calls[0]
    first = kernel.run_function(loaded, fn, list(args))
    store = loaded.translations[kernel.vm]
    cached = dict(store)
    assert cached  # populated by the first run
    assert kernel.run_function(loaded, fn, list(args)) == first
    assert dict(store) == cached  # reused, not retranslated
    loaded.invalidate_translations()
    assert not loaded.translations.get(kernel.vm)
    assert kernel.run_function(loaded, fn, list(args)) == first


def test_same_ir_reinsmod_uses_fresh_addresses():
    # Re-inserting the same CompiledModule yields the same IR function
    # objects at new global addresses; the L1 memo must not serve stale
    # translations for the old module instance.
    source = """
    long seed;
    __export long bump(long d) { seed = seed + d; return seed; }
    """
    compiled = _compile(source)
    kernel = Kernel(engine="compiled")
    first = kernel.insmod(compiled)
    assert kernel.run_function(first, "bump", [5]) == 5
    assert kernel.run_function(first, "bump", [2]) == 7
    kernel.rmmod(first.name)
    second = kernel.insmod(compiled)
    assert kernel.run_function(second, "bump", [3]) == 3
