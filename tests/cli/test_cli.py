"""CLI entry-point tests (caratcc, policy-manager, pktblast, bench)."""

import pytest

from repro.cli import bench_main, caratcc_main, pktblast_main, policy_manager_main

DRIVER_SNIPPET = """
extern void *kmalloc(long size, int flags);
long state;
__export long poke(long v) { state = v; return state; }
"""


@pytest.fixture()
def source_file(tmp_path):
    p = tmp_path / "mod.c"
    p.write_text(DRIVER_SNIPPET)
    return p


class TestCaratcc:
    def test_compile_to_stdout(self, source_file, capsys):
        rc = caratcc_main([str(source_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert 'module "mod"' in out
        assert "call.guard" in out
        assert "carat_guard" in out

    def test_no_protect(self, source_file, capsys):
        caratcc_main([str(source_file), "--no-protect"])
        out = capsys.readouterr().out
        assert "call.guard" not in out

    def test_output_file_roundtrips(self, source_file, tmp_path):
        out_path = tmp_path / "mod.ir"
        caratcc_main([str(source_file), "-o", str(out_path)])
        from repro.ir import parse_module, verify_module

        m = parse_module(out_path.read_text())
        verify_module(m)
        assert m.metadata["carat.guarded"] is True

    def test_stats_flag(self, source_file, capsys):
        caratcc_main([str(source_file), "--stats"])
        err = capsys.readouterr().err
        assert "guards:" in err and "source lines:" in err

    def test_custom_name(self, source_file, capsys):
        caratcc_main([str(source_file), "--name", "fancy"])
        assert 'module "fancy"' in capsys.readouterr().out

    def test_guard_intrinsics_flag(self, tmp_path, capsys):
        p = tmp_path / "msr.c"
        p.write_text(
            "extern void cli(void);\n__export void f(void) { cli(); }\n"
        )
        caratcc_main([str(p), "--guard-intrinsics"])
        assert "carat_intrinsic_guard" in capsys.readouterr().out


class TestPolicyManagerCLI:
    def test_lists_policy(self, capsys):
        rc = policy_manager_main(["--machine", "r350"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "/dev/carat" in out
        assert "0xffff800000000000" in out

    def test_stats_flag(self, capsys):
        policy_manager_main(["--show-stats", "--regions", "4"])
        out = capsys.readouterr().out
        assert "checks" in out


class TestPktblast:
    def test_blast_reports_throughput(self, capsys):
        rc = pktblast_main(["--count", "100", "--size", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "packets" in out and "pps" in out
        assert "carat" in out

    def test_baseline_flag(self, capsys):
        pktblast_main(["--count", "50", "--baseline"])
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "0 denied" in out

    def test_latency_flag(self, capsys):
        pktblast_main(["--count", "50", "--latency"])
        assert "median" in capsys.readouterr().out


class TestBenchCLI:
    def test_single_figure(self, capsys):
        rc = bench_main(["fig4", "--trials", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "reproduction:" in out

    def test_unknown_figure(self, capsys):
        assert bench_main(["fig99"]) == 2

    def test_markdown_summary(self, capsys):
        rc = bench_main(["fig4", "--trials", "9", "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| figure | paper claim |" in out
        assert "| fig4 |" in out


class TestPktblastProfile:
    def test_profile_flag(self, capsys):
        rc = pktblast_main(["--count", "30", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "e1000e_xmit_frame" in out
        assert "guard-hot pages:" in out
