"""Ring-buffer edge cases: overflow in both modes, lost accounting,
snapshot detachment — plus the aggregation primitives."""

import pytest

from repro.trace import CounterSet, GuardSiteStats, Log2Histogram, RingBuffer
from repro.trace.events import TraceEvent


def ev(i):
    return TraceEvent(i, float(i), "test:event", {"i": i}, None)


class TestOverwriteMode:
    def test_overflow_evicts_oldest(self):
        ring = RingBuffer(capacity=4, mode="overwrite")
        for i in range(10):
            assert ring.push(ev(i)) is True  # overwrite never refuses
        assert len(ring) == 4
        assert [e.args["i"] for e in ring.snapshot()] == [6, 7, 8, 9]

    def test_lost_and_total_accounting(self):
        ring = RingBuffer(capacity=4, mode="overwrite")
        for i in range(10):
            ring.push(ev(i))
        assert ring.total == 10
        assert ring.lost == 6
        assert ring.stats() == {
            "capacity": 4, "mode": "overwrite",
            "stored": 4, "lost": 6, "total": 10,
        }

    def test_wraparound_keeps_order(self):
        ring = RingBuffer(capacity=3, mode="overwrite")
        for i in range(7):  # wraps more than twice
            ring.push(ev(i))
        snap = ring.snapshot()
        assert [e.args["i"] for e in snap] == sorted(e.args["i"] for e in snap)


class TestDropMode:
    def test_overflow_discards_newest(self):
        ring = RingBuffer(capacity=4, mode="drop")
        results = [ring.push(ev(i)) for i in range(10)]
        assert results == [True] * 4 + [False] * 6
        assert [e.args["i"] for e in ring.snapshot()] == [0, 1, 2, 3]

    def test_lost_and_total_accounting(self):
        ring = RingBuffer(capacity=4, mode="drop")
        for i in range(10):
            ring.push(ev(i))
        assert ring.total == 10
        assert ring.lost == 6
        assert len(ring) == 4


class TestRingLifecycle:
    def test_snapshot_is_detached(self):
        ring = RingBuffer(capacity=8)
        for i in range(3):
            ring.push(ev(i))
        snap = ring.snapshot()
        ring.push(ev(99))
        assert len(snap) == 3  # later pushes never appear
        ring.reset()
        assert [e.args["i"] for e in snap] == [0, 1, 2]  # reset can't clear it

    def test_reset_clears_everything(self):
        ring = RingBuffer(capacity=2)
        for i in range(5):
            ring.push(ev(i))
        ring.reset()
        assert len(ring) == 0
        assert ring.lost == 0
        assert ring.total == 0
        assert ring.snapshot() == []

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)
        with pytest.raises(ValueError):
            RingBuffer(capacity=-1)
        with pytest.raises(ValueError):
            RingBuffer(capacity=8, mode="ringbuffer")

    def test_capacity_one(self):
        ring = RingBuffer(capacity=1, mode="overwrite")
        for i in range(3):
            ring.push(ev(i))
        assert [e.args["i"] for e in ring.snapshot()] == [2]
        assert ring.lost == 2


class TestAggregates:
    def test_counters(self):
        c = CounterSet()
        c.incr("a")
        c.incr("a")
        c.incr("b", 3)
        assert c.get("a") == 2
        assert c.get("missing") == 0
        assert c.as_dict() == {"a": 2, "b": 3}
        c.reset()
        assert len(c) == 0

    def test_log2_histogram_buckets(self):
        h = Log2Histogram("cycles")
        for v in (0, 1, 2, 3, 4, 7, 8, 1024):
            h.record(v)
        # bucket = int(v).bit_length(): 0->0, 1->1, [2,3]->2, [4,7]->3, ...
        assert h.buckets[0] == 1
        assert h.buckets[1] == 1
        assert h.buckets[2] == 2
        assert h.buckets[3] == 2
        assert h.buckets[4] == 1
        assert h.buckets[11] == 1
        assert h.count == 8
        assert h.total == 1049
        assert "@" in h.render()
        h.reset()
        assert h.count == 0 and not h.buckets

    def test_guard_site_stats(self):
        s = GuardSiteStats()
        s.record("m:@f:g0", 2, 10.0)
        s.record("m:@f:g0", 2, 10.0)
        s.record("m:@f:g1", 1, 5.0)
        assert len(s) == 2
        assert s.total_cycles() == 25.0
        top = s.top(1)
        assert top[0]["site"] == "m:@f:g0"
        assert top[0]["hits"] == 2
        assert top[0]["cycles"] == 20.0
        assert top[0]["share"] == pytest.approx(0.8)
        assert set(s.as_dict()) == {"m:@f:g0", "m:@f:g1"}
