"""Exporter correctness: chrome trace validity and structure, perf-script
text, folded flamegraph stacks, and the event-schema catalog."""

import json

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.trace import (
    EVENT_SCHEMA,
    TraceEvent,
    to_chrome_trace,
    to_folded,
    to_perf_script,
    validate_chrome_trace,
)
from repro.trace.events import describe_schema


@pytest.fixture(scope="module")
def traced():
    """One traced 30-packet fig3-config run shared across the module."""
    system = CaratKopSystem(SystemConfig(machine="r415", protect=True))
    trace = system.kernel.trace
    trace.enable()
    system.blast(size=128, count=30)
    trace.disable()
    return trace


class TestChromeTrace:
    def test_real_run_is_valid(self, traced):
        doc = to_chrome_trace(traced.snapshot(), freq_hz=traced.freq_hz)
        assert validate_chrome_trace(doc) == []
        # and it survives a JSON round trip
        assert validate_chrome_trace(json.loads(json.dumps(doc))) == []

    def test_process_metadata_first(self, traced):
        doc = to_chrome_trace(traced.snapshot(), process_name="pkt")
        meta = doc["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "pkt"

    def test_syscalls_pair_into_duration_slices(self, traced):
        events = traced.snapshot()
        enters = sum(1 for e in events if e.name == "syscall:enter")
        doc = to_chrome_trace(events)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["cat"] == "syscall"]
        assert len(slices) == enters
        assert all(s["dur"] >= 0 for s in slices)
        assert all(s["name"] == "sendmsg" for s in slices)

    def test_guard_checks_are_slices_with_simulated_cost(self, traced):
        doc = to_chrome_trace(traced.snapshot(), freq_hz=traced.freq_hz)
        guards = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["cat"] == "guard"]
        assert guards
        assert all(g["name"] == "carat_guard" for g in guards)
        assert any(g["dur"] > 0 for g in guards)

    def test_unbalanced_enter_becomes_instant(self):
        events = [TraceEvent(0, 1.0, "syscall:enter",
                             {"name": "sendmsg", "bytes": 64}, None)]
        doc = to_chrome_trace(events)
        kinds = [(e["ph"], e["name"]) for e in doc["traceEvents"][1:]]
        assert kinds == [("i", "syscall:enter")]
        assert validate_chrome_trace(doc) == []

    def test_validator_rejects_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"noTraceEvents": 1}) != []
        bad_phase = {"traceEvents": [
            {"ph": "Z", "name": "x", "ts": 0, "pid": 0, "tid": 0}]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        no_dur = {"traceEvents": [
            {"ph": "X", "name": "x", "ts": 0, "pid": 0, "tid": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(no_dur))
        no_name = {"traceEvents": [
            {"ph": "i", "ts": 0, "pid": 0, "tid": 0}]}
        assert any("name" in p for p in validate_chrome_trace(no_name))


class TestPerfScript:
    def test_format(self, traced):
        text = to_perf_script(traced.snapshot(), comm="pktblast")
        lines = text.splitlines()
        assert lines
        assert all(line.lstrip().startswith("pktblast [000]")
                   for line in lines)
        guard_lines = [l for l in lines if "guard:check:" in l]
        assert guard_lines
        assert "addr=0x" in guard_lines[0]  # addresses render hex

    def test_empty(self):
        assert to_perf_script([]) == ""


class TestFolded:
    def test_top_frame_set_includes_carat_guard(self, traced):
        for weight in ("hits", "cycles"):
            text = to_folded(traced.snapshot(), weight=weight)
            lines = text.splitlines()
            assert lines
            for line in lines:
                stack, count = line.rsplit(" ", 1)
                frames = stack.split(";")
                assert frames[0] == "caratkop"
                assert frames[-1] == "carat_guard"
                assert int(count) >= 1

    def test_cycles_weighting_dominates_hits(self, traced):
        events = traced.snapshot()
        hits = sum(int(l.rsplit(" ", 1)[1])
                   for l in to_folded(events, "hits").splitlines())
        cycles = sum(int(l.rsplit(" ", 1)[1])
                     for l in to_folded(events, "cycles").splitlines())
        assert hits == sum(1 for e in events if e.name == "guard:check")
        assert cycles > hits  # every guard costs > 1 cycle

    def test_stacks_carry_calling_function(self, traced):
        text = to_folded(traced.snapshot())
        assert "e1000e_xmit" in text or "tx_ring_space" in text

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            to_folded([], weight="samples")


class TestSchemaCatalog:
    def test_every_event_described(self):
        text = describe_schema()
        for name in EVENT_SCHEMA:
            assert name in text

    def test_schema_shape(self):
        for name, (category, fields) in EVENT_SCHEMA.items():
            assert name.startswith(category + ":")
            assert isinstance(fields, tuple)
