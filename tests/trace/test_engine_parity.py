"""Tracing must be free when off and identical across engines when on.

Three properties, on the Figure 3 configuration (R415, protected
driver, 128-byte frames):

1. **Disabled == absent.**  A run with the subsystem present-but-
   disabled produces byte-identical simulated results to a run where
   ``kernel.trace`` has been deleted outright (a build without the
   subsystem), for both engines.
2. **Tracing is observability-only.**  Enabling tracing changes nothing
   about the simulated machine: packet counts, cycle totals (float
   bit-pattern included), and guard statistics are identical.
3. **Engine parity.**  The interpreter and the compiled engine emit the
   same event stream and attribute guard costs to the same callsites.
"""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig

PACKETS = 50


def _fig3_system(engine):
    return CaratKopSystem(
        SystemConfig(machine="r415", protect=True, engine=engine)
    )


def _observables(system, result):
    # Translation-cache traffic depends on process-global cache warmth
    # (which system was constructed first), not on simulated behaviour.
    guard_stats = {
        k: v for k, v in system.guard_stats().items()
        if not k.startswith("translation_")
    }
    return {
        "packets_sent": result.packets_sent,
        "errors": result.errors,
        "stalls": result.stalls,
        "total_cycles": result.total_cycles,  # float, compared bit-for-bit
        "throughput_pps": result.throughput_pps,
        "guard_stats": guard_stats,
        "instructions": system.kernel.vm.instructions_executed,
    }


@pytest.mark.parametrize("engine", ["interp", "compiled"])
class TestBitIdentity:
    def test_disabled_equals_absent(self, engine):
        disabled = _fig3_system(engine)
        r1 = disabled.blast(size=128, count=PACKETS)

        absent = _fig3_system(engine)
        del absent.kernel.trace  # simulate a build without the subsystem
        r2 = absent.blast(size=128, count=PACKETS)

        assert _observables(disabled, r1) == _observables(absent, r2)

    def test_enabled_equals_disabled(self, engine):
        off = _fig3_system(engine)
        r_off = off.blast(size=128, count=PACKETS)

        on = _fig3_system(engine)
        on.kernel.trace.enable()
        r_on = on.blast(size=128, count=PACKETS)
        on.kernel.trace.disable()

        assert on.kernel.trace.ring.total > 0  # it really traced
        assert _observables(off, r_off) == _observables(on, r_on)

    def test_enable_disable_cycle_round_trips(self, engine):
        """Toggling must retranslate back to the untraced fast path
        with no behavioral residue (compiled-engine cache identity)."""
        never = _fig3_system(engine)
        r_never = never.blast(size=128, count=2 * PACKETS)

        toggled = _fig3_system(engine)
        toggled.kernel.trace.enable()
        toggled.blast(size=128, count=PACKETS)
        toggled.kernel.trace.disable()
        toggled.kernel.trace.reset()
        r_after = toggled.blast(size=128, count=PACKETS)

        # per-blast observables after the toggle match the second half
        # of an untoggled double-blast
        assert r_after.packets_sent == PACKETS
        assert toggled.kernel.trace.ring.total == 0  # really off again
        assert (_observables(toggled, r_after)["guard_stats"]
                == _observables(never, r_never)["guard_stats"])


class TestEngineParity:
    def _traced_run(self, engine):
        system = _fig3_system(engine)
        trace = system.kernel.trace
        trace.enable()
        system.blast(size=128, count=PACKETS)
        trace.disable()
        return trace

    def test_identical_event_streams(self):
        ti = self._traced_run("interp")
        tc = self._traced_run("compiled")
        si = [(e.name, e.args) for e in ti.snapshot()]
        sc = [(e.name, e.args) for e in tc.snapshot()]
        assert si == sc
        assert len(si) > 0

    def test_identical_guard_site_attribution(self):
        ti = self._traced_run("interp")
        tc = self._traced_run("compiled")
        assert ti.guard_sites.as_dict() == tc.guard_sites.as_dict()
        assert len(ti.guard_sites) > 0
        # the histogram agrees too
        assert ti.guard_hist.buckets == tc.guard_hist.buckets
        assert ti.guard_hist.count == tc.guard_hist.count
        assert ti.guard_hist.total == tc.guard_hist.total

    def test_site_ids_name_the_driver(self):
        tc = self._traced_run("compiled")
        sites = tc.guard_sites.as_dict()
        assert all(s.count(":") == 2 for s in sites)  # module:@fn:gN
        assert any(s.startswith("e1000e:@") for s in sites)
