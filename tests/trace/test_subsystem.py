"""Trace-subsystem behavior: static keys, the event sink, operator
surfaces (/proc/trace, /proc/trace_stat, the TRACE_* ioctls), and the
guard:deny path through the policy module's violation recorder."""

import struct

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel import Kernel
from repro.policy import CaratPolicyModule, PolicyManager
from repro.policy import module as pm
from repro.trace.events import EVENT_SCHEMA


@pytest.fixture()
def system():
    return CaratKopSystem(SystemConfig(machine="r415", protect=True))


class TestStaticKeys:
    def test_points_preseeded_from_schema(self, kernel):
        assert set(EVENT_SCHEMA) <= set(kernel.trace.points)

    def test_disabled_by_default_and_records_nothing(self, system):
        trace = system.kernel.trace
        assert trace.enabled is False
        assert all(not tp.enabled for tp in trace.points.values())
        system.blast(size=128, count=10)
        assert trace.ring.total == 0
        assert len(trace.counters) == 0

    def test_enable_flips_every_key_and_attaches_tracer(self, system):
        trace = system.kernel.trace
        trace.enable()
        assert all(tp.enabled for tp in trace.points.values())
        assert system.kernel.vm.tracer is trace.vm_tracer
        trace.disable()
        assert all(not tp.enabled for tp in trace.points.values())
        assert system.kernel.vm.tracer is None

    def test_suppress_survives_enable(self, kernel):
        trace = kernel.trace
        trace.suppress("mem:kmalloc")
        trace.enable()
        assert trace.points["mem:kmalloc"].enabled is False
        assert trace.points["mem:kfree"].enabled is True
        trace.suppress("mem:kmalloc", suppressed=False)
        assert trace.points["mem:kmalloc"].enabled is True

    def test_adhoc_point_inherits_enable_state(self, kernel):
        trace = kernel.trace
        trace.enable()
        tp = trace.point("custom:thing")
        assert tp.enabled is True
        assert tp.category == "custom"
        assert trace.point("custom:thing") is tp  # get-or-create


class TestEventSink:
    def test_blast_emits_every_hot_category(self, system):
        trace = system.kernel.trace
        trace.enable()
        system.blast(size=128, count=20)
        trace.disable()
        counts = trace.counters.as_dict()
        for name in ("guard:check", "syscall:enter", "syscall:exit",
                     "dma:fetch", "dma:writeback"):
            assert counts.get(name, 0) > 0, f"no {name} events"
        # syscalls pair up
        assert counts["syscall:enter"] == counts["syscall:exit"]

    def test_events_are_sequenced_and_timestamped(self, system):
        trace = system.kernel.trace
        trace.enable()
        system.blast(size=128, count=5)
        events = trace.snapshot()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        ts = [e.ts_us for e in events]
        assert ts == sorted(ts)  # simulated time is monotonic

    def test_snapshot_while_enabled_is_consistent(self, system):
        trace = system.kernel.trace
        trace.enable()
        system.blast(size=128, count=5)
        snap = trace.snapshot()
        n = len(snap)
        system.blast(size=128, count=5)  # tracing still on
        assert len(snap) == n  # detached from later traffic
        assert len(trace.snapshot()) > n

    def test_reset_restarts_sequence(self, system):
        trace = system.kernel.trace
        trace.enable()
        system.blast(size=128, count=5)
        trace.reset()
        assert trace.ring.total == 0
        assert trace.guard_hist.count == 0
        assert len(trace.guard_sites) == 0
        system.blast(size=128, count=1)
        assert trace.snapshot()[0].seq == 0

    def test_module_lifecycle_events(self, key):
        kernel = Kernel(signing_key=key, require_protected_modules=True)
        CaratPolicyModule(kernel).install()
        PolicyManager(kernel).install_two_region_policy()
        trace = kernel.trace
        trace.enable()
        from repro import CompileOptions, compile_module

        compiled = compile_module(
            "long x; __export long f(void){ x = 7; return x; }",
            CompileOptions(module_name="lifemod", protect=True, key=key))
        kernel.insmod(compiled)
        names = {e.name for e in trace.snapshot()}
        assert {"module:verify", "module:link", "module:load"} <= names


class TestGuardDeny:
    def test_violation_emits_guard_deny(self, policy_kernel):
        kernel, policy, manager = policy_kernel
        manager.install_two_region_policy()
        trace = kernel.trace
        trace.enable()
        before = policy.violations.get("x", 0)
        policy._record_violation("x", kind="memory", addr=0x10, size=8,
                                 flags=2)
        assert policy.violations["x"] == before + 1
        denies = [e for e in trace.snapshot() if e.name == "guard:deny"]
        assert len(denies) == 1
        assert denies[0].args["module"] == "x"
        assert denies[0].args["kind"] == "memory"

    def test_violation_counted_but_silent_when_disabled(self, policy_kernel):
        kernel, policy, _ = policy_kernel
        policy._record_violation("y", kind="call", detail="evil")
        assert policy.violations["y"] == 1
        assert kernel.trace.ring.total == 0


class TestOperatorSurfaces:
    def test_proc_trace_stat_renders(self, system):
        trace = system.kernel.trace
        trace.enable()
        system.blast(size=128, count=20)
        text = system.kernel.proc.read("/proc/trace_stat")
        assert "tracing: on" in text
        assert "[guard cycle cost]" in text
        assert "@" in text  # the histogram bars
        assert "[guard sites]" in text
        assert "e1000e:@" in text  # per-callsite attribution
        assert "[irq]" in text

    def test_proc_trace_renders_perf_script(self, system):
        trace = system.kernel.trace
        trace.enable()
        system.blast(size=128, count=3)
        text = system.kernel.proc.read("/proc/trace")
        assert text.startswith("# tracer: caratkop")
        assert "guard:check" in text

    def test_proc_interrupts_uses_public_accessor(self, kernel):
        from repro import CompileOptions, compile_module

        compiled = compile_module(
            "__export int my_isr(int line) { return 1; }",
            CompileOptions(module_name="isr_mod", protect=False))
        loaded = kernel.insmod(compiled)
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        kernel.irq.raise_irq(line)
        actions = kernel.irq.actions()
        assert actions[line].fired == 1
        # the snapshot is detached: mutating it can't corrupt the kernel
        actions.clear()
        assert kernel.irq.actions()
        assert "isr_mod" in kernel.proc.read("/proc/interrupts")

    def test_irq_events_traced(self, kernel):
        from repro import CompileOptions, compile_module

        compiled = compile_module(
            "__export int my_isr(int line) { return 1; }",
            CompileOptions(module_name="isr_mod", protect=False))
        loaded = kernel.insmod(compiled)
        line = kernel.irq.allocate_line()
        kernel.irq.request_irq(line, loaded, "my_isr")
        trace = kernel.trace
        trace.enable()
        kernel.irq.raise_irq(line)
        names = [e.name for e in trace.snapshot()]
        assert "irq:raise" in names
        assert "irq:dispatch" in names

    def test_trace_ioctls(self, system):
        kernel = system.kernel
        trace = kernel.trace

        def ioctl(cmd):
            return kernel.devices.ioctl(pm.DEVICE_PATH, cmd, b"", uid=0)

        ioctl(pm.CMD_TRACE_ENABLE)
        assert trace.enabled is True
        system.blast(size=128, count=5)
        stored, lost, total = struct.unpack(
            pm._TRACE_STAT_FMT, ioctl(pm.CMD_TRACE_SNAPSHOT))
        assert stored == len(trace.ring)
        assert lost == trace.ring.lost
        assert total == trace.ring.total
        assert total > 0
        ioctl(pm.CMD_TRACE_DISABLE)
        assert trace.enabled is False
        ioctl(pm.CMD_TRACE_RESET)
        assert trace.ring.total == 0

    def test_trace_ioctls_root_only(self, system):
        from repro.kernel import IoctlError
        from repro.kernel.chardev import EPERM

        with pytest.raises(IoctlError) as e:
            system.kernel.devices.ioctl(
                pm.DEVICE_PATH, pm.CMD_TRACE_ENABLE, b"", uid=1000)
        assert e.value.errno == EPERM
        assert system.kernel.trace.enabled is False

    def test_ring_overflow_visible_to_operator(self, system):
        trace = system.kernel.trace
        trace.configure(capacity=16, mode="overwrite")
        trace.enable()
        system.blast(size=128, count=20)
        assert trace.ring.lost > 0
        assert len(trace.ring) == 16
        # aggregates saw everything the ring lost
        assert sum(trace.counters.as_dict().values()) == trace.ring.total
