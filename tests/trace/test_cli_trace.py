"""caratkop-trace CLI verbs and the repro.bench trace-artifact emitter."""

import json

import pytest

from repro.bench import FIGURE_TRACE_CONFIGS, emit_trace_artifact
from repro.cli import trace_main
from repro.trace import validate_chrome_trace


class TestRunVerb:
    def test_run_writes_all_artifacts(self, tmp_path, capsys):
        chrome = tmp_path / "t.json"
        folded = tmp_path / "t.folded"
        perf = tmp_path / "t.perf"
        stat = tmp_path / "t.stat"
        rc = trace_main([
            "run", "--machine", "r415", "--count", "40",
            "--chrome", str(chrome), "--folded", str(folded),
            "--perf", str(perf), "--stat-out", str(stat),
        ])
        assert rc == 0
        doc = json.loads(chrome.read_text())
        assert validate_chrome_trace(doc) == []
        assert folded.read_text().splitlines()
        assert "guard:check" in perf.read_text()
        stat_text = stat.read_text()
        assert "[guard cycle cost]" in stat_text
        out = capsys.readouterr().out
        assert "guard checks" in out

    def test_run_without_outputs_prints_stat(self, capsys):
        rc = trace_main(["run", "--count", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[guard sites]" in out

    def test_run_interp_engine(self, capsys):
        rc = trace_main(["run", "--count", "10", "--engine", "interp"])
        assert rc == 0

    def test_run_tiny_drop_ring_reports_lost(self, capsys):
        rc = trace_main(["run", "--count", "40",
                         "--ring-capacity", "8", "--ring-mode", "drop"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lost)" in out
        lost = int(out.split("(")[1].split(" lost")[0])
        assert lost > 0


class TestValidateVerb:
    def test_valid_artifact_passes(self, tmp_path, capsys):
        chrome = tmp_path / "t.json"
        trace_main(["run", "--count", "10", "--chrome", str(chrome)])
        capsys.readouterr()
        assert trace_main(["validate", str(chrome)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_corrupt_artifact_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert trace_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestSchemaVerb:
    def test_prints_catalog(self, capsys):
        assert trace_main(["schema"]) == 0
        out = capsys.readouterr().out
        assert "guard:check" in out
        assert "module:eject" in out


class TestBenchArtifacts:
    def test_every_figure_has_a_trace_config(self):
        assert set(FIGURE_TRACE_CONFIGS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7"}

    def test_emit_trace_artifact(self, tmp_path):
        summary = emit_trace_artifact(tmp_path, fid="fig3", count=40)
        assert summary["packets_sent"] == 40
        assert summary["guard_checks"] > 0
        assert summary["top_sites"]
        doc = json.loads((tmp_path / "fig3.trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        folded = (tmp_path / "fig3.folded").read_text()
        assert folded.splitlines()
        assert all(l.rsplit(" ", 1)[0].endswith("carat_guard")
                   for l in folded.splitlines())
        stat = (tmp_path / "fig3.stat.txt").read_text()
        assert "[guard cycle cost]" in stat
        guards = json.loads((tmp_path / "fig3.guards.json").read_text())
        assert guards["machine"] == "r415"
        assert guards["sites"]
        assert guards["top"][0]["share"] > 0

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            emit_trace_artifact(tmp_path, fid="fig99")
