"""RX-path tests: device receive engine + driver RX ring + netif_rx.

The paper's evaluation is TX-only, but a credible e1000e substrate needs
the receive side; these tests also show RX descriptor handling is guarded
exactly like TX (same loads/stores, same policy)."""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import regs
from repro.net import make_test_frame


@pytest.fixture(params=[False, True], ids=["baseline", "carat"])
def system(request):
    return CaratKopSystem(SystemConfig(machine=None, protect=request.param))


class TestReceive:
    def test_injected_frame_reaches_stack(self, system):
        frame = make_test_frame(128, seq=5)
        assert system.netdev.inject_rx(frame) is True
        cleaned = system.netdev.poll_rx()
        assert cleaned == 1
        assert system.netdev.rx_queue == [frame.encode()]

    def test_rx_stats(self, system):
        for seq in range(5):
            system.netdev.inject_rx(make_test_frame(100, seq))
        system.netdev.poll_rx()
        stats = system.netdev.stats()
        assert stats["rx_packets"] == 5
        assert stats["rx_bytes"] == 500
        assert system.device.mmio_read(regs.GPRC, 4) == 5

    def test_poll_budget_respected(self, system):
        for seq in range(10):
            system.netdev.inject_rx(make_test_frame(64, seq))
        assert system.netdev.poll_rx(budget=4) == 4
        assert system.netdev.poll_rx(budget=100) == 6

    def test_frames_in_order_and_intact(self, system):
        frames = [make_test_frame(90, seq) for seq in range(20)]
        for f in frames:
            system.netdev.inject_rx(f)
        system.netdev.poll_rx(budget=64)
        assert system.netdev.rx_queue == [f.encode() for f in frames]

    def test_ring_wraparound(self, system):
        # More frames than the 128-entry RX ring, polled in batches.
        total = 300
        delivered = 0
        for seq in range(total):
            assert system.netdev.inject_rx(make_test_frame(64, seq))
            if seq % 50 == 49:
                delivered += system.netdev.poll_rx(budget=64)
        delivered += system.netdev.poll_rx(budget=128)
        assert delivered == total
        assert len(system.netdev.rx_queue) == total

    def test_ring_exhaustion_drops_with_mpc(self, system):
        # Fill the ring without polling: 127 descriptors available.
        accepted = 0
        for seq in range(200):
            if system.netdev.inject_rx(make_test_frame(64, seq)):
                accepted += 1
        assert accepted == 127  # RX_ENTRIES - 1 (the classic gap)
        assert system.device.mmio_read(regs.MPC, 4) == 200 - 127
        # Poll, recycle, and the ring accepts again.
        assert system.netdev.poll_rx(budget=128) == 127
        assert system.netdev.inject_rx(make_test_frame(64, 999)) is True

    def test_oversize_frame_dropped(self, system):
        assert system.netdev.inject_rx(b"\x00" * 2049) is False
        assert system.device.mmio_read(regs.MPC, 4) == 1

    def test_rx_disabled_after_remove(self, system):
        system.netdev.remove()
        assert system.netdev.inject_rx(make_test_frame(64, 0)) is False

    def test_empty_poll_returns_zero(self, system):
        assert system.netdev.poll_rx() == 0


class TestRxGuarding:
    def test_rx_path_is_guarded(self):
        carat = CaratKopSystem(SystemConfig(machine=None, protect=True))
        checks_before = carat.guard_stats()["checks"]
        carat.netdev.inject_rx(make_test_frame(128, 0))  # device DMA only
        dma_checks = carat.guard_stats()["checks"] - checks_before
        assert dma_checks == 0  # the DMA write is unguarded by design
        carat.netdev.poll_rx()  # the driver's descriptor walk IS guarded
        assert carat.guard_stats()["checks"] > checks_before

    def test_rx_deny_policy_panics_on_poll(self):
        from repro.kernel import KernelPanic

        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        system.netdev.inject_rx(make_test_frame(128, 0))
        system.policy_manager.clear()
        system.policy_manager.set_default(False)
        with pytest.raises(KernelPanic):
            system.netdev.poll_rx()

    def test_loopback_roundtrip(self, system):
        """TX then 'wire loopback' into RX: bytes survive both DMA paths."""
        frame = make_test_frame(200, 42)
        assert system.netdev.xmit(frame) == 0
        wire = system.sink.last()
        assert system.netdev.inject_rx(wire)
        system.netdev.poll_rx()
        assert system.netdev.rx_queue[-1] == frame.encode()
