"""Device-model tests: register file, DMA engine, wire timing."""

import struct

import pytest

from repro.e1000e import E1000EDevice, regs
from repro.kernel import Kernel, layout
from repro.net import PacketSink


@pytest.fixture()
def setup():
    kernel = Kernel()
    sink = PacketSink()
    dev = E1000EDevice(kernel, sink)
    return kernel, sink, dev


def write_desc(kernel, ring_phys, idx, buf_phys, length, cmd):
    raw = struct.pack("<QHBBBBH", buf_phys, length, 0, cmd, 0, 0, 0)
    kernel.ram.write(ring_phys + idx * regs.TDESC_SIZE, raw)


def ring_setup(kernel, dev, entries=8):
    ring_phys = kernel.page_allocator.alloc_pages(1)
    dev.mmio_write(regs.TDBAL, 4, ring_phys & 0xFFFFFFFF)
    dev.mmio_write(regs.TDBAH, 4, ring_phys >> 32)
    dev.mmio_write(regs.TDLEN, 4, entries * regs.TDESC_SIZE)
    dev.mmio_write(regs.TCTL, 4, regs.TCTL_EN)
    return ring_phys


class TestRegisters:
    def test_status_reports_link_up(self, setup):
        _, _, dev = setup
        assert dev.mmio_read(regs.STATUS, 4) & regs.STATUS_LU

    def test_mac_via_ral_rah(self, setup):
        _, _, dev = setup
        ral = dev.mmio_read(regs.RAL0, 4)
        rah = dev.mmio_read(regs.RAH0, 4)
        mac = ral.to_bytes(4, "little") + (rah & 0xFFFF).to_bytes(2, "little")
        assert mac == dev.mac
        assert rah & regs.RAH_AV

    def test_reset_clears_state(self, setup):
        kernel, _, dev = setup
        ring_setup(kernel, dev)
        dev.mmio_write(regs.TDT, 4, 0)
        dev.mmio_write(regs.CTRL, 4, regs.CTRL_RST)
        assert dev.tdlen == 0 and dev.tctl == 0

    def test_tdba_split_registers(self, setup):
        _, _, dev = setup
        dev.mmio_write(regs.TDBAL, 4, 0xDEAD0000)
        dev.mmio_write(regs.TDBAH, 4, 0x1)
        assert dev.tdba == 0x1_DEAD0000
        assert dev.mmio_read(regs.TDBAL, 4) == 0xDEAD0000
        assert dev.mmio_read(regs.TDBAH, 4) == 0x1

    def test_bad_tdlen_ignored_like_hardware(self, setup):
        kernel, _, dev = setup
        dev.mmio_write(regs.TDLEN, 4, 17)  # not a descriptor multiple
        assert dev.tdlen == 0
        assert any("ignoring bad TDLEN" in l for l in kernel.dmesg_log)

    def test_icr_read_to_clear(self, setup):
        kernel, _, dev = setup
        ring_phys = ring_setup(kernel, dev)
        buf = kernel.page_allocator.alloc_pages(1)
        kernel.ram.write(buf, b"\xAA" * 64)
        write_desc(kernel, ring_phys, 0, buf, 64, regs.TDESC_CMD_EOP)
        dev.mmio_write(regs.TDT, 4, 1)
        assert dev.mmio_read(regs.ICR, 4) != 0
        assert dev.mmio_read(regs.ICR, 4) == 0

    def test_unknown_register_reads_zero(self, setup):
        _, _, dev = setup
        assert dev.mmio_read(0x1F00, 4) == 0

    def test_registered_with_kernel_mmio(self, setup):
        kernel, _, dev = setup
        virt = kernel.ioremap(dev.phys_base, regs.BAR_SIZE)
        assert kernel.address_space.read_int(virt + regs.STATUS, 4) & regs.STATUS_LU


class TestDMA:
    def test_transmit_delivers_payload_to_sink(self, setup):
        kernel, sink, dev = setup
        ring_phys = ring_setup(kernel, dev)
        buf = kernel.page_allocator.alloc_pages(1)
        kernel.ram.write(buf, b"PACKET-ONE-" + b"x" * 53)
        write_desc(kernel, ring_phys, 0, buf, 64, regs.TDESC_CMD_EOP)
        dev.mmio_write(regs.TDT, 4, 1)
        assert sink.packets == 1
        assert sink.recent[0][:11] == b"PACKET-ONE-"

    def test_multiple_descriptors_in_one_kick(self, setup):
        kernel, sink, dev = setup
        ring_phys = ring_setup(kernel, dev)
        buf = kernel.page_allocator.alloc_pages(1)
        for i in range(3):
            kernel.ram.write(buf + i * 128, bytes([i]) * 64)
            write_desc(kernel, ring_phys, i, buf + i * 128, 64,
                       regs.TDESC_CMD_EOP)
        dev.mmio_write(regs.TDT, 4, 3)
        assert sink.packets == 3
        assert sink.recent[2][0] == 2

    def test_dd_written_back(self, setup):
        kernel, _, dev = setup
        ring_phys = ring_setup(kernel, dev)
        buf = kernel.page_allocator.alloc_pages(1)
        write_desc(kernel, ring_phys, 0, buf, 64, regs.TDESC_CMD_RS)
        dev.mmio_write(regs.TDT, 4, 1)
        status = kernel.ram.read(ring_phys + 12, 1)[0]
        assert status & regs.TDESC_STATUS_DD

    def test_tdh_advances(self, setup):
        kernel, _, dev = setup
        ring_phys = ring_setup(kernel, dev)
        buf = kernel.page_allocator.alloc_pages(1)
        for i in range(2):
            write_desc(kernel, ring_phys, i, buf, 64, 0)
        dev.mmio_write(regs.TDT, 4, 2)
        assert dev.mmio_read(regs.TDH, 4) == 2

    def test_ring_wraparound(self, setup):
        kernel, sink, dev = setup
        entries = 4
        ring_phys = ring_setup(kernel, dev, entries=entries)
        buf = kernel.page_allocator.alloc_pages(1)
        tdt = 0
        for round_ in range(10):
            write_desc(kernel, ring_phys, tdt, buf, 64, 0)
            tdt = (tdt + 1) % entries
            dev.mmio_write(regs.TDT, 4, tdt)
        assert sink.packets == 10

    def test_stats_counters(self, setup):
        kernel, _, dev = setup
        ring_phys = ring_setup(kernel, dev)
        buf = kernel.page_allocator.alloc_pages(1)
        write_desc(kernel, ring_phys, 0, buf, 100, 0)
        write_desc(kernel, ring_phys, 1, buf, 200, 0)
        dev.mmio_write(regs.TDT, 4, 2)
        assert dev.mmio_read(regs.GPTC, 4) == 2
        assert dev.mmio_read(regs.TOTL, 4) == 300

    def test_tx_disabled_no_dma(self, setup):
        kernel, sink, dev = setup
        ring_phys = ring_setup(kernel, dev)
        dev.mmio_write(regs.TCTL, 4, 0)  # disable
        buf = kernel.page_allocator.alloc_pages(1)
        write_desc(kernel, ring_phys, 0, buf, 64, 0)
        dev.mmio_write(regs.TDT, 4, 1)
        assert sink.packets == 0


class TestWireTiming:
    def test_completions_follow_the_clock(self):
        kernel = Kernel()
        now = [0.0]
        dev = E1000EDevice(
            kernel, PacketSink(), clock=lambda: now[0], freq_hz=1e9
        )
        ring_phys = kernel.page_allocator.alloc_pages(1)
        dev.mmio_write(regs.TDBAL, 4, ring_phys & 0xFFFFFFFF)
        dev.mmio_write(regs.TDLEN, 4, 8 * regs.TDESC_SIZE)
        dev.mmio_write(regs.TCTL, 4, regs.TCTL_EN)
        buf = kernel.page_allocator.alloc_pages(1)
        write_desc(kernel, ring_phys, 0, buf, 1500, 0)
        dev.mmio_write(regs.TDT, 4, 1)
        # Immediately: on the wire, not yet complete.
        assert dev.mmio_read(regs.TDH, 4) == 0
        assert dev.stats()["in_flight"] == 1
        # 1500B at 1 Gb/s ~= 12.2us ~= 12,200 cycles at 1 GHz.
        now[0] = 20_000
        assert dev.mmio_read(regs.TDH, 4) == 1
        assert dev.stats()["in_flight"] == 0

    def test_wire_serializes_back_to_back_frames(self):
        kernel = Kernel()
        now = [0.0]
        dev = E1000EDevice(
            kernel, PacketSink(), clock=lambda: now[0], freq_hz=1e9
        )
        ring_phys = kernel.page_allocator.alloc_pages(1)
        dev.mmio_write(regs.TDBAL, 4, ring_phys & 0xFFFFFFFF)
        dev.mmio_write(regs.TDLEN, 4, 8 * regs.TDESC_SIZE)
        dev.mmio_write(regs.TCTL, 4, regs.TCTL_EN)
        buf = kernel.page_allocator.alloc_pages(1)
        for i in range(3):
            write_desc(kernel, ring_phys, i, buf, 1500, 0)
        dev.mmio_write(regs.TDT, 4, 3)
        # After ~one frame time only the first completed.
        now[0] = 12_500
        assert dev.mmio_read(regs.TDH, 4) == 1
        now[0] = 40_000
        assert dev.mmio_read(regs.TDH, 4) == 3
