"""Multi-queue RX (RSS steering) and NAPI-style batch polling.

Queue 0 stays with the guarded mini-C driver (the byte-identity path);
queues >= 1 are kernel-side scale-out queues with MSI-X-style per-queue
vectors: an arriving frame arms the queue's poller, which drains up to
``budget`` descriptors per pass and re-enables the vector only when the
queue ran dry — the interrupt-mitigation shape of real NAPI."""

import zlib

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import regs
from repro.net import make_test_frame


def _frame_for_queue(queue, nqueues, size=96, start=0):
    """A test frame whose RSS hash steers it to ``queue``."""
    for seq in range(start, start + 4096):
        frame = make_test_frame(size, seq)
        raw = frame.encode()
        if zlib.crc32(raw[:34]) % nqueues == queue:
            return raw
    raise AssertionError("no seq hashes to the queue")  # pragma: no cover


@pytest.fixture
def system():
    return CaratKopSystem(SystemConfig(machine=None, protect=True, cpus=2))


class TestQueueRegisters:
    def test_per_queue_register_blocks(self, system):
        dev = system.device
        system.netdev.setup_rx_queue(1, entries=32)
        assert dev.mmio_read(regs.rxq_reg(regs.RDLEN, 1), 4) == \
            32 * regs.RDESC_SIZE
        assert dev.mmio_read(regs.rxq_reg(regs.RDH, 1), 4) == 0
        assert dev.mmio_read(regs.rxq_reg(regs.RDT, 1), 4) == 31
        # Queue 0's legacy block is untouched by queue 1's bring-up.
        assert dev.rx_queues[1].rdba != dev.rx_queues[0].rdba

    def test_mrqc_rss_enable_readback(self, system):
        dev = system.device
        assert dev.mmio_read(regs.MRQC, 4) == 0
        system.netdev.enable_rss(2)
        assert dev.mmio_read(regs.MRQC, 4) == regs.MRQC_RSS_EN

    def test_rss_off_steers_everything_to_queue_zero(self, system):
        system.netdev.setup_rx_queue(1)
        # Queues configured but MRQC off: no steering.
        for seq in range(8):
            assert system.device.rss_queue(
                make_test_frame(80, seq).encode()) == 0


class TestRssSteering:
    def test_hash_spreads_and_is_deterministic(self, system):
        system.netdev.enable_rss(2)
        seen = set()
        for seq in range(32):
            raw = make_test_frame(80, seq).encode()
            q = system.device.rss_queue(raw)
            assert q == zlib.crc32(raw[:34]) % 2
            seen.add(q)
        assert seen == {0, 1}

    def test_frame_lands_on_its_queue_intact(self, system):
        system.netdev.enable_rss(2)
        raw = _frame_for_queue(1, 2)
        assert system.netdev.inject_rx(raw) is True
        assert system.device.rx_queues[1].packets == 1
        assert system.device.rx_queues[0].packets == 0
        assert system.netdev.napi_poll() == 1
        assert system.netdev.rx_queue == [raw]

    def test_queue_zero_still_uses_the_guarded_driver(self, system):
        system.netdev.enable_rss(2)
        raw = _frame_for_queue(0, 2)
        checks_before = system.guard_stats()["checks"]
        assert system.netdev.inject_rx(raw) is True
        assert system.device.rx_queues[0].packets == 1
        # Kernel-side NAPI has nothing to do; the mini-C driver drains it
        # under guards, exactly like a single-queue system.
        assert system.netdev.napi_poll() == 0
        assert system.netdev.poll_rx() == 1
        assert system.netdev.rx_queue == [raw]
        assert system.guard_stats()["checks"] > checks_before


class TestNapi:
    def test_arrival_arms_poller_and_masks_vector(self, system):
        system.netdev.enable_rss(2)
        system.netdev.inject_rx(_frame_for_queue(1, 2))
        stats = system.netdev.napi_stats()
        assert stats["schedules"] == 1
        assert stats["armed"] == [1]
        # The vector is masked: further arrivals do not re-schedule.
        system.netdev.inject_rx(_frame_for_queue(1, 2, start=1000))
        assert system.netdev.napi_stats()["schedules"] == 1

    def test_poll_completes_and_reenables_vector(self, system):
        system.netdev.enable_rss(2)
        system.netdev.inject_rx(_frame_for_queue(1, 2))
        assert system.netdev.napi_poll() == 1
        stats = system.netdev.napi_stats()
        assert stats["armed"] == []
        assert system.device.mmio_read(regs.IMS, 4) & regs.icr_rxq(1)
        # Re-enabled: the next arrival schedules again.
        system.netdev.inject_rx(_frame_for_queue(1, 2, start=2000))
        assert system.netdev.napi_stats()["schedules"] == 2

    def test_budget_limits_one_pass_and_keeps_queue_armed(self, system):
        system.netdev.enable_rss(2, budget=4)
        sent = 0
        start = 0
        raws = []
        while sent < 10:
            raw = _frame_for_queue(1, 2, start=start)
            start += 4096
            system.netdev.inject_rx(raw)
            raws.append(raw)
            sent += 1
        assert system.netdev.napi_poll() == 4   # one budgeted pass
        assert system.netdev.napi_stats()["armed"] == [1]  # saturated
        assert system.netdev.napi_poll() == 4
        assert system.netdev.napi_poll() == 2   # drains dry, completes
        assert system.netdev.napi_stats()["armed"] == []
        assert system.netdev.rx_queue == raws   # in arrival order

    def test_tail_writeback_recycles_descriptors(self, system):
        system.netdev.enable_rss(2, entries=8)
        start = 0
        for _ in range(20):  # far more than the 8-entry ring, in batches
            raw = _frame_for_queue(1, 2, start=start)
            start += 4096
            assert system.netdev.inject_rx(raw) is True
            system.netdev.napi_poll()
        assert len(system.netdev.rx_queue) == 20
        assert system.netdev.napi_stats()["rxq_packets"] == {1: 20}

    def test_cleaning_is_attributed_to_the_queue_cpu(self, system):
        system.netdev.enable_rss(2)
        system.kernel.trace.enable()
        system.netdev.inject_rx(_frame_for_queue(1, 2))
        system.netdev.napi_poll()
        system.kernel.trace.disable()
        # Queue 1 work lands on CPU 1 (queue % ncpus) — its trace ring
        # saw events while CPU 0's saw none from this path.
        assert system.kernel.trace.rings[1].total > 0

    def test_eject_disarms_napi(self, system):
        system.netdev.enable_rss(2)
        system.netdev.inject_rx(_frame_for_queue(1, 2))
        assert system.netdev.napi_stats()["armed"] == [1]
        system.netdev.remove()
        assert system.device.napi_notify is None
        assert system.netdev.napi_stats()["armed"] == []


class TestSingleQueueUnchanged:
    def test_legacy_path_untouched_without_rss(self, system):
        """No RSS configured: receive/poll behave exactly as before the
        multi-queue work (the --cpus 1 byte-identity guarantee)."""
        frames = [make_test_frame(90, seq) for seq in range(10)]
        for f in frames:
            assert system.netdev.inject_rx(f) is True
        assert system.device.rx_queues[0].packets == 10
        assert all(q.packets == 0 for q in system.device.rx_queues[1:])
        assert system.netdev.poll_rx(budget=64) == 10
        assert system.netdev.rx_queue == [f.encode() for f in frames]
        assert system.netdev.napi_stats()["schedules"] == 0
