"""Device robustness: a hostile/buggy driver cannot crash the 'hardware'.

The device model's register window is reachable from module code via
MMIO, so every write pattern must resolve to device-side behaviour
(ignore, error counter, master abort) — never a Python exception, which
would model a CPU fault that real hardware does not raise.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import E1000EDevice, regs
from repro.kernel import Kernel
from repro.net import PacketSink, make_test_frame

OFFSETS = [
    0, regs.CTRL, regs.STATUS, regs.ICR, regs.IMS, regs.IMC, regs.RCTL,
    regs.TCTL, regs.TDBAL, regs.TDBAH, regs.TDLEN, regs.TDH, regs.TDT,
    regs.RDBAL, regs.RDBAH, regs.RDLEN, regs.RDH, regs.RDT, 0x7777,
]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(OFFSETS),
            st.integers(min_value=0, max_value=(1 << 32) - 1),
        ),
        max_size=25,
    )
)
def test_arbitrary_register_programs_never_crash(writes):
    kernel = Kernel()
    dev = E1000EDevice(kernel, PacketSink())
    for off, val in writes:
        dev.mmio_write(off, 4, val)
        dev.mmio_read(off, 4)
    dev.receive(b"frame-under-fuzz" + b"\x00" * 48)
    dev.stats()  # processing completions must also be safe


class TestMasterAbort:
    def test_bogus_ring_address_master_aborts(self):
        """TDT kick with TDBA pointing past RAM: DMA error, TX disabled,
        no exception at the doorbell store."""
        kernel = Kernel()
        dev = E1000EDevice(kernel, PacketSink())
        dev.mmio_write(regs.TDBAL, 4, 0xFFFF0000)
        dev.mmio_write(regs.TDBAH, 4, 0xFF)       # way past 64MB of RAM
        dev.mmio_write(regs.TDLEN, 4, 8 * regs.TDESC_SIZE)
        dev.mmio_write(regs.TCTL, 4, regs.TCTL_EN)
        dev.mmio_write(regs.TDT, 4, 3)            # must not raise
        assert dev.dma_errors == 1
        assert not (dev.tctl & regs.TCTL_EN)      # engine stopped
        assert any("master abort" in l for l in kernel.dmesg_log)

    def test_bogus_rx_buffer_counts_mpc(self):
        kernel = Kernel()
        dev = E1000EDevice(kernel, PacketSink())
        ring_phys = kernel.page_allocator.alloc_pages(1)
        # Descriptor 0 points at an unmapped bus address.
        kernel.ram.write(ring_phys, (1 << 50).to_bytes(8, "little"))
        dev.mmio_write(regs.RDBAL, 4, ring_phys & 0xFFFFFFFF)
        dev.mmio_write(regs.RDLEN, 4, 8 * regs.RDESC_SIZE)
        dev.mmio_write(regs.RDT, 4, 7)
        dev.mmio_write(regs.RCTL, 4, regs.RCTL_EN)
        assert dev.receive(b"x" * 64) is False
        assert dev.dma_errors == 1
        assert dev.mpc == 1

    def test_module_writing_garbage_tdba_cannot_panic_kernel(self):
        """End to end: a protected module scribbles the ring base over
        MMIO, then rings the doorbell.  The guard allows the MMIO window,
        the device master-aborts — the kernel stays up."""
        from repro.core.pipeline import CompileOptions, compile_module

        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        saboteur = compile_module(
            """
            __export void sabotage(long mmio) {
                unsigned int *tdbal = (unsigned int *)(mmio + 0x3800);
                *tdbal = 0xFFFF0000;
                unsigned int *tdbah = (unsigned int *)(mmio + 0x3804);
                *tdbah = 0xFF;
                unsigned int *tdt = (unsigned int *)(mmio + 0x3818);
                *tdt = 5;
            }
            """,
            CompileOptions(module_name="saboteur", key=system.signing_key),
        )
        loaded = system.kernel.insmod(saboteur)
        mmio_virt = system.netdev.read_reg(0) or 0  # not the base; compute:
        # The driver stored its ioremapped base in its adapter; fetch via
        # the device's virtual mapping instead.
        for m in system.kernel.address_space.mappings():
            if m.name == "mmio:e1000e":
                mmio_virt = m.base
                break
        system.kernel.run_function(loaded, "sabotage", [mmio_virt])
        assert system.device.dma_errors >= 1
        assert system.kernel.panicked is None  # machine survived
        # The NIC is wedged (TX disabled) but diagnosable:
        assert any("master abort" in l for l in system.kernel.dmesg_log)
