"""Driver tests: the mini-C e1000e driver through its full life cycle,
in both baseline and protected builds (paper §4.1: same source, same
compiler, with and without the transform)."""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import DRIVER_SOURCE, driver_source_lines, regs
from repro.net import ETH_ZLEN, make_test_frame


@pytest.fixture(params=[False, True], ids=["baseline", "carat"])
def system(request):
    return CaratKopSystem(SystemConfig(machine=None, protect=request.param))


class TestLifecycle:
    def test_probe_brings_link_up(self, system):
        stats = system.netdev.stats()
        assert stats["tx_packets"] == 0
        assert system.netdev.read_reg(regs.STATUS) & regs.STATUS_LU

    def test_probe_configures_ring(self, system):
        dev = system.device
        assert dev.ring_entries == regs.DEFAULT_RING_ENTRIES
        assert dev.tctl & regs.TCTL_EN
        assert dev.tdba != 0

    def test_dmesg_probe_banner(self, system):
        assert any("e1000e: probe ok" in l for l in system.kernel.dmesg_log)

    def test_down_up(self, system):
        system.netdev.down()
        frame = make_test_frame(128, 0)
        rc = system.netdev.xmit(frame)
        assert rc == -100  # ENETDOWN
        system.netdev.up()
        assert system.netdev.xmit(frame) == 0

    def test_remove_and_rmmod(self, system):
        system.teardown()
        assert system.kernel.lsmod() == []
        assert any("e1000e: removed" in l for l in system.kernel.dmesg_log)


class TestTransmit:
    def test_single_frame_reaches_sink_intact(self, system):
        frame = make_test_frame(128, seq=7)
        assert system.netdev.xmit(frame) == 0
        assert system.sink.packets == 1
        assert system.sink.recent[0] == frame.encode()

    def test_many_frames_in_order(self, system):
        system.sink.keep_last = 300
        for seq in range(300):
            assert system.netdev.xmit(make_test_frame(96, seq)) == 0
        assert system.sink.packets == 300
        # Ring (256 entries) wrapped; order and integrity preserved.
        for seq in (0, 150, 299):
            expect = make_test_frame(96, seq).encode()
            assert system.sink.recent[seq] == expect

    def test_runt_frames_padded_to_eth_zlen(self, system):
        frame = make_test_frame(20, 1)
        assert system.netdev.xmit(frame) == 0
        wire = system.sink.recent[0]
        assert len(wire) == ETH_ZLEN
        assert wire[:20] == frame.encode()
        assert wire[20:] == b"\x00" * (ETH_ZLEN - 20)

    def test_oversize_frame_rejected(self, system):
        # Craft a raw buffer above the MTU+header limit.
        rc = system.netdev.xmit(b"\x00" * 1515)
        assert rc == -22  # EINVAL
        assert system.netdev.stats()["tx_errors"] == 1

    def test_undersize_raw_buffer_rejected(self, system):
        assert system.netdev.xmit(b"\x00" * 4) == -22

    def test_driver_stats_track_bytes(self, system):
        system.netdev.xmit(make_test_frame(128, 0))
        system.netdev.xmit(make_test_frame(256, 1))
        stats = system.netdev.stats()
        assert stats["tx_packets"] == 2
        assert stats["tx_bytes"] == 128 + 256

    def test_device_stats_agree_with_driver(self, system):
        for seq in range(10):
            system.netdev.xmit(make_test_frame(100, seq))
        assert system.device.stats()["packets"] == 10
        assert system.netdev.stats()["tx_packets"] == 10

    def test_ring_cleaning_keeps_space_available(self, system):
        # 3x the ring size; without cleaning this would wedge at 255.
        for seq in range(768):
            assert system.netdev.xmit(make_test_frame(64, seq)) == 0
        stats = system.netdev.stats()
        assert stats["cleaned"] > 0
        assert stats["ring_space"] > 0


class TestBaselineVsCarat:
    def test_identical_wire_output(self):
        outs = {}
        for protect in (False, True):
            s = CaratKopSystem(SystemConfig(machine=None, protect=protect))
            s.sink.keep_last = 64
            for seq in range(64):
                s.netdev.xmit(make_test_frame(77, seq))
            outs[protect] = list(s.sink.recent)
        assert outs[False] == outs[True]

    def test_guard_counts(self):
        base = CaratKopSystem(SystemConfig(machine=None, protect=False))
        carat = CaratKopSystem(SystemConfig(machine=None, protect=True))
        assert base.driver_compiled.guard_count == 0
        assert carat.driver_compiled.guard_count > 40
        base.blast(size=128, count=10)
        carat.blast(size=128, count=10)
        assert base.guard_stats()["checks"] == 0
        assert carat.guard_stats()["checks"] > 100
        assert carat.guard_stats()["denied"] == 0

    def test_same_source_both_builds(self):
        """§4.1: 'No code was modified in the driver.'"""
        base = CaratKopSystem(SystemConfig(machine=None, protect=False))
        carat = CaratKopSystem(SystemConfig(machine=None, protect=True))
        assert base.driver_compiled.source_lines == carat.driver_compiled.source_lines
        assert base.driver_compiled.source_lines == driver_source_lines()

    def test_dma_not_guarded(self):
        """Paper §4: payload bytes move by DMA, unchecked by guards."""
        carat = CaratKopSystem(SystemConfig(machine=None, protect=True))
        checks_before = carat.guard_stats()["checks"]
        small = carat.netdev.xmit(make_test_frame(64, 0))
        checks_small = carat.guard_stats()["checks"] - checks_before
        checks_mid = carat.guard_stats()["checks"]
        big = carat.netdev.xmit(make_test_frame(1500, 1))
        checks_big = carat.guard_stats()["checks"] - checks_mid
        assert small == 0 and big == 0
        # 23x the payload, same number of guard checks (+/- clean-path
        # variance): the driver's guarded work is size-independent.
        assert abs(checks_big - checks_small) <= 5
