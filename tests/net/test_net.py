"""Network substrate tests: frames, sink, sockets, blaster."""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.net import (
    ETH_FRAME_LEN,
    ETH_HEADER_LEN,
    ETHERTYPE_EXPERIMENTAL,
    EthernetFrame,
    PacketSink,
    make_test_frame,
)


class TestFrames:
    def test_encode_decode_roundtrip(self):
        f = EthernetFrame(b"\x01" * 6, b"\x02" * 6, 0x0800, b"payload")
        g = EthernetFrame.decode(f.encode())
        assert g.dst == f.dst and g.src == f.src
        assert g.ethertype == 0x0800 and g.payload == b"payload"

    def test_length_includes_header(self):
        f = make_test_frame(128)
        assert len(f) == 128
        assert len(f.encode()) == 128
        assert len(f.payload) == 128 - ETH_HEADER_LEN

    def test_test_frame_carries_sequence(self):
        a = make_test_frame(64, seq=1).encode()
        b = make_test_frame(64, seq=2).encode()
        assert a != b
        assert a[:14] == b[:14]  # same header

    def test_test_frame_uses_experimental_ethertype(self):
        f = make_test_frame(64)
        assert f.ethertype == ETHERTYPE_EXPERIMENTAL

    def test_size_validation(self):
        with pytest.raises(ValueError):
            make_test_frame(10)
        with pytest.raises(ValueError):
            make_test_frame(ETH_FRAME_LEN + 1)
        make_test_frame(ETH_HEADER_LEN)  # minimum ok

    def test_mac_validation(self):
        with pytest.raises(ValueError):
            EthernetFrame(b"\x01" * 5, b"\x02" * 6, 0x0800, b"")
        with pytest.raises(ValueError):
            EthernetFrame(b"\x01" * 6, b"\x02" * 6, 0x10000, b"")

    def test_decode_short_frame(self):
        with pytest.raises(ValueError):
            EthernetFrame.decode(b"short")


class TestSink:
    def test_counts_and_histogram(self):
        s = PacketSink()
        s.deliver(b"a" * 64)
        s.deliver(b"b" * 64)
        s.deliver(b"c" * 128)
        assert s.packets == 3 and s.octets == 256
        assert s.size_histogram == {64: 2, 128: 1}

    def test_keep_last_bound(self):
        s = PacketSink(keep_last=2)
        for i in range(5):
            s.deliver(bytes([i]))
        assert len(s.recent) == 2
        assert s.last() == b"\x04"

    def test_reset(self):
        s = PacketSink()
        s.deliver(b"x")
        s.reset()
        assert s.packets == 0 and s.last() is None


class TestSocketAndBlaster:
    def test_sendmsg_latency_measured(self):
        sys_ = CaratKopSystem(SystemConfig(machine="r350"))
        r = sys_.socket.sendmsg(make_test_frame(128, 0))
        assert r.rc == 0
        assert 200 < r.latency_cycles < 20_000
        assert not r.stalled

    def test_blast_result_accounting(self):
        sys_ = CaratKopSystem(SystemConfig(machine="r350"))
        result = sys_.blast(size=128, count=50, capture_latency=True)
        assert result.packets_requested == 50
        assert result.packets_sent == 50
        assert result.errors == 0
        assert len(result.latencies) == 50
        assert result.mean_latency > 0
        assert result.throughput_pps > 0
        assert sys_.sink.packets == 50

    def test_throughput_in_plausible_band(self):
        """Absolute pps must land in the paper's 90k-135k window."""
        for machine in ("r350", "r415"):
            sys_ = CaratKopSystem(SystemConfig(machine=machine))
            result = sys_.blast(size=128, count=200)
            assert 90_000 < result.throughput_pps < 135_000, machine

    def test_latency_capture_off_by_default(self):
        sys_ = CaratKopSystem(SystemConfig(machine="r350"))
        assert sys_.blast(size=128, count=5).latencies == []

    def test_functional_mode_counts_only(self):
        sys_ = CaratKopSystem(SystemConfig(machine=None))
        result = sys_.blast(size=128, count=20)
        assert result.packets_sent == 20
        assert result.total_cycles == 0.0
