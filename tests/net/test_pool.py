"""Process-pool pktblast: partitioning and the deterministic merge.

The wall-clock scale-out assertion lives in
``benchmarks/test_smp_scaling.py`` (it needs real cores); here we pin
the partition math and the merge semantics with in-process workers.
"""

import pytest

from repro.net import PoolResult, partition, pool_blast


class TestPartition:
    def test_even_split(self):
        assert partition(100, 4) == [25, 25, 25, 25]

    def test_remainder_goes_to_earlier_workers(self):
        assert partition(10, 3) == [4, 3, 3]
        assert partition(5, 4) == [2, 1, 1, 1]

    def test_more_workers_than_packets(self):
        assert partition(2, 4) == [1, 1, 0, 0]

    def test_total_is_preserved(self):
        for count in (0, 1, 7, 100, 999):
            for workers in (1, 2, 3, 8):
                assert sum(partition(count, workers)) == count

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            partition(10, 0)


class TestPoolBlast:
    def _blast(self, workers, count=80):
        return pool_blast(
            workers,
            size=128,
            count=count,
            config_kwargs={"machine": "r415", "protect": True},
            processes=False,  # sequential in-process: same merge math
        )

    def test_merge_accounts_for_every_packet(self):
        result = self._blast(3, count=80)
        assert isinstance(result, PoolResult)
        assert result.workers == 3
        assert result.packets_requested == 80
        assert result.packets_sent == 80
        assert result.errors == 0
        assert [w["packets_sent"] for w in result.per_worker] == [27, 27, 26]

    def test_simulated_quantities_merge_by_summation(self):
        merged = self._blast(2, count=60)
        assert merged.total_cycles == sum(
            w["total_cycles"] for w in merged.per_worker
        )
        for key, value in merged.guard_stats.items():
            assert value == sum(
                w["guard_stats"][key] for w in merged.per_worker
            )

    def test_workers_are_deterministic_replicas(self):
        """Same share => byte-identical simulated results per worker
        (each worker is its own complete system on its own clock).
        Translation-cache traffic is process-global warmth, not
        simulated state, so it is excluded from the comparison."""
        merged = self._blast(2, count=60)
        a, b = merged.per_worker

        def sim_stats(report):
            return {k: v for k, v in report["guard_stats"].items()
                    if not k.startswith("translation_")}

        assert a["packets_sent"] == b["packets_sent"] == 30
        assert a["total_cycles"] == b["total_cycles"]
        assert sim_stats(a) == sim_stats(b)

    def test_wall_pps_is_gated_by_the_straggler(self):
        merged = self._blast(2, count=40)
        slowest = max(w["wall_elapsed_s"] for w in merged.per_worker)
        assert merged.wall_elapsed_s == slowest
        assert merged.wall_pps == pytest.approx(40 / slowest)

    def test_single_worker_degenerates_to_plain_blast(self):
        merged = self._blast(1, count=25)
        assert merged.workers == 1
        assert merged.packets_sent == 25
        assert len(merged.per_worker) == 1

    def test_trace_merge(self):
        merged = pool_blast(
            2, size=128, count=30,
            config_kwargs={"machine": "r415", "protect": True},
            trace=True, processes=False,
        )
        assert merged.trace_events  # counters were recorded and summed
        for key, value in merged.trace_events.items():
            assert value == sum(
                w["trace_events"][key] for w in merged.per_worker
            )
