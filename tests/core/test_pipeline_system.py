"""Core orchestration tests: the caratcc pipeline and system assembly."""

import pytest

from repro.core.pipeline import CompileOptions, CompileStats, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import DRIVER_SOURCE

SRC = """
long table[8];
__export long f(long i) { table[i] = i; return table[i]; }
"""


class TestPipeline:
    def test_protected_by_default(self):
        compiled = compile_module(SRC, CompileOptions(module_name="p"))
        assert compiled.is_protected
        assert compiled.guard_count > 0

    def test_baseline_build(self):
        compiled = compile_module(
            SRC, CompileOptions(module_name="p", protect=False)
        )
        assert not compiled.is_protected
        assert compiled.guard_count == 0

    def test_stats_populated(self):
        compiled = compile_module(SRC, CompileOptions(module_name="p"))
        st = compiled.stats
        assert isinstance(st, CompileStats)
        assert st.source_lines == 2  # two non-blank source lines
        assert st.functions == 1
        assert st.loads >= 1 and st.stores >= 1
        assert st.guards == st.loads + st.stores
        assert st.code_growth > 1.0
        assert "kop-guard" in st.passes_run
        assert "mem2reg" in st.passes_run

    def test_signing_optional(self, key):
        unsigned = compile_module(SRC, CompileOptions(module_name="p"))
        assert unsigned.signature is None
        signed = compile_module(SRC, CompileOptions(module_name="p", key=key))
        assert signed.signature is not None
        assert signed.signature.guard_count == signed.guard_count

    def test_guard_optimizer_reduces_static_guards(self):
        src = """
        __export long f(long *p, long n) {
            long s = 0;
            for (long i = 0; i < n; i++) { s += *p + *p; }
            return s;
        }
        """
        plain = compile_module(src, CompileOptions(module_name="a"))
        opt = compile_module(
            src, CompileOptions(module_name="b", optimize_guards=True)
        )
        assert opt.guard_count < plain.guard_count

    def test_options_and_kwargs_exclusive(self):
        with pytest.raises(TypeError):
            compile_module(SRC, CompileOptions(), module_name="x")

    def test_kwargs_shorthand(self):
        compiled = compile_module(SRC, module_name="kw", protect=False)
        assert compiled.name == "kw"

    def test_driver_compiles_both_ways(self):
        base = compile_module(
            DRIVER_SOURCE, CompileOptions(module_name="e1000e", protect=False)
        )
        carat = compile_module(
            DRIVER_SOURCE, CompileOptions(module_name="e1000e", protect=True)
        )
        assert base.guard_count == 0
        assert carat.guard_count >= 40
        # Guard injection grows the instruction count but by a bounded
        # factor (each guard is a call + at most one cast).
        assert 1.0 < carat.stats.code_growth < 2.5


class TestSystemAssembly:
    def test_boot_produces_working_stack(self):
        sys_ = CaratKopSystem(SystemConfig(machine="r350"))
        assert sys_.technique == "carat"
        assert sys_.kernel.lsmod() == ["e1000e"]
        result = sys_.blast(size=128, count=10)
        assert result.errors == 0
        assert sys_.guard_stats()["checks"] > 0

    def test_machine_accepts_model_instance(self):
        from repro.vm import r415

        sys_ = CaratKopSystem(SystemConfig(machine=r415()))
        assert "R415" in sys_.machine.name

    def test_custom_policy_index(self):
        from repro.policy import SortedRegionIndex

        sys_ = CaratKopSystem(
            SystemConfig(machine=None, policy_index=SortedRegionIndex())
        )
        sys_.blast(size=128, count=5)
        assert sys_.policy.index.name == "sorted-bsearch"
        assert sys_.guard_stats()["checks"] > 0

    def test_strict_kernel_validates_driver(self):
        sys_ = CaratKopSystem(SystemConfig(machine=None, strict_kernel=True))
        assert sys_.driver_compiled.signature is not None

    def test_region_sweep_config(self):
        sys_ = CaratKopSystem(SystemConfig(machine=None, regions=16))
        assert sys_.policy_manager.count() == 16
        sys_.blast(size=128, count=5)  # still runs clean

    def test_teardown(self):
        sys_ = CaratKopSystem(SystemConfig(machine=None))
        sys_.blast(size=128, count=3)
        sys_.teardown()
        assert sys_.kernel.lsmod() == []

    def test_config_and_kwargs_exclusive(self):
        with pytest.raises(TypeError):
            CaratKopSystem(SystemConfig(), machine=None)
