"""Module container (.kop) and loader-rollback tests."""

import json

import pytest

from repro.core.container import ContainerError, load_module, save_module
from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel, LoadError
from repro.policy import CaratPolicyModule, PolicyManager
from repro.signing import SignatureError, verify_signature

SRC = """
long state = 5;
__export long get(void) { return state; }
__export long set(long v) { state = v; return state; }
"""


@pytest.fixture()
def kop_file(tmp_path, key):
    compiled = compile_module(SRC, CompileOptions(module_name="boxed", key=key))
    return save_module(compiled, tmp_path / "boxed.kop")


class TestContainer:
    def test_roundtrip_preserves_ir_and_signature(self, kop_file, key):
        loaded = load_module(kop_file)
        assert loaded.name == "boxed"
        assert loaded.signature is not None
        verify_signature(loaded.ir, loaded.signature, key)
        assert loaded.is_protected
        assert loaded.guard_count > 0

    def test_loaded_container_runs(self, kop_file, key):
        kernel = Kernel(signing_key=key, require_protected_modules=True)
        CaratPolicyModule(kernel).install()
        PolicyManager(kernel).install_two_region_policy()
        loaded = kernel.insmod(load_module(kop_file))
        assert kernel.run_function(loaded, "get", []) == 5
        assert kernel.run_function(loaded, "set", [9]) == 9

    def test_tampered_ir_rejected_at_insmod(self, kop_file, key):
        doc = json.loads(kop_file.read_text())
        doc["ir"] = doc["ir"].replace("i64 5", "i64 6")  # flip the init
        kop_file.write_text(json.dumps(doc))
        tampered = load_module(kop_file)
        kernel = Kernel(signing_key=key)
        with pytest.raises(LoadError, match="digest mismatch"):
            kernel.insmod(tampered)

    def test_unsigned_container(self, tmp_path):
        compiled = compile_module(SRC, CompileOptions(module_name="nosig"))
        path = save_module(compiled, tmp_path / "nosig.kop")
        assert load_module(path).signature is None

    def test_wrong_format_rejected(self, tmp_path):
        p = tmp_path / "x.kop"
        p.write_text(json.dumps({"format": "elf", "version": 1}))
        with pytest.raises(ContainerError, match="not a carat-kop"):
            load_module(p)

    def test_bad_version(self, tmp_path):
        p = tmp_path / "x.kop"
        p.write_text(json.dumps({"format": "carat-kop-module", "version": 99}))
        with pytest.raises(ContainerError, match="version"):
            load_module(p)

    def test_not_json(self, tmp_path):
        p = tmp_path / "x.kop"
        p.write_text("\x7fELF...")
        with pytest.raises(ContainerError, match="unreadable"):
            load_module(p)

    def test_missing_fields(self, tmp_path):
        p = tmp_path / "x.kop"
        p.write_text(json.dumps({"format": "carat-kop-module", "version": 1}))
        with pytest.raises(ContainerError, match="missing field"):
            load_module(p)

    def test_caratcc_emits_container(self, tmp_path, capsys):
        from repro.cli import caratcc_main

        src = tmp_path / "m.c"
        src.write_text(SRC)
        out = tmp_path / "m.kop"
        assert caratcc_main([str(src), "--kop", str(out)]) == 0
        loaded = load_module(out)
        assert loaded.signature is not None
        assert loaded.is_protected


class TestLoaderRollback:
    def test_failed_link_leaves_no_mapping(self, kernel):
        bad = compile_module(
            "extern long missing_fn(void);\n"
            "__export long f(void) { return missing_fn(); }",
            CompileOptions(module_name="dangling", protect=False),
        )
        mappings_before = len(kernel.address_space.mappings())
        pages_before = kernel.page_allocator.allocated_pages
        with pytest.raises(LoadError, match="unresolved symbol"):
            kernel.insmod(bad)
        assert len(kernel.address_space.mappings()) == mappings_before
        assert kernel.page_allocator.allocated_pages == pages_before
        assert kernel.lsmod() == []

    def test_failed_data_link_rolls_back(self, kernel):
        bad = compile_module(
            "extern long missing_global;\n"
            "__export long f(void) { return missing_global; }",
            CompileOptions(module_name="dangling2", protect=False),
        )
        mappings_before = len(kernel.address_space.mappings())
        with pytest.raises(LoadError, match="unresolved data symbol"):
            kernel.insmod(bad)
        assert len(kernel.address_space.mappings()) == mappings_before

    def test_retry_after_fix_succeeds(self, kernel):
        bad = compile_module(
            "extern long missing_fn(void);\n"
            "__export long f(void) { return missing_fn(); }",
            CompileOptions(module_name="fixme", protect=False),
        )
        with pytest.raises(LoadError):
            kernel.insmod(bad)
        kernel.export_native("missing_fn", lambda ctx: 77)
        loaded = kernel.insmod(bad)
        assert kernel.run_function(loaded, "f", []) == 77
