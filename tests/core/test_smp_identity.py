"""Cooperative SMP bit-identity: --cpus must never change the physics.

The cooperative model shards work across simulated CPUs but drains it
round-robin on one host thread, reconstructing the exact unsharded
global packet order — so every simulated observable (cycles, throughput,
guard decisions, stalls) must be byte-identical across CPU counts, under
both engines.  Cache-traffic counters (guard decision caches, the
process-global translation code cache) measure warmth, not simulated
state, and are excluded from the digest.
"""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig

# comparisons/structure_checks count *real* index walks — decision-cache
# hits skip them — so like the hit/miss counters they measure per-CPU
# cache warmth, not simulated state.
_CACHE_KEYS = ("guard_cache_hits", "guard_cache_misses",
               "comparisons", "structure_checks")


def _digest(system, result):
    guard_stats = {
        k: v for k, v in system.guard_stats().items()
        if k not in _CACHE_KEYS and not k.startswith("translation_")
    }
    return {
        "packets_sent": result.packets_sent,
        "errors": result.errors,
        "stalls": result.stalls,
        "total_cycles": result.total_cycles,
        "throughput_pps": result.throughput_pps,
        "timing_cycles": system.kernel.vm.timing.cycles,
        "guard_stats": guard_stats,
    }


def _run(engine, cpus, protect=True, smp_seed=0, capture_latency=False):
    system = CaratKopSystem(SystemConfig(
        machine="r415", protect=protect, engine=engine,
        cpus=cpus, smp_seed=smp_seed,
    ))
    result = system.blast(size=128, count=120,
                          capture_latency=capture_latency)
    return system, result


@pytest.mark.parametrize("engine", ["interp", "compiled"])
class TestCpuCountIdentity:
    def test_cpus_124_identical_protected(self, engine):
        baseline = None
        for cpus in (1, 2, 4):
            system, result = _run(engine, cpus)
            digest = _digest(system, result)
            if baseline is None:
                baseline = digest
            else:
                assert digest == baseline, f"cpus={cpus} diverged"

    def test_cpus_124_identical_baseline_driver(self, engine):
        digests = [
            _digest(*_run(engine, cpus, protect=False))
            for cpus in (1, 2, 4)
        ]
        assert digests[0] == digests[1] == digests[2]

    def test_seed_rotation_preserves_identity(self, engine):
        """smp_seed rotates which CPU goes first, but the blaster's shard
        offsets compensate — the global packet order (and everything
        downstream of it) is unchanged."""
        reference = _digest(*_run(engine, cpus=4, smp_seed=0))
        for seed in (1, 3):
            assert _digest(*_run(engine, 4, smp_seed=seed)) == reference

    def test_latency_stream_identical(self, engine):
        _, r1 = _run(engine, cpus=1, capture_latency=True)
        _, r4 = _run(engine, cpus=4, capture_latency=True)
        assert r1.latencies == r4.latencies


class TestShardingActuallyHappens:
    """Guard against a degenerate 'identity' where CPU 0 does everything."""

    def test_work_is_attributed_across_cpus(self):
        system, result = _run("compiled", cpus=4)
        assert result.errors == 0
        rows = system.policy.stats_per_cpu()
        assert len(rows) == 4
        assert all(row["checks"] > 0 for row in rows)
        merged = system.policy.stats.as_dict()
        for key in merged:
            assert merged[key] == sum(row[key] for row in rows)

    def test_scheduler_recorded_switches(self):
        system, _ = _run("compiled", cpus=4)
        assert system.kernel.smp.switches > 0
        single, _ = _run("compiled", cpus=1)
        assert single.kernel.smp.switches == 0
