"""Fault-injection harness: deterministic schedules, scoped hooks."""

import pytest

from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import regs
from repro.faults import FaultInjector


class TestSchedules:
    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(mmio_garble_period=-1)
        with pytest.raises(ValueError):
            FaultInjector(irq_drop_period=-3)

    def test_period_zero_never_faults(self):
        inj = FaultInjector()
        for _ in range(100):
            assert inj.mmio_garble(regs.GPTC) is None
            assert inj.dma_stall_cycles(128) == 0.0
            assert inj.drop_irq(42) is False
            assert inj.xmit_transient() is False
            assert inj.drop_publish(0) is False
            assert inj.publish_stall() is False
            assert inj.corrupt_replica(0) is False
            assert inj.torn_batch() is False
            assert inj.quota_race() is False
            assert inj.vblk_desc_garble() is False
            assert inj.vblk_completion_stall_cycles() == 0.0
            assert inj.vblk_writeback_drop() is False
            assert inj.vblk_doorbell_drop() is False
            assert inj.vblk_cq_stall_cycles() == 0.0
        assert inj.report() == {
            "garbled_reads": 0, "stalled_frames": 0,
            "dropped_irqs": 0, "failed_xmits": 0,
            "dropped_publishes": 0, "stalled_publishes": 0,
            "corrupted_replicas": 0, "torn_batches": 0,
            "quota_race_storms": 0,
            "garbled_descriptors": 0, "stalled_completions": 0,
            "dropped_writebacks": 0,
            "dropped_doorbells": 0, "stalled_cqs": 0,
        }

    def test_every_nth_eligible_event_faults(self):
        inj = FaultInjector(irq_drop_period=3)
        pattern = [inj.drop_irq(42) for _ in range(9)]
        assert pattern == [False, False, True] * 3
        assert inj.dropped_irqs == 3

    def test_control_registers_never_garbled(self):
        inj = FaultInjector(mmio_garble_period=1)  # garble EVERY eligible read
        for off in (regs.CTRL, regs.STATUS, regs.TCTL, regs.RCTL,
                    regs.TDT, regs.RDT, regs.ICR, regs.IMS):
            assert inj.mmio_garble(off) is None
        # ...while telemetry counters garble on schedule.
        assert inj.mmio_garble(regs.GPTC) == 0xFFFFFFFF
        assert inj.mmio_garble(regs.TOTL) == 0xFFFFFFFF
        assert inj.garbled_reads == 2


class TestWiring:
    def test_attach_detach_identity(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        mine = FaultInjector().attach(system)
        other = FaultInjector()
        other.detach(system)  # not the attached one: must not unhook mine
        assert system.device.fault_injector is mine
        assert system.netdev.fault_injector is mine
        assert system.kernel.irq.fault_injector is mine
        mine.detach(system)
        assert system.device.fault_injector is None
        assert system.netdev.fault_injector is None
        assert system.kernel.irq.fault_injector is None

    def test_unattached_system_pays_nothing(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        assert system.device.fault_injector is None
        result = system.blast(size=128, count=10)
        assert result.errors == 0 and result.stalls == 0


class TestUnderTraffic:
    def _blast(self):
        system = CaratKopSystem(SystemConfig(machine="r350"))
        inj = FaultInjector(
            mmio_garble_period=5, dma_stall_period=4, irq_drop_period=3,
            xmit_fail_period=6,
        ).attach(system)
        system.socket.max_retries = 3
        system.netdev.enable_interrupts()
        result = system.blast(size=128, count=100)
        return inj.report(), result, system.sink.packets

    def test_identical_runs_are_identical(self):
        a = self._blast()
        b = self._blast()
        assert a == b

    def test_transients_are_retried_not_lost(self):
        report, result, delivered = self._blast()
        assert report["failed_xmits"] > 0
        assert result.stalls >= report["failed_xmits"]
        assert result.errors == 0
        assert delivered == 100

    def test_dma_stalls_slow_the_wire(self):
        def wire_busy_until(period):
            system = CaratKopSystem(SystemConfig(machine="r350"))
            if period:
                FaultInjector(dma_stall_period=period).attach(system)
            system.blast(size=128, count=50)
            return system.device._wire_free_at

        # Stalled frames drain later: the wire stays busy past the clean
        # run's completion time (the mechanism behind ring-full storms).
        assert wire_busy_until(2) > wire_busy_until(0)
