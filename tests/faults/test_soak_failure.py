"""S2: a soak cycle that dies *mid-rollback* must not raise through.

``caratkop-soak`` turns the crash into a structured nonzero exit: the
kernel journal is drained (every module's pending side effects rolled
back), the drain is verified, and the report carries a machine-readable
``error`` block instead of a traceback.
"""

import pytest

from repro.faults import run_soak
from repro.faults.soak import SoakError
from repro.kernel.kernel import Kernel


class TestCycleCrashIsStructured:
    def _crash_once(self, monkeypatch, exc):
        """Make the first eject of the run raise (the rollback machinery
        itself failing — exactly the mid-rollback crash S2 describes)."""
        calls = {"n": 0}
        real = Kernel.eject

        def flaky(self, name, reason="policy violation"):
            calls["n"] += 1
            if calls["n"] == 1:
                raise exc
            return real(self, name, reason)

        monkeypatch.setattr(Kernel, "eject", flaky)

    def test_journal_is_drained_and_error_reported(self, monkeypatch):
        self._crash_once(monkeypatch, RuntimeError("eject path died"))
        with pytest.raises(SoakError) as e:
            run_soak(cycles=3, machine=None, blast_count=5)
        report = e.value.report
        err = report["error"]
        assert err["cycle"] == 0
        assert err["type"] == "RuntimeError"
        assert "eject path died" in err["detail"]
        # The hostile module's insmod side effects were still journalled
        # when the cycle died; the drain must have swept them.
        assert err["journal_drained_modules"] >= 1
        assert err["journal_drained_records"] >= 1
        assert err["journal_empty_after_drain"] is True
        assert report["cycles_completed"] == 0

    def test_soak_error_message_is_structured(self, monkeypatch):
        self._crash_once(monkeypatch, ValueError("bad unwind"))
        with pytest.raises(SoakError) as e:
            run_soak(cycles=2, machine=None, blast_count=5)
        message = str(e.value)
        assert "cycle 0 failed mid-rollback" in message
        assert "ValueError: bad unwind" in message
        assert "journal drained" in message

    def test_invariant_failures_still_raise_soak_error_directly(self):
        """A *detected* invariant violation is not a crash: it raises
        SoakError without the drain path (no ``error`` block)."""
        report = run_soak(cycles=2, machine=None, blast_count=5)
        assert "error" not in report  # clean runs stay clean

    def test_cli_exits_nonzero_on_crash(self, monkeypatch, tmp_path,
                                        capsys):
        import json

        from repro.cli import soak_main

        self._crash_once(monkeypatch, RuntimeError("eject path died"))
        out = tmp_path / "soak.json"
        rc = soak_main(["--cycles", "2", "--count", "5",
                        "--report", str(out)])
        assert rc == 1
        written = json.loads(out.read_text())
        assert written["error"]["journal_empty_after_drain"] is True
        assert "FAILED" in capsys.readouterr().err
