"""Statistics helper tests."""

import numpy as np
import pytest

from repro.bench.stats import (
    ascii_cdf,
    ascii_histogram,
    cdf_points,
    histogram,
    median,
    percentile,
    relative_median_change,
    summarize,
)


class TestBasics:
    def test_percentile_median(self):
        xs = [1, 2, 3, 4, 5]
        assert median(xs) == 3
        assert percentile(xs, 0) == 1
        assert percentile(xs, 100) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_points_monotone(self):
        pts = cdf_points([3, 1, 2])
        xs = [x for x, _ in pts]
        ps = [p for _, p in pts]
        assert xs == sorted(xs)
        assert ps == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_cdf_points_empty(self):
        assert cdf_points([]) == []

    def test_histogram_bins(self):
        edges, counts = histogram([1, 1, 2, 9], bins=4, lo=0, hi=10)
        assert len(edges) == 5
        assert sum(counts) == 4

    def test_histogram_range_filter(self):
        _, counts = histogram([1, 2, 1000], bins=2, lo=0, hi=10)
        assert sum(counts) == 2  # outlier excluded

    def test_summarize_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3 and s["mean"] == 2.0 and s["median"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_relative_median_change_direction(self):
        baseline = [100.0] * 5
        slower = [99.0] * 5
        assert relative_median_change(baseline, slower) == pytest.approx(0.01)
        assert relative_median_change(baseline, baseline) == 0.0


class TestAsciiRendering:
    def test_cdf_renders_all_series(self):
        out = ascii_cdf({"a": [1, 2, 3], "b": [2, 3, 4]})
        assert "100%" in out and "a" in out and "b" in out

    def test_cdf_degenerate_single_value(self):
        out = ascii_cdf({"a": [5.0, 5.0]})
        assert "100%" in out

    def test_histogram_renders(self):
        rng = np.random.default_rng(0)
        out = ascii_histogram({"x": rng.normal(100, 5, 200)})
        assert "█" in out
