"""Report/check_figure tests including the negative paths."""

import numpy as np
import pytest

from repro.bench.harness import FigureResult
from repro.bench.report import (
    PAPER_CLAIMS,
    check_figure,
    experiments_md_rows,
    render_figure,
)


def _throughput(fid, base_pps, carat_pps, n=9):
    return FigureResult(
        fid, "t",
        {"baseline": np.full(n, float(base_pps)),
         "carat": np.full(n, float(carat_pps))},
    )


class TestCheckFigure:
    def test_fig3_passes_within_limit(self):
        ok, _ = check_figure(_throughput("fig3", 120_000, 119_400))
        assert ok

    def test_fig3_fails_over_limit(self):
        ok, _ = check_figure(_throughput("fig3", 120_000, 118_000))
        assert not ok

    def test_fig4_tighter_limit_than_fig3(self):
        borderline = _throughput("fig4", 120_000, 119_600)  # 0.33%
        assert not check_figure(borderline)[0]
        assert check_figure(_throughput("fig4", 120_000, 119_940))[0]

    def test_carat_faster_than_baseline_fails(self):
        # A reproduction where guards *speed things up* is wrong too.
        ok, _ = check_figure(_throughput("fig4", 120_000, 121_000))
        assert not ok

    def test_fig5_ordering_violation(self):
        r = FigureResult(
            "fig5", "t",
            {
                "baseline": np.full(5, 100_000.0),
                "carat": np.full(5, 99_990.0),
                "carat16": np.full(5, 99_995.0),  # out of order
                "carat64": np.full(5, 99_900.0),
            },
        )
        ok, detail = check_figure(r)
        assert not ok and "VIOLATED" in detail

    def test_fig5_excess_overhead(self):
        r = FigureResult(
            "fig5", "t",
            {
                "baseline": np.full(5, 100_000.0),
                "carat": np.full(5, 99_000.0),
                "carat16": np.full(5, 98_000.0),
                "carat64": np.full(5, 95_000.0),  # 5%: too slow
            },
        )
        assert not check_figure(r)[0]

    def test_fig6_shapes(self):
        good = FigureResult(
            "fig6", "t",
            {str(s): np.asarray([v]) for s, v in
             [(64, 1.024), (128, 1.01), (256, 1.002), (512, 1.001),
              (1024, 1.001), (1500, 1.001)]},
        )
        assert check_figure(good)[0]
        bad_peak = FigureResult(
            "fig6", "t",
            {str(s): np.asarray([v]) for s, v in
             [(64, 1.08), (128, 1.01), (256, 1.0), (512, 1.0),
              (1024, 1.0), (1500, 1.0)]},
        )
        assert not check_figure(bad_peak)[0]
        wrong_end = FigureResult(
            "fig6", "t",
            {str(s): np.asarray([v]) for s, v in
             [(64, 1.02), (128, 1.01), (256, 1.0), (512, 1.0),
              (1024, 1.0), (1500, 1.02)]},
        )
        assert not check_figure(wrong_end)[0]

    def test_fig7_median_gap(self):
        good = FigureResult(
            "fig7", "t",
            {"Base": np.full(100, 690.0), "Carat": np.full(100, 699.0)},
        )
        assert check_figure(good)[0]
        bad = FigureResult(
            "fig7", "t",
            {"Base": np.full(100, 690.0), "Carat": np.full(100, 760.0)},
        )
        assert not check_figure(bad)[0]

    def test_unknown_figure_id(self):
        with pytest.raises(ValueError):
            check_figure(FigureResult("fig9", "t", {}))


class TestRendering:
    def test_every_known_figure_has_a_claim(self):
        assert set(PAPER_CLAIMS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "figblk",
        }

    def test_render_marks_failures(self):
        bad = _throughput("fig4", 120_000, 110_000)
        text = render_figure(bad)
        assert "FAIL" in text

    def test_markdown_rows(self):
        results = {"fig4": _throughput("fig4", 120_000, 119_950)}
        md = experiments_md_rows(results)
        assert md.startswith("| figure |")
        assert "| fig4 |" in md and "PASS" in md
