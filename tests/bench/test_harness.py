"""Harness tests: calibration, trial generation, figure shape checks."""

import numpy as np
import pytest

from repro.bench import (
    WorkloadConfig,
    calibrate,
    check_figure,
    latency_samples,
    render_figure,
    run_fig4,
    run_fig6,
    throughput_samples,
)


class TestCalibration:
    def test_calibration_measures_real_execution(self):
        cfg = WorkloadConfig(machine="r350", protect=True,
                             calibration_packets=60, warmup_packets=16)
        cal = calibrate(cfg)
        assert cal.cycles_per_packet > 10_000  # user + syscall + driver
        assert cal.sendmsg_cycles > 200
        assert cal.guards_per_packet > 5
        assert cal.entries_per_guard >= 1.0
        assert cal.guard_count_static > 40

    def test_baseline_has_no_guards(self):
        cfg = WorkloadConfig(machine="r350", protect=False,
                             calibration_packets=40, warmup_packets=8)
        cal = calibrate(cfg)
        assert cal.guards_per_packet == 0

    def test_carat_costs_more_than_baseline(self):
        costs = {}
        for protect in (False, True):
            cfg = WorkloadConfig(machine="r350", protect=protect,
                                 calibration_packets=60, warmup_packets=16)
            costs[protect] = calibrate(cfg).cycles_per_packet
        assert costs[True] > costs[False]
        # ...but only barely (the paper's whole point).
        assert (costs[True] - costs[False]) / costs[False] < 0.005

    def test_region_count_raises_entries_scanned(self):
        scans = {}
        for n in (2, 64):
            cfg = WorkloadConfig(machine="r350", regions=n,
                                 calibration_packets=40, warmup_packets=8)
            scans[n] = calibrate(cfg).entries_per_guard
        assert scans[64] > scans[2] * 10


class TestTrialGeneration:
    def _cfg(self, **kw):
        base = dict(machine="r350", trials=17, packets_per_trial=100_000,
                    calibration_packets=40, warmup_packets=8, seed=7)
        base.update(kw)
        return WorkloadConfig(**base)

    def test_sample_count_and_band(self):
        samples = throughput_samples(self._cfg())
        assert len(samples) == 17
        assert np.all(samples > 80_000) and np.all(samples < 140_000)

    def test_common_random_numbers_pair_techniques(self):
        base = throughput_samples(self._cfg(protect=False))
        carat = throughput_samples(self._cfg(protect=True))
        # Same noise stream: carat is slower in EVERY paired trial.
        assert np.all(base >= carat)
        # And by a hair, not a cliff.
        assert np.median((base - carat) / base) < 0.002

    def test_seed_changes_noise(self):
        a = throughput_samples(self._cfg(seed=1))
        b = throughput_samples(self._cfg(seed=2))
        assert not np.allclose(a, b)

    def test_deterministic_for_fixed_seed(self):
        a = throughput_samples(self._cfg())
        b = throughput_samples(self._cfg())
        assert np.allclose(a, b)

    def test_burst_model_only_affects_carat(self):
        base_plain = throughput_samples(self._cfg(protect=False, size=64))
        base_burst = throughput_samples(
            self._cfg(protect=False, size=64, burst_model=True)
        )
        assert np.allclose(base_plain, base_burst)
        carat_plain = throughput_samples(self._cfg(protect=True, size=64))
        carat_burst = throughput_samples(
            self._cfg(protect=True, size=64, burst_model=True)
        )
        assert carat_burst.mean() < carat_plain.mean()

    def test_interp_fidelity_agrees_with_calibrated(self):
        """The two methodologies must agree on mean throughput."""
        interp_cfg = self._cfg(fidelity="interp", trials=3,
                               packets_per_trial=120)
        interp = throughput_samples(interp_cfg)
        cal_cfg = self._cfg(trials=9)
        calibrated = throughput_samples(cal_cfg)
        assert interp.mean() == pytest.approx(calibrated.mean(), rel=0.08)

    def test_latency_samples_shape(self):
        lat = latency_samples(
            self._cfg(), packets=3000, outlier_probability=0.01
        )
        assert len(lat) == 3000
        med = np.median(lat)
        assert 400 < med < 1200  # the Figure 7 x-range
        assert lat.max() > 1e6  # deschedule outliers present


class TestFigureCheck:
    def test_fig4_small_run_passes(self):
        result = run_fig4(trials=15)
        ok, detail = check_figure(result)
        assert ok, detail

    def test_render_produces_report(self):
        result = run_fig4(trials=9)
        text = render_figure(result)
        assert "fig4" in text and "median" in text and "PASS" in text

    def test_fig6_shape(self):
        result = run_fig6(trials=15)
        slow = {int(k): float(v[0]) for k, v in result.series.items()}
        assert slow[64] > slow[512]
        assert slow[1500] < 1.01

    def test_check_rejects_wrong_shape(self):
        from repro.bench.harness import FigureResult

        bogus = FigureResult(
            "fig4", "x",
            {"baseline": np.full(9, 100_000.0),
             "carat": np.full(9, 90_000.0)},  # 10% slowdown: not the paper
        )
        ok, _ = check_figure(bogus)
        assert not ok
