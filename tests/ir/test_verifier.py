"""Verifier tests: each class of violation is caught."""

import pytest

from repro.ir import (
    BasicBlock,
    Function,
    FunctionType,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    VOID,
    VerificationError,
    verify_function,
    verify_module,
    ptr,
)
from repro.ir.instructions import BinOp, Br, Load, Phi, Ret, Store
from repro.ir.values import ConstantInt, UndefValue


def fresh(name="f", ret=VOID, params=()):
    m = Module("vm")
    fn = Function(name, FunctionType(ret, list(params)))
    m.add_function(fn)
    return m, fn


def test_valid_module_passes():
    m, fn = fresh()
    IRBuilder(fn.add_block("entry")).ret()
    verify_module(m)


def test_missing_terminator():
    m, fn = fresh()
    fn.add_block("entry")
    with pytest.raises(VerificationError, match="lacks a terminator"):
        verify_module(m)


def test_terminator_not_last():
    m, fn = fresh()
    bb = fn.add_block("entry")
    r = Ret()
    r.parent = bb
    bb.instructions.append(r)
    x = BinOp("add", ConstantInt(I32, 1), ConstantInt(I32, 2), "x")
    x.parent = bb
    bb.instructions.append(x)
    with pytest.raises(VerificationError, match="terminator not last"):
        verify_module(m)


def test_duplicate_value_names():
    m, fn = fresh()
    bb = fn.add_block("entry")
    b = IRBuilder(bb)
    b.add(b.const_i32(1), b.const_i32(2), "x")
    b.add(b.const_i32(3), b.const_i32(4), "x")
    b.ret()
    with pytest.raises(VerificationError, match="duplicate value name"):
        verify_module(m)


def test_branch_to_foreign_block():
    m, fn = fresh()
    bb = fn.add_block("entry")
    foreign = BasicBlock("foreign")
    br = Br(foreign)
    br.parent = bb
    bb.instructions.append(br)
    with pytest.raises(VerificationError, match="foreign block"):
        verify_module(m)


def test_phi_incoming_must_match_predecessors():
    m, fn = fresh()
    entry = fn.add_block("entry")
    nxt = fn.add_block("next")
    b = IRBuilder(entry)
    b.br(nxt)
    b.position_at_end(nxt)
    phi = b.phi(I32)
    # no incoming edges registered
    b.ret()
    with pytest.raises(VerificationError, match="phi incoming"):
        verify_module(m)


def test_phi_after_non_phi():
    m, fn = fresh()
    bb = fn.add_block("entry")
    b = IRBuilder(bb)
    b.add(b.const_i32(1), b.const_i32(1))
    phi = Phi(I32, "late")
    phi.parent = bb
    bb.instructions.append(phi)
    b.ret()
    with pytest.raises(VerificationError, match="phi after non-phi"):
        verify_module(m)


def test_operand_from_other_function():
    m, fn = fresh(ret=I32)
    m2, other = fresh("g", ret=I32)
    ob = IRBuilder(other.add_block("entry"))
    val = ob.add(ob.const_i32(1), ob.const_i32(2))
    ob.ret(val)
    bb = fn.add_block("entry")
    r = Ret(val)  # uses a value from @g
    r.parent = bb
    bb.instructions.append(r)
    with pytest.raises(VerificationError, match="another function"):
        verify_function(fn)


def test_use_before_def_in_block():
    m, fn = fresh(ret=I32)
    bb = fn.add_block("entry")
    a = BinOp("add", ConstantInt(I32, 1), ConstantInt(I32, 1), "a")
    b2 = BinOp("add", a, a, "b")
    # b uses a but appears first
    for inst in (b2, a):
        inst.parent = bb
        bb.instructions.append(inst)
    r = Ret(b2)
    r.parent = bb
    bb.instructions.append(r)
    with pytest.raises(VerificationError, match="used before defined"):
        verify_function(fn)


def test_ret_type_mismatch():
    m, fn = fresh(ret=I64)
    b = IRBuilder(fn.add_block("entry"))
    r = Ret(ConstantInt(I32, 1))
    r.parent = b.block
    b.block.instructions.append(r)
    with pytest.raises(VerificationError, match="ret type"):
        verify_module(m)


def test_ret_void_from_value_function():
    m, fn = fresh(ret=I64)
    IRBuilder(fn.add_block("entry")).ret()
    with pytest.raises(VerificationError, match="ret void"):
        verify_module(m)


def test_unresolved_placeholder_detected():
    m, fn = fresh(ret=I32)
    bb = fn.add_block("entry")
    r = Ret(UndefValue(I32, "dangling"))
    r.parent = bb
    bb.instructions.append(r)
    with pytest.raises(VerificationError, match="placeholder"):
        verify_module(m)


def test_declaration_with_body_rejected():
    m = Module("vm")
    fn = Function("decl", FunctionType(VOID, []), linkage="external")
    m.add_function(fn)
    verify_module(m)  # fine as declaration
    # functions list can hold a broken hybrid only through direct mutation;
    # the module-level check is about declarations() so nothing to do here.


def test_empty_definition_rejected():
    m, fn = fresh()
    fn.blocks.append(BasicBlock("detached"))
    fn.blocks.clear()
    # A Function with blocks list emptied is a declaration again — fine.
    verify_module(m)


def test_call_to_function_outside_module():
    m, fn = fresh()
    alien = Function("alien", FunctionType(VOID, []))
    b = IRBuilder(fn.add_block("entry"))
    b.call(alien, [])
    b.ret()
    with pytest.raises(VerificationError, match="not in module"):
        verify_module(m)


def test_error_lists_multiple_violations():
    m, fn = fresh()
    fn.add_block("one")
    fn.add_block("two")
    try:
        verify_module(m)
    except VerificationError as e:
        assert len(e.errors) >= 2
    else:
        pytest.fail("expected verification failure")
