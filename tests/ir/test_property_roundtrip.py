"""Property-based tests: IR print/parse round trip, integer semantics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    I8,
    I16,
    I32,
    I64,
    IRBuilder,
    IntType,
    Module,
    parse_module,
    print_module,
    verify_module,
)
from repro.ir.instructions import BINOPS, ICMP_PREDICATES

INT_TYPES = (I8, I16, I32, I64)
INT_BINOPS = [op for op in BINOPS if not op.startswith("f")]


@st.composite
def straightline_module(draw):
    """A module with one function of random straight-line arithmetic."""
    t = draw(st.sampled_from(INT_TYPES))
    n_ops = draw(st.integers(min_value=1, max_value=12))
    m = Module("prop")
    fn = Function("f", FunctionType(t, [t, t]), ["a", "b"])
    m.add_function(fn)
    b = IRBuilder(fn.add_block("entry"))
    values = [fn.args[0], fn.args[1]]
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["binop", "icmp_select", "const"]))
        if kind == "binop":
            op = draw(st.sampled_from(INT_BINOPS))
            lhs = draw(st.sampled_from(values))
            rhs = draw(st.sampled_from(values))
            values.append(b.binop(op, lhs, rhs))
        elif kind == "icmp_select":
            pred = draw(st.sampled_from(ICMP_PREDICATES))
            lhs = draw(st.sampled_from(values))
            rhs = draw(st.sampled_from(values))
            c = b.icmp(pred, lhs, rhs)
            values.append(b.select(c, lhs, rhs))
        else:
            values.append(
                ConstantInt(t, draw(st.integers(-(2**40), 2**40)))
            )
    b.ret(values[-1] if values[-1].type is t else values[0])
    return m


@settings(max_examples=60, deadline=None)
@given(straightline_module())
def test_print_parse_fixed_point(m):
    verify_module(m)
    text = print_module(m)
    m2 = parse_module(text)
    verify_module(m2)
    assert print_module(m2) == text


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(INT_TYPES),
    st.integers(min_value=-(2**70), max_value=2**70),
)
def test_constant_wrap_roundtrip(t, v):
    c = ConstantInt(t, v)
    assert 0 <= c.value <= t.max_unsigned
    # signed interpretation round-trips through wrap
    assert t.wrap(c.signed) == c.value
    assert t.min_signed <= c.signed <= t.max_signed


@settings(max_examples=100, deadline=None)
@given(st.integers(-(2**70), 2**70), st.integers(-(2**70), 2**70))
def test_wrap_is_additive_homomorphism(a, b):
    # (a + b) mod 2^n == (a mod 2^n + b mod 2^n) mod 2^n for every width
    for t in INT_TYPES:
        assert t.wrap(a + b) == t.wrap(t.wrap(a) + t.wrap(b))


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=40))
def test_string_constant_roundtrip(data):
    from repro.ir import ConstantString, GlobalVariable

    m = Module("strs")
    init = ConstantString(data)
    m.add_global(GlobalVariable(init.type, "blob", init, is_const=True))
    m2 = parse_module(print_module(m))
    assert m2.get_global("blob").initializer.data == data
