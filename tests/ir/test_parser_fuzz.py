"""IR parser robustness: malformed IR is diagnosed, never crashes.

The kernel-side loader parses .kop containers from untrusted vendors
*before* the signature check can even run (the signature covers the
canonical bytes, which requires parsing them) — so the parser is attack
surface and must fail closed with IRParseError only.
"""

import hypothesis.strategies as st
from hypothesis import example, given, settings

from repro.ir.parser import IRParseError, parse_module

_WORDS = [
    "add", "load", "store", "br", "ret", "phi", "call", "call.guard",
    "icmp", "slt", "i32", "i64", "i8*", "label", "%x", "%y", "@f", "@g",
    "void", "1", "-3", "999999999999999999999", "[", "]", "{", "}", "(",
    ")", ",", "=", ":", "alloca", "count", "scale", "disp", "to", "undef",
    "null", "gep", "switch", "default", "select", "zext", "trunc",
    "unreachable", "asm", '"x"', "f64", "1.5",
]


@st.composite
def pseudo_ir(draw):
    body = " ".join(
        draw(st.sampled_from(_WORDS))
        for _ in range(draw(st.integers(min_value=0, max_value=20)))
    )
    return (
        f'module "m"\n\ndefine internal void @f() {{\nentry:\n'
        f"  {body}\n  ret void\n}}\n"
    )


@settings(max_examples=300, deadline=None)
@example('module "m"\n\n@g = internal global i32 null\n')      # null on int
@example('module "m"\n\ndefine internal void @f() {\nentry:\n'
         "  %x = load i32 undef\n  ret void\n}\n")             # non-ptr load
@example('module "m"\n\ndefine internal void @f() {\nentry:\n'
         "  %x = add void null, void null\n  ret void\n}\n")
@given(pseudo_ir())
def test_parse_module_diagnoses_or_accepts(text):
    try:
        parse_module(text)
    except IRParseError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(
    alphabet='abcdefgXYZ0123456789 \n\t%@!#={}[]:,*()".-', max_size=120,
))
def test_parse_module_raw_text(text):
    try:
        parse_module('module "m"\n' + text)
    except IRParseError:
        pass
