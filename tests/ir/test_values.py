"""Value hierarchy tests: constants, globals, arguments."""

import pytest

from repro.ir import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    F64,
    GlobalVariable,
    I8,
    I32,
    I64,
    UndefValue,
    ptr,
)


class TestConstantInt:
    def test_stores_unsigned_pattern(self):
        c = ConstantInt(I8, -1)
        assert c.value == 0xFF
        assert c.signed == -1

    def test_wraps_on_construction(self):
        assert ConstantInt(I8, 256).value == 0

    def test_equality_by_type_and_value(self):
        assert ConstantInt(I32, 5) == ConstantInt(I32, 5)
        assert ConstantInt(I32, 5) != ConstantInt(I64, 5)
        assert ConstantInt(I32, 5) != ConstantInt(I32, 6)

    def test_hashable(self):
        assert len({ConstantInt(I32, 1), ConstantInt(I32, 1)}) == 1

    def test_requires_int_type(self):
        with pytest.raises(TypeError):
            ConstantInt(F64, 1)  # type: ignore[arg-type]

    def test_ref_prints_signed(self):
        assert ConstantInt(I8, -2).ref() == "i8 -2"


class TestOtherConstants:
    def test_float_requires_float_type(self):
        with pytest.raises(TypeError):
            ConstantFloat(I32, 1.0)  # type: ignore[arg-type]

    def test_float_equality(self):
        assert ConstantFloat(F64, 1.5) == ConstantFloat(F64, 1.5)

    def test_null_requires_pointer(self):
        with pytest.raises(TypeError):
            ConstantNull(I32)  # type: ignore[arg-type]

    def test_null_equality(self):
        assert ConstantNull(ptr(I8)) == ConstantNull(ptr(I8))
        assert ConstantNull(ptr(I8)) != ConstantNull(ptr(I32))

    def test_string_type_is_byte_array(self):
        s = ConstantString(b"hi")
        assert s.type.size_bytes() == 2

    def test_string_escaping_in_ref(self):
        s = ConstantString(b'a"b\x00')
        assert '\\22' in s.ref() or '\\00' in s.ref()

    def test_undef_any_type(self):
        assert UndefValue(I64).ref() == "i64 undef"


class TestGlobals:
    def test_global_value_is_pointer_typed(self):
        g = GlobalVariable(I32, "g")
        assert g.type is ptr(I32)
        assert g.value_type is I32

    def test_bad_linkage_rejected(self):
        with pytest.raises(ValueError):
            GlobalVariable(I32, "g", linkage="bogus")

    def test_const_flag(self):
        g = GlobalVariable(I8, "ro", is_const=True)
        assert g.is_const


class TestArgument:
    def test_argument_ref(self):
        a = Argument(I32, "n", 0)
        assert a.ref() == "i32 %n"
        assert a.index == 0
