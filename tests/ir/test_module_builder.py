"""Module / BasicBlock / Function container and IRBuilder tests."""

import pytest

from repro.ir import (
    BasicBlock,
    Function,
    FunctionType,
    GlobalVariable,
    I32,
    I64,
    IRBuilder,
    Module,
    StructType,
    VOID,
    ptr,
)
from repro.ir.instructions import Ret


def make_fn(name="f", ret=I32, params=(I32,)):
    return Function(name, FunctionType(ret, list(params)), None)


class TestBasicBlock:
    def test_append_sets_parent(self):
        fn = make_fn()
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        inst = b.add(b.const_i32(1), b.const_i32(2))
        assert inst.parent is bb

    def test_append_after_terminator_rejected(self):
        fn = make_fn(ret=VOID, params=())
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        b.ret()
        with pytest.raises(ValueError):
            bb.append(Ret())

    def test_insert_before(self):
        fn = make_fn()
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        x = b.add(b.const_i32(1), b.const_i32(2))
        y = b.mul(b.const_i32(3), b.const_i32(4))
        bb.remove(y)
        bb.insert_before(y, x)
        assert bb.instructions[0] is y

    def test_remove_unknown_instruction(self):
        fn = make_fn()
        bb = fn.add_block("entry")
        with pytest.raises(ValueError):
            bb.remove(Ret())

    def test_successors_from_terminator(self):
        fn = make_fn(ret=VOID, params=())
        a = fn.add_block("a")
        c = fn.add_block("c")
        b = IRBuilder(a)
        b.br(c)
        assert a.successors == [c]
        assert c.successors == []


class TestFunction:
    def test_declaration_has_no_entry(self):
        fn = make_fn()
        assert fn.is_declaration
        with pytest.raises(ValueError):
            fn.entry

    def test_args_match_signature(self):
        fn = Function("g", FunctionType(VOID, [I32, I64]), ["a", "b"])
        assert [a.name for a in fn.args] == ["a", "b"]
        assert fn.args[1].type is I64

    def test_arg_names_length_checked(self):
        with pytest.raises(ValueError):
            Function("g", FunctionType(VOID, [I32]), ["a", "b"])

    def test_add_block_unique_names(self):
        fn = make_fn()
        b1 = fn.add_block("loop")
        b2 = fn.add_block("loop")
        assert b1.name != b2.name

    def test_block_named(self):
        fn = make_fn()
        bb = fn.add_block("entry")
        assert fn.block_named("entry") is bb
        with pytest.raises(KeyError):
            fn.block_named("missing")

    def test_predecessors(self):
        fn = make_fn(ret=VOID, params=())
        a = fn.add_block("a")
        c = fn.add_block("c")
        IRBuilder(a).br(c)
        preds = fn.predecessors()
        assert preds[c] == [a]
        assert preds[a] == []

    def test_instructions_iterates_in_order(self):
        fn = make_fn(ret=VOID, params=())
        a = fn.add_block("a")
        c = fn.add_block("c")
        b = IRBuilder(a)
        b.br(c)
        b.position_at_end(c)
        b.ret()
        assert [i.opcode for i in fn.instructions()] == ["br", "ret"]


class TestModule:
    def test_duplicate_symbols_rejected(self):
        m = Module("m")
        m.add_function(make_fn("x"))
        with pytest.raises(ValueError):
            m.add_function(make_fn("x"))
        with pytest.raises(ValueError):
            m.add_global(GlobalVariable(I32, "x"))

    def test_declare_function_get_or_create(self):
        m = Module("m")
        ft = FunctionType(VOID, [I32])
        a = m.declare_function("ext", ft)
        b = m.declare_function("ext", ft)
        assert a is b

    def test_declare_function_conflicting_type(self):
        m = Module("m")
        m.declare_function("ext", FunctionType(VOID, [I32]))
        with pytest.raises(ValueError):
            m.declare_function("ext", FunctionType(VOID, [I64]))

    def test_get_function_missing(self):
        m = Module("m")
        with pytest.raises(KeyError):
            m.get_function("nope")

    def test_exported_symbols(self):
        m = Module("m")
        fn = Function("e", FunctionType(VOID, []), linkage="exported")
        fn.add_block("entry")
        m.add_function(fn)
        m.add_function(make_fn("internal_one"))
        assert [s.name for s in m.exported_symbols()] == ["e"]

    def test_instruction_count(self):
        m = Module("m")
        fn = make_fn("c", ret=VOID, params=())
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        b.ret()
        assert m.instruction_count() == 1

    def test_struct_registration_conflict(self):
        m = Module("m")
        s1 = StructType("pt", [I32], ["x"])
        m.add_struct(s1)
        m.add_struct(s1)  # same instance is fine
        s2 = StructType("pt", [I64], ["x"])
        with pytest.raises(ValueError):
            m.add_struct(s2)


class TestBuilder:
    def test_auto_naming(self):
        fn = make_fn()
        b = IRBuilder(fn.add_block("entry"))
        x = b.add(b.const_i32(1), b.const_i32(2))
        y = b.add(x, x)
        assert x.name and y.name and x.name != y.name

    def test_builder_without_position(self):
        b = IRBuilder()
        with pytest.raises(ValueError):
            b.ret()

    def test_phi_inserted_at_block_top(self):
        fn = make_fn()
        bb = fn.add_block("entry")
        b = IRBuilder(bb)
        b.add(b.const_i32(1), b.const_i32(1))
        phi = b.phi(I32)
        assert bb.instructions[0] is phi

    def test_struct_field_ptr_uses_offsets(self):
        st = StructType("fp", [I32, I64], ["a", "b"])
        fn = Function("h", FunctionType(VOID, [ptr(st)]), ["s"])
        b = IRBuilder(fn.add_block("entry"))
        g = b.struct_field_ptr(fn.args[0], 1)
        assert g.displacement == 8
        assert g.type is ptr(I64)

    def test_bitcast_identity_elided(self):
        fn = Function("h2", FunctionType(VOID, [ptr(I32)]), ["p"])
        b = IRBuilder(fn.add_block("entry"))
        same = b.bitcast(fn.args[0], ptr(I32))
        assert same is fn.args[0]
