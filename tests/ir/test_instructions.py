"""Instruction constructor / invariant tests."""

import pytest

from repro.ir import (
    Alloca,
    ArrayType,
    BasicBlock,
    BinOp,
    Br,
    Call,
    Cast,
    ConstantInt,
    ConstantNull,
    F32,
    F64,
    FCmp,
    Function,
    FunctionType,
    Gep,
    I1,
    I8,
    I16,
    I32,
    I64,
    ICmp,
    InlineAsm,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
    UndefValue,
    VOID,
    ptr,
)
from repro.ir.instructions import BINOPS, CAST_OPS
from repro.ir.values import ConstantFloat


def iv(x, t=I32):
    return ConstantInt(t, x)


def pv(t=I32):
    return UndefValue(ptr(t), "p")


class TestMemoryInstructions:
    def test_alloca_result_is_pointer(self):
        a = Alloca(I64)
        assert a.type is ptr(I64)
        assert a.size_bytes == 8

    def test_alloca_array_size(self):
        assert Alloca(I32, count=10).size_bytes == 40

    def test_load_result_type_is_pointee(self):
        l = Load(pv(I16))
        assert l.type is I16
        assert l.access_size == 2

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(iv(5))

    def test_store_type_check(self):
        Store(iv(5, I32), pv(I32))  # ok
        with pytest.raises(TypeError):
            Store(iv(5, I64), pv(I32))

    def test_store_is_void_with_access_size(self):
        s = Store(iv(1, I8), pv(I8))
        assert s.type is VOID
        assert s.access_size == 1

    def test_store_requires_pointer(self):
        with pytest.raises(TypeError):
            Store(iv(1), iv(2))

    def test_gep_requires_pointer_base(self):
        with pytest.raises(TypeError):
            Gep(ptr(I8), iv(1), iv(0, I64), 1)

    def test_gep_requires_int_index(self):
        with pytest.raises(TypeError):
            Gep(ptr(I8), pv(I8), pv(I8), 1)

    def test_gep_accessors(self):
        g = Gep(ptr(I32), pv(I32), iv(2, I64), 4, 8)
        assert g.scale == 4 and g.displacement == 8
        assert g.base is g.operands[0]
        assert g.index is g.operands[1]


class TestArithmetic:
    @pytest.mark.parametrize("op", [o for o in BINOPS if not o.startswith("f")])
    def test_int_binops_construct(self, op):
        b = BinOp(op, iv(1), iv(2))
        assert b.type is I32

    @pytest.mark.parametrize("op", ["fadd", "fsub", "fmul", "fdiv"])
    def test_float_binops_construct(self, op):
        b = BinOp(op, ConstantFloat(F64, 1.0), ConstantFloat(F64, 2.0))
        assert b.type is F64

    def test_binop_operand_type_mismatch(self):
        with pytest.raises(TypeError):
            BinOp("add", iv(1, I32), iv(2, I64))

    def test_float_op_on_ints_rejected(self):
        with pytest.raises(TypeError):
            BinOp("fadd", iv(1), iv(2))

    def test_int_op_on_floats_rejected(self):
        with pytest.raises(TypeError):
            BinOp("add", ConstantFloat(F32, 1.0), ConstantFloat(F32, 2.0))

    def test_unknown_binop(self):
        with pytest.raises(ValueError):
            BinOp("frob", iv(1), iv(2))

    def test_icmp_yields_i1(self):
        assert ICmp("slt", iv(1), iv(2)).type is I1

    def test_icmp_on_pointers(self):
        assert ICmp("eq", pv(I8), pv(I8)).type is I1

    def test_icmp_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmp("lt", iv(1), iv(2))

    def test_icmp_mismatched_operands(self):
        with pytest.raises(TypeError):
            ICmp("eq", iv(1, I32), iv(1, I64))

    def test_fcmp(self):
        assert FCmp("olt", ConstantFloat(F64, 1.0), ConstantFloat(F64, 2.0)).type is I1
        with pytest.raises(ValueError):
            FCmp("slt", ConstantFloat(F64, 1.0), ConstantFloat(F64, 2.0))


class TestCasts:
    def test_trunc_must_narrow(self):
        Cast("trunc", iv(1, I64), I32)
        with pytest.raises(TypeError):
            Cast("trunc", iv(1, I32), I64)

    def test_ext_must_widen(self):
        Cast("zext", iv(1, I8), I32)
        Cast("sext", iv(1, I8), I32)
        with pytest.raises(TypeError):
            Cast("zext", iv(1, I32), I32)

    def test_bitcast_pointer_only(self):
        Cast("bitcast", pv(I32), ptr(I8))
        with pytest.raises(TypeError):
            Cast("bitcast", iv(1), I64)

    def test_ptr_int_conversions(self):
        Cast("ptrtoint", pv(I8), I64)
        Cast("inttoptr", iv(1, I64), ptr(I8))
        with pytest.raises(TypeError):
            Cast("ptrtoint", iv(1), I64)

    def test_float_conversions(self):
        Cast("sitofp", iv(1), F64)
        Cast("fptosi", ConstantFloat(F64, 1.0), I32)
        Cast("fpext", ConstantFloat(F32, 1.0), F64)
        Cast("fptrunc", ConstantFloat(F64, 1.0), F32)
        with pytest.raises(TypeError):
            Cast("fpext", ConstantFloat(F64, 1.0), F32)

    def test_unknown_cast(self):
        with pytest.raises(ValueError):
            Cast("reinterpret", iv(1), I64)

    @pytest.mark.parametrize("op", CAST_OPS)
    def test_all_cast_ops_have_checks(self, op):
        # Each op either constructs or raises TypeError; never KeyError.
        try:
            Cast(op, iv(1, I32), I64)
        except TypeError:
            pass


class TestControlFlow:
    def test_unconditional_branch(self):
        bb = BasicBlock("t")
        br = Br(bb)
        assert not br.is_conditional
        assert br.targets == [bb]
        assert br.condition is None

    def test_conditional_branch(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        br = Br(a, ConstantInt(I1, 1), b)
        assert br.is_conditional
        assert br.targets == [a, b]

    def test_conditional_branch_needs_i1(self):
        with pytest.raises(TypeError):
            Br(BasicBlock("a"), iv(1), BasicBlock("b"))

    def test_conditional_branch_needs_false_target(self):
        with pytest.raises(ValueError):
            Br(BasicBlock("a"), ConstantInt(I1, 1))

    def test_switch(self):
        d, c1 = BasicBlock("d"), BasicBlock("c1")
        sw = Switch(iv(3), d, [(1, c1)])
        sw.add_case(2, c1)
        assert sw.default is d
        assert len(sw.targets) == 3

    def test_switch_requires_int(self):
        with pytest.raises(TypeError):
            Switch(pv(), BasicBlock("d"))

    def test_ret_void_and_value(self):
        assert Ret().value is None
        assert Ret(iv(1)).value == iv(1)
        assert Ret().targets == []

    def test_unreachable_is_terminator(self):
        assert Unreachable().is_terminator

    def test_phi_incoming_type_check(self):
        phi = Phi(I32)
        bb = BasicBlock("p")
        phi.add_incoming(iv(1), bb)
        with pytest.raises(TypeError):
            phi.add_incoming(iv(1, I64), bb)
        assert phi.incoming_for(bb) == iv(1)
        with pytest.raises(KeyError):
            phi.incoming_for(BasicBlock("q"))


class TestCall:
    def _fn(self, ret=VOID, params=(I32,), vararg=False):
        return Function("callee", FunctionType(ret, list(params), vararg))

    def test_call_result_type(self):
        fn = self._fn(ret=I64)
        c = Call(fn, [iv(5)])
        assert c.type is I64
        assert c.callee is fn

    def test_call_arity_checked(self):
        with pytest.raises(TypeError):
            Call(self._fn(), [])
        with pytest.raises(TypeError):
            Call(self._fn(), [iv(1), iv(2)])

    def test_call_arg_types_checked(self):
        with pytest.raises(TypeError):
            Call(self._fn(), [iv(1, I64)])

    def test_vararg_allows_extra(self):
        fn = self._fn(params=(I32,), vararg=True)
        Call(fn, [iv(1), iv(2, I64), iv(3, I64)])
        with pytest.raises(TypeError):
            Call(fn, [])

    def test_guard_flag_defaults_false(self):
        assert Call(self._fn(), [iv(1)]).is_guard is False


class TestMisc:
    def test_select_type_checks(self):
        s = Select(ConstantInt(I1, 1), iv(1), iv(2))
        assert s.type is I32
        with pytest.raises(TypeError):
            Select(iv(1), iv(1), iv(2))
        with pytest.raises(TypeError):
            Select(ConstantInt(I1, 0), iv(1), iv(1, I64))

    def test_inline_asm(self):
        a = InlineAsm("nop")
        assert a.asm_text == "nop"
        assert a.has_side_effects

    def test_replace_operand(self):
        b = BinOp("add", iv(1), iv(1))
        old = b.operands[0]
        n = b.replace_operand(old, iv(9))
        # Both operands are the same interned-equal constant object only if
        # identical; replace is by identity.
        assert n >= 1
