"""Type-system tests: interning, layout, integer semantics."""

import pytest

from repro.ir import (
    ArrayType,
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    VOID,
    VoidType,
    ptr,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32

    def test_distinct_widths_distinct_objects(self):
        assert IntType(8) is not IntType(16)

    def test_float_types_are_interned(self):
        assert FloatType(64) is F64

    def test_pointer_types_are_interned(self):
        assert PointerType(I32) is PointerType(I32)

    def test_nested_pointer_interning(self):
        assert ptr(ptr(I8)) is ptr(ptr(I8))

    def test_array_types_are_interned(self):
        assert ArrayType(I64, 4) is ArrayType(I64, 4)
        assert ArrayType(I64, 4) is not ArrayType(I64, 5)

    def test_void_singleton(self):
        assert VoidType() is VOID

    def test_function_type_interned(self):
        a = FunctionType(VOID, [I32, I64])
        b = FunctionType(VOID, [I32, I64])
        assert a is b

    def test_function_type_vararg_distinct(self):
        assert FunctionType(VOID, [I32]) is not FunctionType(VOID, [I32], True)


class TestSizes:
    @pytest.mark.parametrize(
        "t,size",
        [(I1, 1), (I8, 1), (I16, 2), (I32, 4), (I64, 8), (F32, 4), (F64, 8)],
    )
    def test_scalar_sizes(self, t, size):
        assert t.size_bytes() == size

    def test_pointer_size(self):
        assert ptr(I8).size_bytes() == 8

    def test_array_size(self):
        assert ArrayType(I32, 10).size_bytes() == 40

    def test_array_alignment_follows_element(self):
        assert ArrayType(I64, 3).align_bytes() == 8
        assert ArrayType(I8, 3).align_bytes() == 1

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            VOID.size_bytes()

    def test_function_type_has_no_size(self):
        with pytest.raises(TypeError):
            FunctionType(VOID, []).size_bytes()


class TestStructLayout:
    def test_c_style_padding(self):
        st = StructType("s", [I8, I32, I8, I64], ["a", "b", "c", "d"])
        assert st.field_offset(0) == 0
        assert st.field_offset(1) == 4   # padded to i32 alignment
        assert st.field_offset(2) == 8
        assert st.field_offset(3) == 16  # padded to i64 alignment
        assert st.size_bytes() == 24

    def test_tail_padding(self):
        st = StructType("t", [I64, I8], ["a", "b"])
        assert st.size_bytes() == 16  # rounded up to 8-alignment

    def test_empty_struct(self):
        st = StructType("e", [])
        assert st.size_bytes() == 0

    def test_field_index_by_name(self):
        st = StructType("n", [I32, I64], ["x", "y"])
        assert st.field_index("y") == 1
        with pytest.raises(KeyError):
            st.field_index("z")

    def test_field_names_length_mismatch(self):
        with pytest.raises(ValueError):
            StructType("bad", [I32], ["a", "b"])

    def test_struct_alignment(self):
        st = StructType("al", [I8, I16], ["a", "b"])
        assert st.align_bytes() == 2
        assert st.size_bytes() == 4

    def test_nested_struct_layout(self):
        inner = StructType("inner2", [I32, I32], ["a", "b"])
        outer = StructType("outer2", [I8, inner], ["x", "s"])
        assert outer.field_offset(1) == 4
        assert outer.size_bytes() == 12


class TestIntegerSemantics:
    def test_wrap_truncates(self):
        assert I8.wrap(0x1FF) == 0xFF
        assert I8.wrap(-1) == 0xFF

    def test_to_signed_roundtrip(self):
        assert I8.to_signed(0xFF) == -1
        assert I8.to_signed(0x7F) == 127
        assert I16.to_signed(0x8000) == -32768

    def test_bounds(self):
        assert I32.max_unsigned == 0xFFFFFFFF
        assert I32.max_signed == 0x7FFFFFFF
        assert I32.min_signed == -0x80000000

    def test_i1_bounds(self):
        assert I1.max_unsigned == 1
        assert I1.to_signed(1) == 1

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(24)
        with pytest.raises(ValueError):
            FloatType(16)


class TestPredicates:
    def test_first_class(self):
        assert I32.is_first_class
        assert ptr(I8).is_first_class
        assert not VOID.is_first_class
        assert not FunctionType(VOID, []).is_first_class

    def test_aggregate(self):
        assert ArrayType(I8, 2).is_aggregate
        assert StructType("agg", [I8]).is_aggregate
        assert not I64.is_aggregate

    def test_str_forms(self):
        assert str(I32) == "i32"
        assert str(ptr(I32)) == "i32*"
        assert str(ArrayType(I8, 7)) == "[7 x i8]"
        assert str(FunctionType(I32, [I8], True)) == "i32 (i8, ...)"
