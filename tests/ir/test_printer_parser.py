"""Printer / parser round-trip and error tests."""

import pytest

from repro.ir import (
    ConstantInt,
    ConstantString,
    Function,
    FunctionType,
    GlobalVariable,
    I1,
    I8,
    I32,
    I64,
    IRBuilder,
    IRParseError,
    Module,
    StructType,
    VOID,
    parse_module,
    print_module,
    ptr,
    verify_module,
)


def roundtrip(m: Module) -> Module:
    text = print_module(m)
    m2 = parse_module(text)
    assert print_module(m2) == text, "canonical form is not a fixed point"
    return m2


def build_simple() -> Module:
    m = Module("rt")
    fn = Function("f", FunctionType(I64, [I64]), ["x"], linkage="exported")
    m.add_function(fn)
    b = IRBuilder(fn.add_block("entry"))
    y = b.add(fn.args[0], b.const_i64(10), "y")
    b.ret(y)
    return m


class TestRoundTrip:
    def test_simple_function(self):
        m2 = roundtrip(build_simple())
        verify_module(m2)
        assert "f" in m2.functions

    def test_metadata(self):
        m = build_simple()
        m.metadata["carat.guarded"] = True
        m.metadata["carat.guard_count"] = 42
        m.metadata["carat.compiler"] = "caratcc"
        m2 = roundtrip(m)
        assert m2.metadata["carat.guarded"] is True
        assert m2.metadata["carat.guard_count"] == 42
        assert m2.metadata["carat.compiler"] == "caratcc"

    def test_globals_and_initializers(self):
        m = Module("g")
        m.add_global(GlobalVariable(I32, "count", ConstantInt(I32, -3)))
        m.add_global(GlobalVariable(I64, "zero"))
        m.add_global(
            GlobalVariable(
                ConstantString(b"hi\x00").type, "msg",
                ConstantString(b"hi\x00"), is_const=True,
            )
        )
        m2 = roundtrip(m)
        assert m2.get_global("count").initializer.signed == -3
        assert m2.get_global("zero").initializer is None
        assert m2.get_global("msg").initializer.data == b"hi\x00"
        assert m2.get_global("msg").is_const

    def test_struct_types(self):
        m = Module("s")
        st = StructType("pair", [I32, ptr(I8)], ["a", "b"])
        m.add_struct(st)
        fn = Function("use", FunctionType(VOID, [ptr(st)]), ["p"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        b.ret()
        m2 = roundtrip(m)
        assert m2.structs["pair"].field_names == ("a", "b")

    def test_control_flow_with_phi(self):
        m = Module("cf")
        fn = Function("loop", FunctionType(I64, [I64]), ["n"])
        m.add_function(fn)
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        done = fn.add_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        i = b.phi(I64, "i")
        c = b.icmp("slt", i, fn.args[0], "c")
        b.cond_br(c, body, done)
        b.position_at_end(body)
        i2 = b.add(i, b.const_i64(1), "i2")
        b.br(header)
        b.position_at_end(done)
        b.ret(i)
        i.add_incoming(b.const_i64(0), entry)
        i.add_incoming(i2, body)
        verify_module(m)
        m2 = roundtrip(m)
        verify_module(m2)

    def test_switch_roundtrip(self):
        m = Module("sw")
        fn = Function("pick", FunctionType(I32, [I32]), ["x"])
        m.add_function(fn)
        entry = fn.add_block("entry")
        a = fn.add_block("a")
        d = fn.add_block("d")
        b = IRBuilder(entry)
        b.switch(fn.args[0], d, [(1, a), (2, a)])
        b.position_at_end(a)
        b.ret(b.const_i32(10))
        b.position_at_end(d)
        b.ret(b.const_i32(0))
        m2 = roundtrip(m)
        sw = m2.get_function("pick").entry.terminator
        assert [c for c, _ in sw.cases] == [1, 2]

    def test_calls_and_guard_marker(self):
        m = Module("calls")
        callee = m.declare_function("helper", FunctionType(I32, [I32]))
        guard = m.declare_function(
            "carat_guard", FunctionType(VOID, [ptr(I8), I64, I32])
        )
        fn = Function("main", FunctionType(I32, []), [])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        p = b.alloca(I8)
        g = b.call(guard, [p, b.const_i64(1), b.const_i32(1)])
        g.is_guard = True
        r = b.call(callee, [b.const_i32(7)])
        b.ret(r)
        m2 = roundtrip(m)
        calls = [
            i for i in m2.get_function("main").instructions()
            if i.opcode == "call"
        ]
        assert calls[0].is_guard is True
        assert calls[1].is_guard is False

    def test_vararg_declaration(self):
        m = Module("va")
        m.declare_function("printk", FunctionType(I32, [ptr(I8)], True))
        m2 = roundtrip(m)
        assert m2.functions["printk"].function_type.vararg

    def test_select_cast_gep_roundtrip(self):
        m = Module("misc")
        fn = Function("mix", FunctionType(I64, [I64, ptr(I64)]), ["x", "p"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        c = b.icmp("ugt", fn.args[0], b.const_i64(5))
        s = b.select(c, fn.args[0], b.const_i64(0))
        t = b.cast("trunc", s, I32)
        w = b.cast("sext", t, I64)
        g = b.gep(ptr(I64), fn.args[1], w, 8, 16)
        v = b.load(g)
        b.ret(v)
        verify_module(roundtrip(m))

    def test_inline_asm_roundtrip(self):
        m = Module("asm")
        fn = Function("bad", FunctionType(VOID, []), [])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        b.inline_asm("mov %cr0, %rax")
        b.ret()
        m2 = roundtrip(m)
        asm = next(iter(m2.get_function("bad").instructions()))
        assert asm.asm_text == "mov %cr0, %rax"


class TestParseErrors:
    def test_unknown_opcode(self):
        with pytest.raises(IRParseError):
            parse_module(
                'module "m"\n\ndefine internal void @f() {\nentry:\n  frobnicate\n}\n'
            )

    def test_undefined_value(self):
        with pytest.raises(IRParseError):
            parse_module(
                'module "m"\n\ndefine internal i32 @f() {\nentry:\n  ret i32 %nope\n}\n'
            )

    def test_unknown_callee(self):
        with pytest.raises(IRParseError):
            parse_module(
                'module "m"\n\ndefine internal void @f() {\nentry:\n'
                "  call void @ghost()\n  ret void\n}\n"
            )

    def test_unknown_struct_type(self):
        with pytest.raises(IRParseError):
            parse_module('module "m"\n\n@g = internal global %missing zeroinit\n')

    def test_duplicate_value_name(self):
        with pytest.raises(IRParseError):
            parse_module(
                'module "m"\n\ndefine internal i32 @f() {\nentry:\n'
                "  %x = add i32 1, i32 2\n  %x = add i32 3, i32 4\n  ret i32 %x\n}\n"
            )

    def test_garbage_top_level(self):
        with pytest.raises(IRParseError):
            parse_module('module "m"\n\nwibble\n')

    def test_missing_module_header(self):
        with pytest.raises(IRParseError):
            parse_module("define internal void @f() { entry: ret void }")
