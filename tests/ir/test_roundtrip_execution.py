"""IR parse -> print -> reparse round trips are execution-identical.

The existing property tests prove the textual form is a fixed point;
these prove the stronger property the signing chain actually rests on:
a module rebuilt from its canonical serialization *executes* bit-for-bit
identically to the original — same return values, same guard traffic —
under both execution engines, for random guarded programs and for both
real driver sources.
"""

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.pipeline import CompileOptions, compile_module
from repro.e1000e import DRIVER_NAME as NIC, DRIVER_SOURCE as NIC_SOURCE
from repro.ir import parse_module, print_module, verify_module
from repro.kernel import Kernel
from repro.policy import CaratPolicyModule, PolicyManager
from repro.vblk import (
    BlockBlaster,
    BlockRequestQueue,
    DRIVER_NAME as VBLK,
    DRIVER_SOURCE as VBLK_SOURCE,
    VBLK_CONTRACTS,
    VblkBlockDev,
    VblkDevice,
)

#: Binary operators safe for arbitrary operands (no division traps).
_BINOPS = ("+", "-", "*", "&", "|", "^")

ENGINES = ("interp", "compiled")


@st.composite
def guarded_program(draw):
    """A random mini-C module: straight-line arithmetic interleaved with
    guarded global-array loads/stores (every access emits a carat_guard,
    so the round trip is exercised on guard-bearing IR, not just math)."""
    n_ops = draw(st.integers(min_value=1, max_value=10))
    lines = [
        "long cells[8];",
        "__export long run(long a, long b) {",
        "    cells[0] = a;",
        "    cells[1] = b;",
        "    long x = a;",
        "    long y = b;",
    ]
    for i in range(n_ops):
        kind = draw(st.sampled_from(["binop", "shift", "store", "load"]))
        if kind == "binop":
            op = draw(st.sampled_from(_BINOPS))
            lines.append(f"    x = y {op} x;")
        elif kind == "shift":
            amount = draw(st.integers(min_value=0, max_value=63))
            op = draw(st.sampled_from(["<<", ">>"]))
            lines.append(f"    y = (x {op} {amount}) ^ y;")
        elif kind == "store":
            slot = draw(st.integers(min_value=0, max_value=7))
            lines.append(f"    cells[{slot}] = x ^ y;")
        else:
            slot = draw(st.integers(min_value=0, max_value=7))
            lines.append(f"    y = y + cells[{slot}];")
    lines += ["    return x ^ y ^ cells[0];", "}"]
    return "\n".join(lines)


def _roundtrip(compiled):
    """Rebuild the module from its canonical text (fixed point checked)."""
    text = print_module(compiled.ir)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text
    return dataclasses.replace(compiled, ir=reparsed)


def _run(compiled, engine, args_list):
    """Load ``compiled`` into a fresh kernel, drive it, and return every
    observable: per-call rc plus the guard traffic it generated."""
    kernel = Kernel(engine=engine)
    policy = CaratPolicyModule(kernel, mode="panic").install()
    policy.index.default_allow = True  # benign programs: count, allow all
    loaded = kernel.insmod(compiled)
    rcs = [kernel.run_function(loaded, "run", list(a)) for a in args_list]
    s = policy.stats
    return rcs, s.checks, s.allowed, s.denied, s.entries_scanned


@settings(max_examples=25, deadline=None)
@given(
    guarded_program(),
    st.lists(
        st.tuples(
            st.integers(-(2**62), 2**62), st.integers(-(2**62), 2**62)
        ),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=0, max_value=2),
)
def test_roundtrip_execution_identity(source, args_list, opt_level):
    compiled = compile_module(source, CompileOptions(
        module_name="prop", protect=True, opt_level=opt_level,
    ))
    rebuilt = _roundtrip(compiled)
    baseline = _run(compiled, "compiled", args_list)
    for engine in ENGINES:
        assert _run(rebuilt, engine, args_list) == baseline, engine
    assert _run(compiled, "interp", args_list) == baseline


@pytest.mark.parametrize("driver,source", [(NIC, NIC_SOURCE),
                                           (VBLK, VBLK_SOURCE)])
@pytest.mark.parametrize("opt_level", (0, 2))
def test_driver_source_roundtrip_fixed_point(driver, source, opt_level):
    """Both real driver modules survive the round trip canonically."""
    compiled = compile_module(source, CompileOptions(
        module_name=driver, protect=True, opt_level=opt_level,
    ))
    rebuilt = _roundtrip(compiled)
    assert rebuilt.ir.metadata == compiled.ir.metadata
    assert print_module(rebuilt.ir) == print_module(compiled.ir)


def _vblk_workload(compiled, engine):
    """Assemble a full vblk stack around ``compiled`` and run a fixed
    mixed workload; returns every observable counter it produced."""
    kernel = Kernel(engine=engine)
    policy = CaratPolicyModule(kernel, mode="eject").install()
    PolicyManager(kernel).install_two_region_policy()
    kernel.register_verify_contracts(VBLK_CONTRACTS, module=VBLK)
    device = VblkDevice(kernel)
    loaded = kernel.insmod(compiled)
    blkdev = VblkBlockDev(kernel, loaded, device)
    blkdev.probe()
    blaster = BlockBlaster(BlockRequestQueue(kernel, blkdev))
    res = blaster.blast(count=48, nsect=2, pattern="hotspot", seed=5,
                        read_frac=40)
    return (
        res.ops_done, res.reads, res.writes, res.flushes, res.errors,
        res.bytes_read, res.bytes_written,
        blkdev.stats(), device.stats(),
        policy.stats.checks, policy.stats.denied,
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_vblk_driver_roundtrip_runs_identically(engine):
    """The reparsed vblk driver moves real block traffic bit-for-bit
    like the original: same stats, same data signature, same guards."""
    compiled = compile_module(VBLK_SOURCE, CompileOptions(
        module_name=VBLK, protect=True, opt_level=2,
    ))
    rebuilt = _roundtrip(compiled)
    assert _vblk_workload(rebuilt, engine) == _vblk_workload(compiled, engine)
