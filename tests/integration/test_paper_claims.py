"""The claims ledger: every checkable sentence of the paper, in one file.

Each test quotes the paper and asserts the reproduced system exhibits the
claimed behaviour.  This is the reviewer's map from text to code.
"""

import pytest

from repro.bench.harness import WorkloadConfig, calibrate
from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import DRIVER_SOURCE, driver_source_lines
from repro.kernel import KernelPanic, LoadError


class TestSection1:
    def test_module_can_access_any_memory_without_carat(self):
        """§1: 'A kernel module can generally access any part of memory,
        including regions critical to the operating system.'"""
        system = CaratKopSystem(SystemConfig(machine=None, protect=False))
        kernel = system.kernel
        critical = kernel.kmalloc_allocator.kmalloc(64)
        kernel.address_space.write_bytes(critical, b"CRITICAL")
        rogue = compile_module(
            "__export void smash(long a) { *(long *)a = 0; }",
            CompileOptions(module_name="rogue", protect=False),
        )
        loaded = kernel.insmod(rogue)
        kernel.run_function(loaded, "smash", [critical])  # nothing stops it
        assert kernel.address_space.read_bytes(critical, 8) != b"CRITICAL"

    def test_limiting_addresses_without_revoking_privilege(self):
        """§1: 'limit the addresses they may use without revoking their
        kernel-level privileges' — a protected module still calls kernel
        services and touches allowed memory."""
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        assert system.blast(size=128, count=10).errors == 0
        assert system.guard_stats()["denied"] == 0


class TestSection2:
    def test_guards_are_callbacks_to_privately_exported_function(self):
        """§2/§3.1: guards call a runtime function privately exported from
        the kernel."""
        system = CaratKopSystem(SystemConfig(machine=None))
        sym = system.kernel.symbols.resolve("carat_guard")
        assert sym.private is True
        assert sym.owner == "carat_kop_policy"

    def test_arbitrary_granularity(self):
        """§2: 'protection is possible down to individual bytes.'"""
        from repro import abi
        from repro.policy import Region, RegionTable

        t = RegionTable()
        t.add(Region(0x1000, 1, abi.FLAG_WRITE))
        assert t.check(0x1000, 1, abi.FLAG_WRITE)[0]
        assert not t.check(0x1001, 1, abi.FLAG_WRITE)[0]

    def test_signature_asserts_no_inline_assembly(self):
        """§2: the signature 'is in effect an assertion ... that the code
        it compiled does not include ... inline or separate assembly.'"""
        from repro.signing import SigningKey

        key = SigningKey.generate()
        clean = compile_module(
            "__export int f(void) { return 0; }",
            CompileOptions(module_name="clean", key=key),
        )
        dirty = compile_module(
            '__export int f(void) { __asm__("hlt"); return 0; }',
            CompileOptions(module_name="dirty", key=key),
        )
        assert clean.signature.has_inline_asm is False
        assert dirty.signature.has_inline_asm is True


class TestSection3:
    def test_single_symbol_interface(self):
        """§3.1: the policy module 'provides a single symbol,
        carat_guard' with signature (addr, size, flags)."""
        from repro import abi
        from repro.ir import I8PTR, I32, I64, VOID

        ft = abi.guard_function_type()
        assert ft.ret is VOID
        assert ft.params == (I8PTR, I64, I32)

    def test_64_region_table_is_the_default(self):
        """§3.1: 'a table describing a maximum of 64 memory regions.'"""
        from repro.policy import MAX_REGIONS, RegionTable

        assert MAX_REGIONS == 64
        system = CaratKopSystem(SystemConfig(machine=None))
        assert isinstance(system.policy.index, RegionTable)

    def test_forbidden_access_logs_and_panics(self):
        """§3.1: 'we currently do not cleanly handle forbidden accesses,
        and instead log that they occur and cause a kernel panic.'"""
        system = CaratKopSystem(SystemConfig(machine=None))
        rogue = compile_module(
            "__export long f(long a) { return *(long *)a; }",
            CompileOptions(module_name="rogue", key=system.signing_key),
        )
        loaded = system.kernel.insmod(rogue)
        with pytest.raises(KernelPanic):
            system.kernel.run_function(loaded, "f", [0x1000])
        log = "\n".join(system.kernel.dmesg_log)
        assert "DENY" in log and "Kernel panic" in log

    def test_no_source_changes_and_swap_of_compiler(self):
        """§3.2: 'Any module ... can be compiled as a protected module by
        swapping the compiler'; §4.1: 'No code was modified.'"""
        base = compile_module(
            DRIVER_SOURCE, CompileOptions(module_name="e1000e", protect=False)
        )
        carat = compile_module(
            DRIVER_SOURCE, CompileOptions(module_name="e1000e", protect=True)
        )
        assert base.source_lines == carat.source_lines
        assert base.guard_count == 0 and carat.guard_count > 0

    def test_guard_per_load_store_unoptimized(self):
        """§3.3: 'every memory access results in a guard, even if it would
        be redundant.'"""
        from repro.ir.instructions import Call, Load, Store

        m = compile_module(
            "__export long f(long *p) { return *p + *p + *p; }",
            CompileOptions(module_name="g"),
        ).ir
        loads = sum(
            isinstance(i, (Load, Store))
            for fn in m.defined_functions() for i in fn.instructions()
        )
        guards = sum(
            isinstance(i, Call) and i.is_guard
            for fn in m.defined_functions() for i in fn.instructions()
        )
        assert guards == loads == 3  # redundant guards kept


class TestSection4:
    def test_driver_scale(self):
        """§4.1: the real driver is ~19k lines; ours is the equivalent
        scale for the simulated device (hundreds of lines of mini-C,
        exercising every access pattern the paper lists)."""
        assert driver_source_lines() > 300

    def test_dma_moves_bytes_unguarded(self):
        """§4: 'the overwhelming amount of data transfer occurs due to the
        DMA engine on the NIC, which is not checked.'"""
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        checks0 = system.guard_stats()["checks"]
        system.netdev.xmit(b"\x00" * 1514)   # max frame
        checks_big = system.guard_stats()["checks"] - checks0
        checks1 = system.guard_stats()["checks"]
        system.netdev.xmit(b"\x00" * 64)
        checks_small = system.guard_stats()["checks"] - checks1
        assert abs(checks_big - checks_small) <= 5  # size-independent

    def test_same_guards_different_lookup_cost(self):
        """§4.2 (Fig. 5): 'the exact same number of guards are being
        executed.  The difference is in the cost of the policy lookup.'"""
        per_packet = {}
        scans = {}
        for n in (2, 64):
            cfg = WorkloadConfig(machine="r350", regions=n,
                                 calibration_packets=40, warmup_packets=8)
            cal = calibrate(cfg)
            per_packet[n] = cal.guards_per_packet
            scans[n] = cal.entries_per_guard
        assert per_packet[2] == per_packet[64]
        assert scans[64] > scans[2]

    def test_overheads_small_and_machine_ordered(self):
        """§4.2 headline: <0.8% on the old machine, <0.1% on the new."""
        overhead = {}
        for machine in ("r415", "r350"):
            c = {}
            for protect in (False, True):
                cfg = WorkloadConfig(machine=machine, protect=protect,
                                     calibration_packets=60, warmup_packets=8)
                c[protect] = calibrate(cfg).cycles_per_packet
            overhead[machine] = (c[True] - c[False]) / c[False]
        assert 0 <= overhead["r415"] < 0.008
        assert 0 <= overhead["r350"] < 0.001
        assert overhead["r350"] < overhead["r415"]


class TestSection5:
    def test_incremental_restriction_without_topology_knowledge(self):
        """§5: 'Adding restrictions to additional kernel components could
        be done incrementally' — carving one more protected region needs
        no changes anywhere else."""
        system = CaratKopSystem(SystemConfig(machine=None))
        extra = system.kernel.kmalloc_allocator.kmalloc(4096)
        # Insert a deny carve-out in front (first-match-wins).
        regions = system.policy.index.regions()
        system.policy_manager.clear()
        system.policy_manager.deny(extra, 4096)
        for r in regions:
            system.policy_manager.add_region(r.base, r.length, r.prot)
        assert system.blast(size=128, count=10).errors == 0  # driver fine
        rogue = compile_module(
            "__export long f(long a) { return *(long *)a; }",
            CompileOptions(module_name="rogue", key=system.signing_key),
        )
        loaded = system.kernel.insmod(rogue)
        with pytest.raises(KernelPanic):
            system.kernel.run_function(loaded, "f", [extra])
