"""Failure injection and soak tests: the system under hostile conditions."""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.kernel import KernelPanic, LoadError, MemoryFault
from repro.net import make_test_frame


class TestHostileModules:
    def _load(self, system, src, name):
        return system.kernel.insmod(
            compile_module(
                src, CompileOptions(module_name=name, key=system.signing_key)
            )
        )

    def test_null_pointer_write(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        loaded = self._load(
            system,
            "__export void f(void) { long *p = null; *p = 1; }",
            "nullw",
        )
        with pytest.raises(KernelPanic):
            system.kernel.run_function(loaded, "f", [])

    def test_descriptor_ring_tamper_blocked(self):
        """A second module that tries to rewrite the DRIVER's TX ring —
        cross-module containment at byte granularity."""
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        system.blast(size=128, count=2)
        # Find the ring: TDBAL readback through the driver.
        ring_phys = system.device.tdba
        from repro.kernel import layout

        ring_virt = layout.direct_map_address(ring_phys)
        # Tighten the policy: driver areas only, ring NOT writable by others.
        mgr = system.policy_manager
        mgr.clear()
        mgr.add_region(ring_virt, 4096, prot=0)  # hole: deny the ring
        mgr.allow(0xFFFF_8000_0000_0000, (1 << 64) - 0xFFFF_8000_0000_0000)
        mgr.set_default(False)
        tamper = self._load(
            system,
            "__export void f(long a) { long *p = (long *)a; *p = 0x4141; }",
            "tamper",
        )
        with pytest.raises(KernelPanic):
            system.kernel.run_function(tamper, "f", [ring_virt])

    def test_module_probing_for_policy_edges(self):
        """A module binary-searching the policy boundary dies on the first
        out-of-bounds touch; it cannot 'scan quietly'."""
        system = CaratKopSystem(SystemConfig(machine=None))
        probe = self._load(
            system,
            """
            __export long scan(long start, long step, int n) {
                long acc = 0;
                for (int i = 0; i < n; i++) {
                    long *p = (long *)(start + (long)i * step);
                    acc += *p;
                }
                return acc;
            }
            """,
            "prober",
        )
        from repro.kernel import layout

        base = layout.direct_map_address(0)
        with pytest.raises(KernelPanic):
            # Walks off the 64MB of RAM into unmapped/user space; the
            # policy row covering kernel-half lets RAM reads through, but
            # the first user-half dereference dies.
            system.kernel.run_function(
                probe, "scan", [0x7FFF_0000_0000, 8, 4]
            )
        assert system.policy.stats.denied == 1

    def test_guard_denial_is_before_the_access(self):
        """The guard fires BEFORE the store: the target byte is untouched
        even though the module 'executed' the store instruction's guard."""
        system = CaratKopSystem(SystemConfig(machine=None))
        kernel = system.kernel
        victim = kernel.kmalloc_allocator.kmalloc(64)
        kernel.address_space.write_bytes(victim, b"SAFE")
        mgr = system.policy_manager
        mgr.clear()
        mgr.deny(victim, 64)
        mgr.allow(0xFFFF_8000_0000_0000, (1 << 64) - 0xFFFF_8000_0000_0000)
        mgr.set_default(False)
        smasher = self._load(
            system,
            "__export void f(long a) { *(long *)a = 0; }",
            "smasher",
        )
        with pytest.raises(KernelPanic):
            kernel.run_function(smasher, "f", [victim])
        assert kernel.address_space.read_bytes(victim, 4) == b"SAFE"


class TestDeviceFailures:
    def test_xmit_with_tx_disabled_queues_but_does_not_send(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        from repro.e1000e import regs

        system.device.mmio_write(regs.TCTL, 4, 0)
        system.netdev.xmit(make_test_frame(128, 0))
        assert system.sink.packets == 0

    def test_device_reset_mid_traffic_recovers_via_reprobe(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        system.blast(size=128, count=5)
        from repro.e1000e import regs

        system.device.mmio_write(regs.CTRL, 4, regs.CTRL_RST)
        # Driver state is now stale (ring unprogrammed); re-probe restores.
        system.netdev.remove()
        system.netdev.probe()
        result = system.blast(size=128, count=5)
        assert result.errors == 0

    def test_audit_mode_survives_violations_during_traffic(self):
        """Enforce-off systems keep running and keep counting."""
        system = CaratKopSystem(SystemConfig(machine=None, enforce=False))
        system.policy_manager.clear()
        system.policy_manager.set_default(False)  # everything violates
        result = system.blast(size=128, count=20)
        assert result.errors == 0
        assert system.sink.packets == 20
        assert system.policy.stats.denied > 100


class TestSoak:
    def test_policy_mutation_under_traffic(self):
        """Add/remove regions between bursts; traffic never breaks as long
        as coverage holds."""
        system = CaratKopSystem(SystemConfig(machine=None))
        mgr = system.policy_manager
        decoy_base = 0x3_0000_0000
        for round_ in range(8):
            mgr.add_region(decoy_base + round_ * 0x10000, 0x1000, 0x3)
            result = system.blast(size=128, count=25)
            assert result.errors == 0
            if round_ % 2:
                mgr.remove_region(decoy_base + round_ * 0x10000, 0x1000)
        assert system.sink.packets == 200
        assert system.guard_stats()["denied"] == 0

    def test_insmod_rmmod_churn(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        for i in range(12):
            compiled = compile_module(
                f"long g{i}; __export long f(long v) {{ g{i} = v; return v; }}",
                CompileOptions(module_name=f"churn{i}", key=system.signing_key),
            )
            loaded = system.kernel.insmod(compiled)
            assert system.kernel.run_function(loaded, "f", [i]) == i
            system.kernel.rmmod(f"churn{i}")
        assert system.kernel.lsmod() == ["e1000e"]

    def test_long_mixed_tx_rx_run(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        system.netdev.enable_interrupts()
        for seq in range(300):
            assert system.netdev.xmit(make_test_frame(64 + seq % 64, seq)) == 0
            if seq % 3 == 0:
                system.netdev.inject_rx(system.sink.last())
        stats = system.netdev.stats()
        assert stats["tx_packets"] == 300
        assert stats["rx_packets"] == 100
        assert system.guard_stats()["denied"] == 0
