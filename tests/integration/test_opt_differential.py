"""Differential property: the -O grid never changes what a module does.

Random mini-C modules run at every optimization level, under both
execution engines, on 1/2/4 simulated CPUs.  Every cell of the grid
must produce bit-identical simulated state — return values and final
global memory — and an identical deny set vs the faithful
-O0/interp/1-CPU baseline.  Guard-check *counts* are the quantity the
optimizer exists to shrink, so they may only depend on the opt level,
never on the engine or CPU count.

A second targeted grid crosses tracing on/off with every enforcement
mode (audit/panic/eject/isolate): what a deny *does* must be identical
at every opt level — -O3's static elision in particular may never hide
a violation or change which enforcement action fires.

Seeds the ROADMAP roundtrip-harness item: the grid is the oracle any
future backend must also satisfy.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel
from repro.vm.interp import GuardViolation

from repro.policy import CaratPolicyModule, PolicyManager

_M64 = (1 << 64) - 1

OPT_LEVELS = (0, 1, 2, 3)
ENGINES = ("interp", "compiled")
CPUS = (1, 2, 4)
MODES = ("audit", "panic", "eject", "isolate")


@st.composite
def traffic_program(draw):
    """Memory-heavy programs biased toward the shapes the optimizer
    rewrites: repeated same-address accesses (elimination), invariant
    addresses in loops (hoisting), constant-index runs and counted
    ``cells[i]`` sweeps (both coalescers)."""
    n_slots = draw(st.integers(min_value=4, max_value=12))
    n_steps = draw(st.integers(min_value=1, max_value=8))
    lines = [f"long cells[{n_slots}];"]
    body = []
    for _ in range(n_steps):
        kind = draw(st.sampled_from(
            ["store", "combine", "repeat", "run", "sweep", "invariant"]
        ))
        a = draw(st.integers(0, n_slots - 1))
        b = draw(st.integers(0, n_slots - 1))
        if kind == "store":
            v = draw(st.integers(-(2**31), 2**31))
            body.append(f"cells[{a}] = seed + {v};")
        elif kind == "combine":
            op = draw(st.sampled_from(["+", "^", "|", "&", "*"]))
            body.append(f"cells[{a}] = cells[{a}] {op} cells[{b}];")
        elif kind == "repeat":
            # Same address twice in one block: dominated-guard food.
            body.append(f"cells[{a}] = cells[{a}] + cells[{a}];")
        elif kind == "run":
            # A run of consecutive constant indices: block coalescing.
            lo = draw(st.integers(0, n_slots - 3))
            body.append(f"cells[{lo}] = seed;")
            body.append(f"cells[{lo + 1}] = seed + 1;")
            body.append(f"cells[{lo + 2}] = seed + 2;")
        elif kind == "sweep":
            # Counted stride-1 sweep: loop range coalescing.
            hi = draw(st.integers(2, n_slots))
            body.append(
                f"for (long i = 0; i < {hi}; i++) "
                f"{{ cells[i] = cells[i] + i + seed; }}"
            )
        else:
            # Loop-invariant address: hoisting.
            body.append(
                f"for (long i = 0; i < {draw(st.integers(1, 5))}; i++) "
                f"{{ cells[{a}] += cells[{b}] + i; }}"
            )
    body.append("long acc = 0;")
    body.append(
        f"for (long i = 0; i < {n_slots}; i++) {{ acc += cells[i] * (i + 1); }}"
    )
    body.append("return acc;")
    lines.append("__export long run(long seed) {")
    lines.extend("    " + l for l in body)
    lines.append("}")
    lines.append("__export long peek(long i) { return cells[i]; }")
    return "\n".join(lines), n_slots


def _run_cell(source, n_slots, seeds, opt_level, engine, cpus):
    """One grid cell: returns (results, memory, denied_set, checks)."""
    kernel = Kernel(engine=engine, ncpus=cpus)
    policy = CaratPolicyModule(kernel).install()
    PolicyManager(kernel).set_default(True)  # allow-everything
    compiled = compile_module(
        source,
        CompileOptions(
            module_name="prog", protect=True, opt_level=opt_level,
            # -O3 proves against the live (default-allow) table.
            verify_table=policy.index if opt_level >= 3 else None,
        ),
    )
    loaded = kernel.insmod(compiled)
    results = [kernel.run_function(loaded, "run", [s & _M64]) for s in seeds]
    memory = [kernel.run_function(loaded, "peek", [i]) for i in range(n_slots)]
    return results, memory, policy.stats.denied, policy.stats.checks


@settings(max_examples=8, deadline=None)
@given(
    traffic_program(),
    st.lists(st.integers(0, _M64), min_size=1, max_size=2),
)
def test_grid_state_identical(program, seeds):
    source, n_slots = program
    baseline = _run_cell(source, n_slots, seeds, 0, "interp", 1)
    checks_by_level = {}
    for opt_level in OPT_LEVELS:
        for engine in ENGINES:
            for cpus in CPUS:
                cell = _run_cell(source, n_slots, seeds, opt_level, engine, cpus)
                label = f"-O{opt_level}/{engine}/cpu{cpus}"
                assert cell[0] == baseline[0], f"{label}: return values differ"
                assert cell[1] == baseline[1], f"{label}: memory differs"
                assert cell[2] == 0 == baseline[2], f"{label}: denies differ"
                # Check counts depend on the opt level alone.
                want = checks_by_level.setdefault(opt_level, cell[3])
                assert cell[3] == want, f"{label}: guard-check count differs"
    # The optimizer must never ADD runtime guard work.
    assert checks_by_level[1] <= checks_by_level[0]
    assert checks_by_level[2] <= checks_by_level[1]
    assert checks_by_level[3] <= checks_by_level[2]


@settings(max_examples=10, deadline=None)
@given(traffic_program(), st.integers(0, _M64))
def test_deny_visibility_is_preserved(program, seed):
    """Under default-deny (audit mode) a module that trips the policy
    faithfully must still trip it at every -O level: optimization may
    merge denials but can never hide one."""
    source, n_slots = program
    denied = {}
    for opt_level in OPT_LEVELS:
        kernel = Kernel()
        policy = CaratPolicyModule(kernel, mode="audit").install()  # deny all
        compiled = compile_module(
            source,
            CompileOptions(
                module_name="prog", protect=True, opt_level=opt_level,
                verify_table=policy.index if opt_level >= 3 else None,
            ),
        )
        loaded = kernel.insmod(compiled)
        kernel.run_function(loaded, "run", [seed])
        denied[opt_level] = policy.stats.denied
    assert denied[0] > 0  # the generated programs always touch memory
    assert denied[1] > 0
    assert denied[2] > 0
    # Under deny-all the -O3 verifier can prove nothing: every guard
    # stays dynamic and the deny set stays visible.
    assert denied[3] > 0


# A fixed program for the mode/trace grid: a few stores and loads, all
# of which trip an empty default-deny policy at the first guard.
_TRIP_SOURCE = """
long state[4];
__export long poke(long seed) {
    state[0] = seed;
    state[1] = state[0] + 7;
    state[2] = state[1] * 3;
    state[3] = state[0] ^ state[2];
    return state[3];
}
"""


def _run_mode_cell(opt_level, mode, trace_on, engine="compiled"):
    """Run the tripwire program under one enforcement mode; returns
    (outcome, denied, violation_faults, entry_refusals)."""
    kernel = Kernel(engine=engine)
    policy = CaratPolicyModule(kernel, mode=mode).install()  # deny all
    if trace_on:
        kernel.trace.enable()
    else:
        kernel.trace.disable()
    compiled = compile_module(
        _TRIP_SOURCE,
        CompileOptions(
            module_name="trip", protect=True, opt_level=opt_level,
            verify_table=policy.index if opt_level >= 3 else None,
        ),
    )
    loaded = kernel.insmod(compiled)
    try:
        rc = kernel.run_function(loaded, "poke", [41])
        outcome = ("returned", rc)
    except GuardViolation:
        outcome = ("panic", None)
    return (
        outcome, policy.stats.denied, kernel.violation_faults,
        kernel.entry_refusals,
    )


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("trace_on", (False, True))
def test_mode_trace_grid(mode, trace_on):
    """Deny *behaviour* — the enforcement action taken, the number of
    violation faults, and whether the module answers afterwards — is a
    function of the enforcement mode alone: identical at every opt
    level (including -O3 elision) and with tracing on or off."""
    baseline = _run_mode_cell(0, mode, trace_on, engine="interp")
    for opt_level, engine in itertools.product(OPT_LEVELS, ENGINES):
        cell = _run_mode_cell(opt_level, mode, trace_on, engine)
        label = f"-O{opt_level}/{engine}/{mode}/trace={trace_on}"
        assert cell[0] == baseline[0], f"{label}: outcome differs"
        assert cell[2] == baseline[2], f"{label}: fault count differs"
        assert cell[1] > 0, f"{label}: deny was hidden"
    # Sanity: the mode dispatch actually differs where it should.
    if mode == "audit":
        assert baseline[0][0] == "returned" and baseline[0][1] not in (None,)
    elif mode == "panic":
        assert baseline[0] == ("panic", None)
    else:  # eject / isolate return -EFAULT through the graceful path
        assert baseline[0][0] == "returned"
        assert baseline[2] == 1
