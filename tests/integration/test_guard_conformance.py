"""Cross-driver guard conformance matrix.

PR 7's adversarial corpus proved the -O3 verifier never certifies a
hostile access.  This suite generalizes that into a conformance matrix
over *both* guarded device stacks: the same four violation classes —
wild pointer, out-of-policy DMA target, overflowing address chain, and
an ISR-context violation — are grafted onto each real driver source
(e1000e and vblk) and must be caught under every enforcement mode
(audit/panic/eject/isolate), both execution engines, and every guard
optimization level -O0..-O3, with fault injection armed on the IRQ
core.  The guard pipeline is shared infrastructure; this matrix is the
proof that its guarantees are driver-independent.
"""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.e1000e import DRIVER_NAME as NIC, DRIVER_SOURCE as NIC_SOURCE
from repro.e1000e.contracts import DRIVER_CONTRACTS as NIC_CONTRACTS
from repro.faults import FaultInjector
from repro.kernel import Kernel, KernelPanic
from repro.kernel.panic import MemoryFault
from repro.policy import CaratPolicyModule, PolicyManager
from repro.vblk import (
    DRIVER_NAME as VBLK,
    DRIVER_SOURCE as VBLK_SOURCE,
    VBLK_CONTRACTS,
)

EFAULT = 14
EACCES = 13

#: The attack payload grafted onto each driver: every conformance cell
#: loads the *real* driver source with these exports appended, so the
#: violations ride in the same module (same globals, same guard
#: instrumentation context) as the production code paths.
CONF_ATTACKS = """
extern int conf_kick(int line);

long conf_cells[8];

__export long conf_wild(long seed) {
    /* Wild integer-to-pointer store into the user half. */
    long *p = (long *)4096;
    *p = seed;
    return seed;
}

__export long conf_dma(long seed) {
    /* A fixed "device doorbell" no policy region ever granted. */
    unsigned int *db = (unsigned int *)8589934592;
    *db = (unsigned int)seed;
    return seed;
}

__export long conf_chain(long seed) {
    /* Attacker-controlled index: base + seed*8 lands anywhere. */
    conf_cells[seed] = seed;
    return conf_cells[0];
}

__export void conf_evil_isr(long line) {
    long *p = (long *)4096;
    *p = line + 1;
}

__export long conf_isr(long line) {
    /* Violate from a nested ISR entry, not the syscall path. */
    if (request_irq((int)line, "conf_evil_isr") != 0) { return -1; }
    conf_kick((int)line);
    return 0;
}
"""

#: vblk-only graft: a forged DMA descriptor targeting ANOTHER queue's
#: ring.  The slot index is attacker-controlled, so the descriptor store
#: computed off queue 1's contracted ring base can land anywhere —
#: including inside queue 2's ring, handing the device a DMA target the
#: submitting queue was never given.  The ring-base contract vouches for
#: queue 1's own reservation only; the verifier must keep this guard
#: dynamic even though *some* slot values land in policy-allowed heap.
VBLK_XQUEUE_ATTACK = """
__export long conf_xq_desc(long slot) {
    long entry = vdev.q1.desc_virt + slot * 32;
    long *forge = (long *)entry;
    *forge = vdev.q2.desc_virt;
    return entry;
}
"""

DRIVERS = {
    NIC: (NIC_SOURCE, NIC_CONTRACTS),
    VBLK: (VBLK_SOURCE, VBLK_CONTRACTS),
}

#: violation class -> (export to call, hostile seed).
CLASSES = {
    "wild_pointer": ("conf_wild", 7),
    "out_of_policy_dma": ("conf_dma", 7),
    "address_chain_overflow": ("conf_chain", (1 << 40) + 3),
    "isr_context": ("conf_isr", 43),
}

MODES = ("audit", "panic", "eject", "isolate")
ENGINES = ("interp", "compiled")
OPT_LEVELS = (0, 1, 2, 3)

_TWINS: dict = {}


def _twin(driver, opt_level):
    """The conformance twin: driver source + attacks, compiled once per
    (driver, opt level) and reused across every cell's fresh kernel.
    Cells rebuild the two-region policy identically, so the -O3
    certificate's digest/epoch revalidate in each of them."""
    key = (driver, opt_level)
    compiled = _TWINS.get(key)
    if compiled is None:
        source, contracts = DRIVERS[driver]
        opts = CompileOptions(
            module_name=driver, protect=True, opt_level=opt_level,
        )
        if opts.verify_enabled():
            template = Kernel()
            policy = CaratPolicyModule(template, mode="audit").install()
            PolicyManager(template).install_two_region_policy()
            template.register_verify_contracts(contracts, module=driver)
            opts.verify_table = policy.index
            opts.contracts = contracts
        compiled = _TWINS[key] = compile_module(source + CONF_ATTACKS, opts)
    return compiled


def _cell(mode, engine, driver, compiled):
    """One fresh conformance cell: kernel + policy + armed fault
    injection + the twin insmodded.  The irq-drop period is chosen so
    the single conformance kick is never the dropped edge."""
    _, contracts = DRIVERS[driver]
    kernel = Kernel(engine=engine)
    policy = CaratPolicyModule(kernel, mode=mode).install()
    PolicyManager(kernel).install_two_region_policy()
    kernel.register_verify_contracts(contracts, module=driver)
    kernel.symbols.export_native(
        "conf_kick", lambda ctx, line: int(kernel.irq.raise_irq(int(line)))
    )
    kernel.irq.fault_injector = FaultInjector(irq_drop_period=5)
    loaded = kernel.insmod(compiled)
    return kernel, policy, loaded


@pytest.mark.parametrize("driver", sorted(DRIVERS))
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("opt_level", OPT_LEVELS)
@pytest.mark.parametrize("mode", MODES)
def test_conformance_matrix(driver, engine, opt_level, mode):
    compiled = _twin(driver, opt_level)
    for cls, (fn, seed) in sorted(CLASSES.items()):
        kernel, policy, loaded = _cell(mode, engine, driver, compiled)
        label = f"{driver}/{cls}/-O{opt_level}/{engine}/{mode}"
        nested = cls == "isr_context"

        if mode == "audit":
            try:
                kernel.run_function(loaded, fn, [seed])
            except MemoryFault:
                # The deny was recorded, then the wild store hit the
                # simulated MMU's unmapped page — audit lets it through.
                pass
            assert driver in kernel.lsmod(), label
            assert not loaded.ejected, label
        elif mode == "panic":
            with pytest.raises(KernelPanic):
                kernel.run_function(loaded, fn, [seed])
            assert kernel.panicked is not None, label
            assert driver in kernel.lsmod(), label
            assert not loaded.ejected, label
        elif mode == "eject":
            rc = kernel.run_function(loaded, fn, [seed])
            # A nested-entry violation defers: the interrupted outer
            # call unwinds cleanly first, then the eject runs.
            assert rc == (0 if nested else -EFAULT), label
            assert loaded.ejected, label
            assert driver not in kernel.lsmod(), label
            assert kernel.panicked is None, label
        else:  # isolate
            rc = kernel.run_function(loaded, fn, [seed])
            assert rc == (0 if nested else -EFAULT), label
            assert driver in kernel.lsmod(), label
            assert not loaded.ejected, label
            assert kernel.isolated_modules() == [driver], label
            assert kernel.run_function(loaded, fn, [seed]) == -EACCES, label

        # Every mode records the violation, attributed to the driver.
        assert policy.violations.get(driver, 0) >= 1, label
        assert policy.driver_stats()[driver]["denied"] >= 1, label


@pytest.mark.parametrize("driver", sorted(DRIVERS))
def test_hostile_twin_never_fully_certified(driver):
    """-O3 soundness, per driver: the verifier proves the production
    guards but must leave every attack guard dynamic — certifying one
    would elide the only check between the module and the escape."""
    compiled = _twin(driver, 3)
    assert compiled.certificate is not None
    assert compiled.guards_proven > 0, driver
    assert compiled.guards_dynamic > 0, (
        f"{driver}: the verifier certified every guard — a hostile "
        f"access was falsely proven"
    )


@pytest.mark.parametrize("driver", sorted(DRIVERS))
def test_attack_guards_stay_dynamic_after_insmod(driver):
    """The elision set actually installed at insmod keeps the denies
    live: each attack still takes its runtime deny on a verified load."""
    kernel, policy, loaded = _cell("audit", "compiled", driver,
                                   _twin(driver, 3))
    assert loaded.verify_state == "verified"
    assert loaded.elided_guards  # the production guards did elide
    for cls, (fn, seed) in sorted(CLASSES.items()):
        denied_before = policy.stats.denied
        try:
            kernel.run_function(loaded, fn, [seed])
        except MemoryFault:
            pass
        assert policy.stats.denied > denied_before, f"{driver}/{cls}"


def _vblk_xq_twin():
    """The vblk conformance twin plus the cross-queue descriptor forge,
    compiled once at -O3 with the production contracts in force."""
    key = ("vblk+xq", 3)
    compiled = _TWINS.get(key)
    if compiled is None:
        source, contracts = DRIVERS[VBLK]
        opts = CompileOptions(module_name=VBLK, protect=True, opt_level=3)
        template = Kernel()
        policy = CaratPolicyModule(template, mode="audit").install()
        PolicyManager(template).install_two_region_policy()
        template.register_verify_contracts(contracts, module=VBLK)
        opts.verify_table = policy.index
        opts.contracts = contracts
        compiled = _TWINS[key] = compile_module(
            source + CONF_ATTACKS + VBLK_XQUEUE_ATTACK, opts
        )
    return compiled


class TestCrossQueueDma:
    """Multi-queue -O3 soundness: per-queue ring contracts never launder
    a descriptor aimed at another queue's ring into a proven guard."""

    def test_forged_descriptor_store_never_certified(self):
        compiled = _vblk_xq_twin()
        assert compiled.certificate is not None
        verdicts = dict(compiled.certificate.verdicts)
        bits = verdicts["conf_xq_desc"]
        # The loads of the contracted ring-base fields may prove (they
        # are module-global reads), but the forged store's guard must
        # stay dynamic: at least one unproven guard in the function...
        assert bits and 0 in bits, bits
        # ...while the production driver around it still certifies.
        assert compiled.guards_proven > 0

    def test_forged_descriptor_takes_runtime_deny_after_elision(self):
        """The installed elision set keeps the forge's deny live: on a
        *verified* -O3 load, the attacker-indexed descriptor store still
        hits its dynamic guard."""
        kernel, policy, loaded = _cell("audit", "compiled", VBLK,
                                       _vblk_xq_twin())
        assert loaded.verify_state == "verified"
        assert loaded.elided_guards
        denied_before = policy.stats.denied
        try:
            kernel.run_function(loaded, "conf_xq_desc", [(1 << 40) + 1])
        except MemoryFault:
            pass
        assert policy.stats.denied > denied_before
        assert policy.violations.get(VBLK, 0) >= 1


class TestVblkSmpIdentity:
    def test_blkblast_bit_identical_across_cpus(self):
        """The vblk stack honours the SMP determinism contract: the same
        timed workload produces bit-identical results on 1, 2, 4 CPUs."""
        results = []
        for cpus in (1, 2, 4):
            system = CaratKopSystem(SystemConfig(
                machine="r415", driver="vblk", opt_level=3, cpus=cpus,
            ))
            res = system.blkblast(count=120, nsect=2, pattern="rand",
                                  seed=11, read_frac=40)
            results.append((
                res.ops_done, res.reads, res.writes, res.flushes,
                res.errors, res.bytes_read, res.bytes_written,
                res.total_cycles,
                system.blkdev.stats()["data_sig"],
            ))
        assert results[0] == results[1] == results[2]

    def test_blkblast_media_identical_across_cpus_at_queues_auto(self):
        """With ``queues="auto"`` each CPU owns its own queue pair, so
        cycle counts legitimately change with the CPU count (that is the
        multi-queue speedup) — but the functional outcome and the final
        media image must not."""
        import hashlib

        fingerprints = []
        cycles = {}
        for cpus in (1, 2, 4):
            system = CaratKopSystem(SystemConfig(
                machine="r415", driver="vblk", opt_level=3, cpus=cpus,
                queues="auto",
            ))
            res = system.blkblast(count=120, nsect=8, pattern="rand",
                                  seed=11, read_frac=40, flush_interval=8)
            fingerprints.append((
                res.ops_done, res.reads, res.writes, res.flushes,
                res.errors, res.bytes_read, res.bytes_written,
                system.blkdev.stats()["data_sig"],
                hashlib.sha256(bytes(system.device.store)).hexdigest(),
            ))
            cycles[cpus] = res.total_cycles
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]
        # Independent per-queue media channels: more queues, less wall
        # clock on a device-bound workload.
        assert cycles[4] < cycles[1]
