"""caratkop-policyd end-to-end: chaos runs are bit-identical to clean.

The headline robustness property from the control-plane work: run the
multi-tenant workload with every publish-path fault hook armed, and the
guard-visible policy state (composed regions, generation sequence,
probe decisions, violation ledger) digests identically to a fault-free
run — every injected failure was absorbed by retry, repair, or a
recorded auto-rollback before any decision was served.
"""

import pytest

from repro.policy.policyd import chaos_injector, run_policyd

#: Small but real: 3 well-behaved tenants + the hostile one, a couple of
#: staged generations per tenant, every fault hook firing repeatedly.
SCALE = dict(tenants=3, regions=24, rounds=1, batch_ops=8, blast_count=8)


def _run(engine="compiled", cpus=1, chaos=True):
    return run_policyd(
        engine=engine, cpus=cpus,
        injector=chaos_injector() if chaos else None, **SCALE,
    )


class TestChaosEqualsClean:
    @pytest.mark.parametrize("engine", ["interp", "compiled"])
    @pytest.mark.parametrize("cpus", [1, 2])
    def test_digests_match_per_cell(self, engine, cpus):
        chaos = _run(engine=engine, cpus=cpus, chaos=True)
        clean = _run(engine=engine, cpus=cpus, chaos=False)
        assert chaos["settled_digest"] == clean["settled_digest"]
        assert chaos["full_digest"] == clean["full_digest"]
        assert chaos["generation"] == clean["generation"]
        assert chaos["replica_divergence"] == 0
        assert clean["replica_divergence"] == 0

    def test_settled_digest_is_cell_independent(self):
        """Settled state doesn't depend on engine, CPU count, or faults:
        one digest across the whole grid."""
        digests = {
            _run(engine=e, cpus=c, chaos=chaos)["settled_digest"]
            for e in ("interp", "compiled")
            for c in (1, 2)
            for chaos in (True, False)
        }
        assert len(digests) == 1


class TestChaosRunExercisesEverything:
    @pytest.fixture(scope="class")
    def chaos(self):
        return _run(chaos=True)

    def test_every_fault_hook_fired(self, chaos):
        inj = chaos["injector"]
        assert inj["dropped_publishes"] >= 1
        assert inj["stalled_publishes"] >= 1
        assert inj["corrupted_replicas"] >= 1
        assert inj["torn_batches"] >= 1
        assert inj["quota_race_storms"] >= 1

    def test_faults_resolved_by_retry_or_rollback(self, chaos):
        """Every injected publish failure ends in a watchdog retry or a
        recorded auto-rollback — none raised through, none went torn."""
        assert chaos["publish_retries"] >= 1
        assert chaos["replica_repairs"] >= 1
        assert chaos["torn_batches"] >= 1  # rejected whole, then retried
        assert chaos["batches_retried"] >= 1
        assert not chaos["panicked"]

    def test_hostile_tenant_autorollback_recorded(self, chaos):
        assert chaos["rollbacks"] >= 1
        assert any("violation budget exceeded" in r
                   for r in chaos["rollback_reasons"])
        hostile = chaos["tenant_stats"]["hostile"]
        assert hostile["rollbacks"] >= 1

    def test_o3_probe_demoted_exactly_once(self, chaos):
        assert chaos["probe_elided_at_load"] >= 1
        assert chaos["probe_elided_now"] == 0
        assert chaos["verify_demotions"] == 1

    def test_traffic_flowed_throughout(self, chaos):
        assert chaos["delivered_frames"] > 0
        assert chaos["composed_regions"] >= SCALE["regions"]
