"""docs/TUTORIAL.md must stay executable — this test IS the tutorial."""

import pytest

from repro import CompileOptions, Kernel, KernelPanic, SigningKey, compile_module
from repro.policy import CaratPolicyModule, PolicyManager, PolicyMiner

SOURCE = """
extern void *kmalloc(long size, int flags);
extern int printk(char *fmt, ...);

enum { SLOTS = 64 };

long *samples;
long head;

__export int init_module(void) {
    samples = (long *)kmalloc(SLOTS * 8, 0);
    printk("stats_collector ready");
    return 0;
}

__export void record(long value) {
    samples[head % SLOTS] = value;
    head += 1;
}

__export long latest(void) {
    return head ? samples[(head - 1) % SLOTS] : 0;
}
"""

BUGGY = SOURCE.replace("samples[head % SLOTS]", "samples[SLOTS]")


def test_tutorial_end_to_end():
    # step 2: compile twice
    key = SigningKey.generate()
    baseline = compile_module(
        SOURCE, CompileOptions(module_name="stats", protect=False, key=key)
    )
    protected = compile_module(
        SOURCE, CompileOptions(module_name="stats", protect=True, key=key)
    )
    assert protected.guard_count > 0
    assert protected.stats.code_growth > 1.0
    assert protected.signature.guarded

    # step 3: boot + insmod
    kernel = Kernel(signing_key=key, require_protected_modules=True)
    policy = CaratPolicyModule(kernel).install()
    manager = PolicyManager(kernel)
    manager.install_two_region_policy()

    from repro.kernel import LoadError

    with pytest.raises(LoadError):
        kernel.insmod(baseline)  # strict kernel refuses the baseline

    loaded = kernel.insmod(protected)
    kernel.run_function(loaded, "record", [42])
    assert kernel.run_function(loaded, "latest", []) == 42
    assert policy.stats.checks > 0

    # step 4: mine a tight policy
    miner = PolicyMiner(policy, max_regions=8)
    with miner:
        for v in range(200):
            kernel.run_function(loaded, "record", [v])
    mined = miner.mine(page_align=False)
    assert 1 <= len(mined.regions) <= 8
    mined.install(manager)
    denied_before = policy.stats.denied
    for v in range(200):
        kernel.run_function(loaded, "record", [v])
    assert policy.stats.denied == denied_before  # zero denials on replay

    # step 5: the buggy build gets caught on its first stray store
    kernel2 = Kernel(signing_key=key, require_protected_modules=True)
    policy2 = CaratPolicyModule(kernel2).install()
    manager2 = PolicyManager(kernel2)
    manager2.install_two_region_policy()
    buggy = compile_module(
        BUGGY, CompileOptions(module_name="stats", protect=True, key=key)
    )
    loaded2 = kernel2.insmod(buggy)
    # The operator's tight hand-written policy: the module's globals plus
    # exactly its 64-slot ring (the pointer is in the module's `samples`
    # global), nothing else.
    ring = kernel2.address_space.read_int(loaded2.address_of("samples"), 8)
    manager2.clear()
    manager2.allow(loaded2.base, loaded2.size)
    manager2.allow(ring, 64 * 8)
    manager2.set_default(False)
    # The stray store lands one slot past the ring: out of policy.
    with pytest.raises(KernelPanic, match="forbidden W"):
        kernel2.run_function(loaded2, "record", [1])
    assert any("DENY module=stats" in l for l in kernel2.dmesg_log)


def test_tutorial_trace_the_crash(tmp_path):
    # step 6: same buggy module, but traced and ejected instead of panicked
    key = SigningKey.generate()
    kernel = Kernel(signing_key=key, require_protected_modules=True)
    policy = CaratPolicyModule(kernel, mode="eject").install()
    manager = PolicyManager(kernel)
    manager.install_two_region_policy()

    trace = kernel.trace
    trace.enable()  # flip every static key on

    buggy = compile_module(
        BUGGY, CompileOptions(module_name="stats", protect=True, key=key)
    )
    loaded = kernel.insmod(buggy)
    ring = kernel.address_space.read_int(loaded.address_of("samples"), 8)
    manager.clear()
    manager.allow(loaded.base, loaded.size)
    manager.allow(ring, 64 * 8)
    manager.set_default(False)

    rc = kernel.run_function(loaded, "record", [1])
    trace.disable()

    assert rc == -14  # -EFAULT: the call failed cleanly
    assert loaded.ejected
    assert "stats" not in kernel.lsmod()
    assert kernel.panicked is None  # nobody died this time

    # the whole story is on film
    names = [e.name for e in trace.snapshot()]
    for expected in ("module:verify", "module:load", "mem:kmalloc",
                     "guard:check", "guard:deny", "module:eject",
                     "journal:rollback"):
        assert expected in names, f"missing {expected}"
    deny = next(e for e in trace.snapshot() if e.name == "guard:deny")
    assert deny.args["module"] == "stats"
    assert deny.args["kind"] == "memory"

    stat = kernel.proc.read("/proc/trace_stat")
    assert "[guard cycle cost]" in stat
    assert "stats:@" in stat  # per-callsite attribution

    from repro.trace import to_folded

    folded = tmp_path / "stats.folded"
    folded.write_text(to_folded(trace.snapshot(), weight="cycles"))
    lines = folded.read_text().splitlines()
    assert lines
    assert all(l.rsplit(" ", 1)[0].endswith("carat_guard") for l in lines)
    assert any(";record;" in l or ";init_module;" in l for l in lines)


def test_tutorial_tenant_quota_rollback():
    # step 7: a tenant blows its violation budget; the canary generation
    # auto-rolls back and /proc/carat + the trace carry the evidence
    from repro.policy import (
        ControlPlaneConfig, OP_ADD, PolicyControlPlane, PolicyManager,
    )

    kernel = Kernel(ncpus=2)
    policy = CaratPolicyModule(kernel, enforce=False).install()
    manager = PolicyManager(kernel)
    cp = PolicyControlPlane(
        kernel, policy, ControlPlaneConfig(canary_tick_limit=4),
    ).attach()
    trace = kernel.trace
    trace.enable()

    manager.create_tenant("metrics", max_regions=8, violation_budget=2)
    gen = manager.batch_mutate("metrics", [
        (OP_ADD, 0x5000_0000, 0x1000, 0),      # prot=0: a deny region
    ])
    assert gen == 2  # staged on the canary CPU only
    assert manager.cp_status()["staged_generation"] == 2

    for _ in range(4):          # CPU 0 is the canary; these all deny
        policy._guard(None, 0x5000_0040, 8, 1, "metrics_probe")
    assert manager.cp_tick() == 2  # AUTO-ROLLED BACK: 4 denies > budget 2
    trace.disable()

    # the staged generation is gone and its number went back to the pool
    status = manager.cp_status()
    assert status["generation"] == 1
    assert status["staged_generation"] == 0
    assert status["rollbacks"] == 1
    assert manager.tenant_stats("metrics")["regions"] == 0  # undone

    # the operator's evidence: /proc/carat...
    text = kernel.proc.read("/proc/carat")
    assert "controlplane: generation 1, 1 tenant(s)" in text
    assert "1 rolled back" in text
    assert "rollback gen 2 (metrics): violation budget exceeded" in text

    # ...and the lifecycle on film
    names = [e.name for e in trace.snapshot()]
    for expected in ("cp:batch", "cp:stage", "cp:rollback"):
        assert expected in names, f"missing {expected}"
    rollback = next(e for e in trace.snapshot() if e.name == "cp:rollback")
    assert rollback.args["tenant"] == "metrics"
    assert "violation budget exceeded" in rollback.args["reason"]


FLUSHER = """
/* stale: points into the user half after a buffer-reuse bug
   (0x400000000000 = userspace) */
long pending_bio = 70368744177664;

__export long flush_one(long tag) {
    long *bio = (long *)pending_bio;
    *bio = tag;                     /* stray store through the stale bio */
    return tag;
}
"""


def test_tutorial_storage_violation_eject():
    # step 8: a second guarded stack — the disk keeps serving after a
    # sidecar module is ejected for a storage violation
    from repro.core.system import CaratKopSystem

    system = CaratKopSystem(driver="vblk", machine=None, protect=True,
                            enforce_mode="eject")
    before = system.blkblast(count=32, pattern="rand", seed=2)
    assert before.errors == 0

    flusher = compile_module(FLUSHER, CompileOptions(
        module_name="flusherd", protect=True, key=system.signing_key,
    ))
    loaded = system.kernel.insmod(flusher)
    rc = system.kernel.run_function(loaded, "flush_one", [7])

    assert rc == -14            # -EFAULT: the stray store never landed
    assert loaded.ejected
    assert "flusherd" not in system.kernel.lsmod()
    assert system.kernel.panicked is None

    # the disk driver is untouched and still moving data
    assert "vblk" in system.kernel.lsmod()
    after = system.blkblast(count=32, pattern="rand", seed=3)
    assert after.errors == 0

    # /proc/carat attributes the denial to the module that caused it
    text = system.kernel.proc.read("/proc/carat")
    assert "driver[flusherd]: checks=" in text
    assert "denied=1" in text.split("driver[flusherd]")[1].split("\n")[0]
    assert "denied=0" in text.split("driver[vblk]")[1].split("\n")[0]


def test_tutorial_multiqueue_scaling():
    # step 8b: per-CPU queue pairs vs one shared queue — 2x+ the iops,
    # bit-identical disk image, per-queue stats in /proc
    from repro.core.system import CaratKopSystem, SystemConfig

    workload = dict(count=240, nsect=8, pattern="rand", seed=7,
                    flush_interval=8)

    sq = CaratKopSystem(SystemConfig(
        machine="r415", driver="vblk", cpus=4, queues=1,
    ))
    slow = sq.blkblast(**workload)
    assert slow.errors == 0

    mq = CaratKopSystem(SystemConfig(
        machine="r415", driver="vblk", cpus=4, queues="auto",
    ))
    fast = mq.blkblast(**workload)
    assert fast.errors == 0

    assert fast.throughput_iops >= 2 * slow.throughput_iops
    assert bytes(sq.device.store) == bytes(mq.device.store)

    # queue 0 (admin) created the four I/O pairs; all carried traffic
    # let the trailing requests' media time elapse, then harvest
    mq.kernel.vm.timing.add_cycles(10_000_000)
    mq.device.sync()
    rows = {r["queue"]: r for r in mq.device.queue_stats()}
    assert all(rows[q]["created"] for q in range(5))
    assert all(rows[q]["doorbells"] > 0 for q in range(1, 5))
    assert all(rows[q]["in_flight"] == 0 for q in range(5))

    carat = mq.kernel.proc.read("/proc/carat")
    for q in range(1, 5):
        assert f"queue[{q}]: io" in carat
    stat = mq.kernel.proc.read("/proc/trace_stat")
    assert "[blk queues]" in stat
