"""docs/TUTORIAL.md must stay executable — this test IS the tutorial."""

import pytest

from repro import CompileOptions, Kernel, KernelPanic, SigningKey, compile_module
from repro.policy import CaratPolicyModule, PolicyManager, PolicyMiner

SOURCE = """
extern void *kmalloc(long size, int flags);
extern int printk(char *fmt, ...);

enum { SLOTS = 64 };

long *samples;
long head;

__export int init_module(void) {
    samples = (long *)kmalloc(SLOTS * 8, 0);
    printk("stats_collector ready");
    return 0;
}

__export void record(long value) {
    samples[head % SLOTS] = value;
    head += 1;
}

__export long latest(void) {
    return head ? samples[(head - 1) % SLOTS] : 0;
}
"""

BUGGY = SOURCE.replace("samples[head % SLOTS]", "samples[SLOTS]")


def test_tutorial_end_to_end():
    # step 2: compile twice
    key = SigningKey.generate()
    baseline = compile_module(
        SOURCE, CompileOptions(module_name="stats", protect=False, key=key)
    )
    protected = compile_module(
        SOURCE, CompileOptions(module_name="stats", protect=True, key=key)
    )
    assert protected.guard_count > 0
    assert protected.stats.code_growth > 1.0
    assert protected.signature.guarded

    # step 3: boot + insmod
    kernel = Kernel(signing_key=key, require_protected_modules=True)
    policy = CaratPolicyModule(kernel).install()
    manager = PolicyManager(kernel)
    manager.install_two_region_policy()

    from repro.kernel import LoadError

    with pytest.raises(LoadError):
        kernel.insmod(baseline)  # strict kernel refuses the baseline

    loaded = kernel.insmod(protected)
    kernel.run_function(loaded, "record", [42])
    assert kernel.run_function(loaded, "latest", []) == 42
    assert policy.stats.checks > 0

    # step 4: mine a tight policy
    miner = PolicyMiner(policy, max_regions=8)
    with miner:
        for v in range(200):
            kernel.run_function(loaded, "record", [v])
    mined = miner.mine(page_align=False)
    assert 1 <= len(mined.regions) <= 8
    mined.install(manager)
    denied_before = policy.stats.denied
    for v in range(200):
        kernel.run_function(loaded, "record", [v])
    assert policy.stats.denied == denied_before  # zero denials on replay

    # step 5: the buggy build gets caught on its first stray store
    kernel2 = Kernel(signing_key=key, require_protected_modules=True)
    policy2 = CaratPolicyModule(kernel2).install()
    manager2 = PolicyManager(kernel2)
    manager2.install_two_region_policy()
    buggy = compile_module(
        BUGGY, CompileOptions(module_name="stats", protect=True, key=key)
    )
    loaded2 = kernel2.insmod(buggy)
    # The operator's tight hand-written policy: the module's globals plus
    # exactly its 64-slot ring (the pointer is in the module's `samples`
    # global), nothing else.
    ring = kernel2.address_space.read_int(loaded2.address_of("samples"), 8)
    manager2.clear()
    manager2.allow(loaded2.base, loaded2.size)
    manager2.allow(ring, 64 * 8)
    manager2.set_default(False)
    # The stray store lands one slot past the ring: out of policy.
    with pytest.raises(KernelPanic, match="forbidden W"):
        kernel2.run_function(loaded2, "record", [1])
    assert any("DENY module=stats" in l for l in kernel2.dmesg_log)
