"""Graceful enforcement end-to-end: eject, rollback, quarantine, isolate.

The paper's enforcement is a panic (§3.1); §5 names "cleanly handle
forbidden accesses" as future work.  These tests exercise that subsystem:
a violating module is ejected mid-call, every journaled side effect is
rolled back, its signature is quarantined, and the rest of the machine —
including the guarded driver under live traffic — keeps running.
"""

import struct

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.core.system import CaratKopSystem, SystemConfig
from repro.faults import run_soak
from repro.faults.soak import ATTACK_ADDR, HOSTILE_MODULE, HOSTILE_NAME
from repro.kernel import IoctlError, KernelPanic, LoadError

EFAULT = 14
EACCES = 13


def _system(mode):
    return CaratKopSystem(SystemConfig(machine=None, protect=True,
                                       enforce_mode=mode))


def _hostile(system):
    compiled = compile_module(HOSTILE_MODULE, CompileOptions(
        module_name=HOSTILE_NAME, key=system.signing_key))
    return compiled, system.kernel.insmod(compiled)


class TestEject:
    def test_rollback_is_complete(self):
        system = _system("eject")
        kernel = system.kernel
        alloc_base = kernel.kmalloc_allocator.snapshot()
        irq_base = len(kernel.irq._actions)
        timer_base = kernel.timers.pending()
        sym_base = len(kernel.symbols)

        _, loaded = _hostile(system)
        assert kernel.journal.depth(HOSTILE_NAME) >= 4

        rc = kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        assert rc == -EFAULT
        assert loaded.ejected
        assert HOSTILE_NAME not in kernel.lsmod()
        assert kernel.panicked is None

        assert kernel.kmalloc_allocator.snapshot() == alloc_base
        assert len(kernel.irq._actions) == irq_base
        assert kernel.timers.pending() == timer_base
        assert len(kernel.symbols) == sym_base
        assert kernel.journal.depth(HOSTILE_NAME) == 0

        summary = kernel.journal.rollbacks[-1]
        assert summary["module"] == HOSTILE_NAME
        assert summary["kmalloc_allocations"] == 2
        assert summary["kmalloc_bytes"] == 256 + 1024
        assert summary["irqs"] == 1
        assert summary["timers"] == 1
        assert summary["symbols"] == 4

    def test_machine_survives_and_moves_packets(self):
        system = _system("eject")
        _, loaded = _hostile(system)
        system.kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        assert system.kernel.lsmod() == ["e1000e"]
        result = system.blast(size=128, count=25)
        assert result.errors == 0
        assert system.sink.packets == 25

    def test_dmesg_narrates_the_ejection(self):
        system = _system("eject")
        _, loaded = _hostile(system)
        system.kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        log = "\n".join(system.kernel.dmesg_log)
        assert f"violation fault in {HOSTILE_NAME}" in log
        assert "ejected" in log
        assert "quarantined" in log

    def test_stale_handle_is_refused(self):
        system = _system("eject")
        _, loaded = _hostile(system)
        system.kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        refusals = system.kernel.entry_refusals
        assert system.kernel.run_function(loaded, "hostile_ticks", []) == -EACCES
        assert system.kernel.entry_refusals == refusals + 1

    def test_per_module_override_ejects_under_global_panic(self):
        system = _system(None)  # global default: panic
        system.policy.set_module_mode(HOSTILE_NAME, "eject")
        _, loaded = _hostile(system)
        rc = system.kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        assert rc == -EFAULT
        assert loaded.ejected
        assert system.kernel.panicked is None


class TestQuarantine:
    def test_reinsmod_blocked_until_lifted(self):
        system = _system("eject")
        compiled, loaded = _hostile(system)
        system.kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        with pytest.raises(LoadError, match="quarantined"):
            system.kernel.insmod(compiled)
        assert system.policy_manager.unquarantine(HOSTILE_NAME)
        again = system.kernel.insmod(compiled)
        assert HOSTILE_NAME in system.kernel.lsmod()
        assert not again.ejected

    def test_unquarantine_of_clean_name_reports_false(self):
        system = _system("eject")
        assert not system.policy_manager.unquarantine("nothing")

    def test_other_modules_unaffected(self):
        system = _system("eject")
        compiled, loaded = _hostile(system)
        system.kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        bystander = compile_module(
            "__export long f(void) { return 1; }",
            CompileOptions(module_name="bystander", key=system.signing_key))
        loaded_b = system.kernel.insmod(bystander)
        assert system.kernel.run_function(loaded_b, "f", []) == 1


class TestIsolate:
    def test_isolation_semantics(self):
        system = _system("isolate")
        kernel = system.kernel
        irq_base = len(kernel.irq._actions)
        timer_base = kernel.timers.pending()
        _, loaded = _hostile(system)

        rc = kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        assert rc == -EFAULT
        # Isolated, not ejected: still resident, but fenced off.
        assert HOSTILE_NAME in kernel.lsmod()
        assert not loaded.ejected
        assert kernel.isolated_modules() == [HOSTILE_NAME]
        assert kernel.run_function(loaded, "hostile_ticks", []) == -EACCES
        # Its interrupt sources are quiesced immediately.
        assert len(kernel.irq._actions) == irq_base
        assert kernel.timers.pending() == timer_base

    def test_rmmod_of_isolated_ejects_without_quarantine(self):
        system = _system("isolate")
        kernel = system.kernel
        compiled, loaded = _hostile(system)
        kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        kernel.rmmod(HOSTILE_NAME)
        assert HOSTILE_NAME not in kernel.lsmod()
        assert kernel.journal.depth(HOSTILE_NAME) == 0
        # An operator rmmod is not a conviction: re-insmod is allowed.
        kernel.insmod(compiled)
        assert HOSTILE_NAME in kernel.lsmod()


class TestDeferredEject:
    SRC = """
    extern void *kmalloc(long size, int flags);
    extern int request_irq(int line, char *handler);
    extern int kick(int line);

    long *stash;
    long trace;

    __export void evil_isr(long line) {
        long *p = (long *)4096;
        *p = 1;
    }

    int init_module(void) {
        stash = (long *)kmalloc(64, 0);
        if (stash == null) { return -1; }
        trace = 0;
        if (request_irq(41, "evil_isr") != 0) { return -1; }
        return 0;
    }

    __export long trigger(void) {
        trace = 1;
        kick(41);
        trace = 2;
        return trace;
    }
    """

    def test_fault_in_nested_entry_defers_until_unwind(self):
        """An ISR (nested kernel->module entry) that violates policy must
        not rip the module out from under the interrupted outer call; the
        eject is parked and runs when the outermost call unwinds."""
        system = _system("eject")
        kernel = system.kernel
        kernel.symbols.export_native(
            "kick", lambda ctx, line: int(kernel.irq.raise_irq(int(line))))
        alloc_base = kernel.kmalloc_allocator.snapshot()
        compiled = compile_module(self.SRC, CompileOptions(
            module_name="nested", key=system.signing_key))
        loaded = kernel.insmod(compiled)

        rc = kernel.run_function(loaded, "trigger", [])
        # The interrupted outer call ran to completion (trace reached 2):
        # the ejection waited for the stack to unwind.
        assert rc == 2
        assert loaded.ejected
        assert "nested" not in kernel.lsmod()
        assert kernel.panicked is None
        assert kernel.kmalloc_allocator.snapshot() == alloc_base
        log = "\n".join(kernel.dmesg_log)
        assert "deferred" in log


class TestAuditAndPanic:
    def test_audit_counts_but_does_not_raise(self):
        system = _system("audit")
        kernel = system.kernel
        victim = kernel.kmalloc_allocator.kmalloc(64)
        kernel.address_space.write_bytes(victim, b"SAFE")
        mgr = system.policy_manager
        mgr.clear()
        mgr.deny(victim, 64)
        mgr.allow(0xFFFF_8000_0000_0000, (1 << 64) - 0xFFFF_8000_0000_0000)
        mgr.set_default(False)
        smasher = compile_module(
            "__export void f(long a) { *(long *)a = 0; }",
            CompileOptions(module_name="smasher", key=system.signing_key))
        loaded = kernel.insmod(smasher)
        kernel.run_function(loaded, "f", [victim])
        # Audit mode: the access went through, got counted, nothing died.
        assert kernel.address_space.read_bytes(victim, 4) != b"SAFE"
        assert system.policy.violations["smasher"] == 1
        assert "smasher" in kernel.lsmod()
        assert kernel.panicked is None

    def test_panic_mode_is_the_paper_behaviour(self):
        system = _system(None)  # default: panic
        _, loaded = _hostile(system)
        with pytest.raises(KernelPanic):
            system.kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        assert system.kernel.panicked is not None
        # No graceful machinery fired: the module was not ejected.
        assert HOSTILE_NAME in system.kernel.lsmod()
        assert not loaded.ejected
        log = "\n".join(system.kernel.dmesg_log)
        assert "DENY" in log


class TestChardevRollback:
    SRC = """
    extern int register_chrdev(char *path, char *handler);
    __export long handler(long cmd, void *buf, long len) {
        return cmd * 2;
    }
    int init_module(void) {
        return register_chrdev("/dev/gadget", "handler");
    }
    __export long attack(long addr) { *(long *)addr = 1; return 0; }
    """

    def test_registered_device_works_then_rolls_back(self):
        system = _system("eject")
        kernel = system.kernel
        compiled = compile_module(self.SRC, CompileOptions(
            module_name="gadget", key=system.signing_key))
        loaded = kernel.insmod(compiled)
        out = kernel.devices.ioctl("/dev/gadget", 21)
        assert struct.unpack("<q", out)[0] == 42
        assert kernel.journal.depth_by_kind("gadget")["chardev"] == 1

        kernel.run_function(loaded, "attack", [ATTACK_ADDR])
        assert kernel.journal.rollbacks[-1]["chardevs"] == 1
        with pytest.raises(IoctlError) as ei:
            kernel.devices.ioctl("/dev/gadget", 21)
        assert ei.value.errno == 2  # ENOENT: the node is gone


class TestSoakAcceptance:
    def test_fifty_cycles_zero_leaks(self):
        report = run_soak(cycles=50, machine=None, blast_count=10)
        assert report["cycles_completed"] == 50
        assert report["ejections"] == 50
        assert report["leaked_bytes_total"] == 0
        assert report["delivered_frames"] == 50 * 10
        assert all(c["leaked_bytes"] == 0 for c in report["per_cycle"])

    def test_both_engines_complete_the_soak(self):
        a = run_soak(cycles=5, machine=None, engine="interp", blast_count=5)
        b = run_soak(cycles=5, machine=None, engine="compiled", blast_count=5)
        assert a["cycles_completed"] == b["cycles_completed"] == 5
        assert a["leaked_bytes_total"] == b["leaked_bytes_total"] == 0
