"""End-to-end scenarios: the paper's claims exercised through the full
stack (compiler → signing → loader → VM → policy → device → sink)."""

import pytest

from repro import (
    CaratKopSystem,
    CompileOptions,
    KernelPanic,
    LoadError,
    SystemConfig,
    compile_module,
)
from repro.kernel import layout
from repro.net import make_test_frame


class TestPaperStory:
    def test_protected_driver_full_path(self):
        """The §4 experiment end to end on the simulated R350."""
        system = CaratKopSystem(SystemConfig(machine="r350", protect=True,
                                             strict_kernel=True))
        result = system.blast(size=128, count=500)
        assert result.errors == 0
        assert system.sink.packets == 500
        stats = system.guard_stats()
        assert stats["checks"] > 5_000
        assert stats["denied"] == 0
        # Every wire frame is intact (DMA read the right bytes).
        assert system.sink.recent[-1] == make_test_frame(128, 499).encode()

    def test_two_region_policy_is_exactly_the_papers(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        regions = system.policy.index.regions()
        assert len(regions) == 2
        # "kernel addresses (the 'high half') are allowed, but user
        # addresses (the 'low half') are disallowed" (§4.2 fn 5)
        assert regions[0].base == layout.KERNEL_SPACE_START
        assert regions[0].permits(0x3)
        assert regions[1].base == 0
        assert regions[1].prot == 0

    def test_rogue_module_cannot_touch_user_half(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        rogue = compile_module(
            "__export long peek(long a) { return *(long *)a; }",
            CompileOptions(module_name="rogue", key=system.signing_key),
        )
        loaded = system.kernel.insmod(rogue)
        with pytest.raises(KernelPanic, match="CARAT KOP: forbidden R"):
            system.kernel.run_function(loaded, "peek", [0x4000_0000])
        assert system.kernel.panicked is not None

    def test_same_rogue_module_unprotected_reads_freely(self):
        # Make the user-half address actually mapped so the contrast is
        # "policy stops it" vs "nothing stops it".
        system = CaratKopSystem(SystemConfig(machine=None, protect=True))
        kernel = system.kernel
        target = kernel.kmalloc_allocator.kmalloc(64)
        kernel.address_space.write_int(target, 8, 0x5EC12E7)
        rogue = compile_module(
            "__export long peek(long a) { return *(long *)a; }",
            CompileOptions(module_name="rogue2", protect=False),
        )
        loaded = kernel.insmod(rogue)
        assert kernel.run_function(loaded, "peek", [target]) == 0x5EC12E7

    def test_guard_failure_is_one_of_three_causes(self):
        """§3.1: wrong policy / bug / attack all hard-stop identically."""
        system = CaratKopSystem(SystemConfig(machine=None))
        # "wrong policy": deny the module its own ring memory.
        system.policy_manager.clear()
        system.policy_manager.set_default(False)
        with pytest.raises(KernelPanic):
            system.blast(size=128, count=1)

    def test_driver_survives_policy_tightening_that_still_covers_it(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        mgr = system.policy_manager
        mgr.clear()
        # Precise allow-list instead of the whole high half: module area,
        # direct map (ring + skbs), vmalloc/ioremap window, kernel stack.
        mgr.allow(layout.MODULE_AREA_BASE, layout.MODULE_AREA_SIZE)
        mgr.allow(layout.DIRECT_MAP_BASE, 64 << 20)
        mgr.allow(layout.VMALLOC_BASE, layout.VMALLOC_SIZE)
        mgr.allow(layout.KSTACK_BASE, layout.KSTACK_SIZE)
        mgr.set_default(False)
        result = system.blast(size=128, count=100)
        assert result.errors == 0
        assert system.guard_stats()["denied"] == 0


class TestModuleInterposition:
    def test_module_to_module_calls_cross_guard_domains(self, key):
        """A protected module calling an exported symbol of another
        protected module: both sides' accesses are guarded."""
        system = CaratKopSystem(SystemConfig(machine=None))
        kernel = system.kernel
        provider = compile_module(
            """
            long storage[4];
            __export long stash(long i, long v) { storage[i] = v; return v; }
            """,
            CompileOptions(module_name="provider", key=system.signing_key),
        )
        consumer = compile_module(
            """
            extern long stash(long i, long v);
            __export long relay(long v) { return stash(1, v) + 1; }
            """,
            CompileOptions(module_name="consumer", key=system.signing_key),
        )
        kernel.insmod(provider)
        loaded = kernel.insmod(consumer)
        checks_before = system.guard_stats()["checks"]
        assert kernel.run_function(loaded, "relay", [5]) == 6
        assert system.guard_stats()["checks"] > checks_before

    def test_rmmod_order_enforced(self):
        system = CaratKopSystem(SystemConfig(machine=None))
        kernel = system.kernel
        provider = compile_module(
            "__export long give(void) { return 9; }",
            CompileOptions(module_name="prov", key=system.signing_key),
        )
        consumer = compile_module(
            "extern long give(void); __export long take(void) { return give(); }",
            CompileOptions(module_name="cons", key=system.signing_key),
        )
        kernel.insmod(provider)
        kernel.insmod(consumer)
        with pytest.raises(LoadError, match="in use"):
            kernel.rmmod("prov")
        kernel.rmmod("cons")
        kernel.rmmod("prov")


class TestUnloadHazard:
    def test_panic_rather_than_unload_rationale(self):
        """§3.1's deadlock story: a module that takes a lock and is then
        ejected leaves the lock held forever.  We model the lock as kernel
        state and show why 'just unload it' is unsafe — the panic path is
        the one CARAT KOP takes."""
        system = CaratKopSystem(SystemConfig(machine=None))
        kernel = system.kernel
        locker = compile_module(
            """
            extern void *kmalloc(long size, int flags);
            long lock_word;
            __export long grab_lock_then_fault(long bad_addr) {
                lock_word = 1;                 /* take the 'global lock' */
                long v = *(long *)bad_addr;    /* guard fires here      */
                lock_word = 0;                 /* never reached         */
                return v;
            }
            __export long lock_state(void) { return lock_word; }
            """,
            CompileOptions(module_name="locker", key=system.signing_key),
        )
        loaded = kernel.insmod(locker)
        with pytest.raises(KernelPanic):
            kernel.run_function(loaded, "grab_lock_then_fault", [0x1000])
        # The lock is still held: unloading now would deadlock the system.
        assert kernel.run_function(loaded, "lock_state", []) == 1
        # CARAT KOP's answer: the machine is already halted.
        assert kernel.panicked is not None


class TestExamplesRun:
    """The shipped examples must stay runnable (they are documentation)."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "buggy_driver_firewall.py",
            "policy_structures.py",
            "file_ipc_protection.py",
            "privileged_intrinsics.py",
            "policy_mining.py",
            "heartbeat_module.py",
        ],
    )
    def test_example_executes(self, script):
        import pathlib
        import subprocess
        import sys

        path = pathlib.Path(__file__).resolve().parents[2] / "examples" / script
        proc = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "should not happen" not in proc.stdout
