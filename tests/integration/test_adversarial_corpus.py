"""Adversarial corpus for the -O3 static verifier.

Each module here is built to defeat static certification: wild
integer-to-pointer casts, DMA-style writes outside every policy
region, and address chains whose offsets can overflow.  The property
under test is soundness — the verifier must *refuse* to certify the
hostile access (no false "proven" verdicts), so the guard stays
dynamic and the deny is still taken at runtime.  A verifier bug that
certified any of these would let the module skip its guard entirely,
which is exactly the escape CARAT KOP exists to prevent.

Also covers the certificate trust chain itself: a tampered or
stale-epoch certificate is rejected under ``--verify-policy strict``
and demoted to full dynamic guarding under ``demote`` (the default).
"""

import dataclasses

import pytest

from repro import abi
from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel, layout
from repro.kernel.module_loader import LoadError
from repro.kernel.panic import MemoryFault
from repro.passes.absint import AREAS
from repro.policy import CaratPolicyModule, PolicyManager, RegionTable
from repro.policy.region import Region

RW = abi.FLAG_READ | abi.FLAG_WRITE

# A policy that allows the module's own globals — generous, but every
# corpus module reaches *outside* it.
def _module_window_table():
    table = RegionTable(default_allow=False)
    lo, hi = AREAS["module"]
    table.add(Region(lo, hi - lo + 1, RW))
    return table


WILD_POINTER = """
long scratch[4];
__export long run(long seed) {
    scratch[0] = seed;
    long *wild = (long *)1094795585;   /* 0x41414141: user space */
    *wild = seed;
    return scratch[0];
}
"""

OUT_OF_POLICY_DMA = """
long ring[8];
__export long run(long seed) {
    ring[0] = seed;
    /* A fixed "device doorbell" the policy never granted. */
    unsigned int *db = (unsigned int *)8589934592;  /* 0x2_0000_0000 */
    *db = (unsigned int)seed;
    return ring[0];
}
"""

OFFSET_OVERFLOW_CHAIN = """
long cells[8];
__export long run(long seed) {
    /* The index is attacker-controlled: the address chain
       base + seed*8 can land anywhere in the 64-bit space. */
    cells[seed] = seed;
    return cells[0];
}
"""

WRAPPING_CHAIN = """
long cells[8];
__export long run(long seed) {
    long base = (long)cells;
    /* Adding an unbounded value can wrap past 2^64 — the abstract
       adder must refuse, leaving the guard dynamic. */
    long *p = (long *)(base + seed * 65536);
    *p = seed;
    return cells[0];
}
"""

CORPUS = {
    "wild_pointer": WILD_POINTER,
    "out_of_policy_dma": OUT_OF_POLICY_DMA,
    "offset_overflow_chain": OFFSET_OVERFLOW_CHAIN,
    "wrapping_chain": WRAPPING_CHAIN,
}

# The hostile seed each module is driven with (in range for the benign
# accesses, out of policy for the hostile one).
HOSTILE_SEED = {
    "wild_pointer": 7,
    "out_of_policy_dma": 7,
    "offset_overflow_chain": (1 << 40) + 3,
    "wrapping_chain": (1 << 44) + 9,
}


def _compile_o3(source, table, name="adv"):
    return compile_module(
        source,
        CompileOptions(module_name=name, protect=True, opt_level=3,
                       verify_table=table),
    )


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_hostile_guard_is_never_certified(name):
    """At least one guard in every corpus module stays dynamic, and the
    runtime deny is taken — statically eliding it would be the escape."""
    kernel = Kernel()
    policy = CaratPolicyModule(kernel, mode="audit").install()
    manager = PolicyManager(kernel)
    lo, hi = AREAS["module"]
    manager.allow(lo, hi - lo + 1)
    manager.set_default(False)

    compiled = _compile_o3(CORPUS[name], policy.index, name)
    assert compiled.certificate is not None
    assert compiled.guards_dynamic > 0, (
        f"{name}: verifier certified every guard — the hostile access "
        f"was falsely proven"
    )

    loaded = kernel.insmod(compiled)
    assert loaded.verify_state == "verified"
    try:
        kernel.run_function(loaded, "run", [HOSTILE_SEED[name]])
    except MemoryFault:
        # Audit mode records the deny, then lets the wild store hit the
        # simulated MMU, which may fault on an unmapped page.  The
        # guard has already fired by then, which is what we assert.
        pass
    assert policy.stats.denied > 0, f"{name}: the deny was hidden"


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_deny_visibility_matches_faithful_build(name):
    """The -O3 build takes a deny on the same run the -O0 build does."""
    for opt_level in (0, 3):
        kernel = Kernel()
        policy = CaratPolicyModule(kernel, mode="audit").install()
        manager = PolicyManager(kernel)
        lo, hi = AREAS["module"]
        manager.allow(lo, hi - lo + 1)
        manager.set_default(False)
        compiled = compile_module(
            CORPUS[name],
            CompileOptions(
                module_name=name, protect=True, opt_level=opt_level,
                verify_table=policy.index if opt_level >= 3 else None,
            ),
        )
        loaded = kernel.insmod(compiled)
        try:
            kernel.run_function(loaded, "run", [HOSTILE_SEED[name]])
        except MemoryFault:
            pass  # see test_hostile_guard_is_never_certified
        assert policy.stats.denied > 0, f"-O{opt_level} {name}"


# -- the certificate trust chain --------------------------------------------


def _fresh_kernel(verify_policy):
    kernel = Kernel(verify_policy=verify_policy)
    policy = CaratPolicyModule(kernel, mode="audit").install()
    manager = PolicyManager(kernel)
    lo, hi = AREAS["module"]
    manager.allow(lo, hi - lo + 1)
    manager.set_default(False)
    return kernel, policy


BENIGN = """
long cells[4];
__export long run(long seed) {
    cells[0] = seed;
    cells[1] = cells[0] + 1;
    return cells[1];
}
"""


def test_tampered_certificate_rejected_under_strict():
    kernel, policy = _fresh_kernel("strict")
    compiled = _compile_o3(BENIGN, policy.index, "benign")
    assert compiled.guards_proven > 0
    compiled.certificate = dataclasses.replace(
        compiled.certificate, ir_digest="0" * 64,
    )
    with pytest.raises(LoadError):
        kernel.insmod(compiled)
    assert "benign" not in kernel.loader.loaded


def test_tampered_certificate_demoted_by_default():
    kernel, policy = _fresh_kernel("demote")
    compiled = _compile_o3(BENIGN, policy.index, "benign")
    compiled.certificate = dataclasses.replace(
        compiled.certificate, policy_digest="f" * 64,
    )
    loaded = kernel.insmod(compiled)
    assert loaded.verify_state.startswith("demoted")
    assert not loaded.elided_guards
    kernel.run_function(loaded, "run", [5])
    assert policy.stats.checks > 0  # fully dynamic guarding is live


def test_stale_policy_epoch_rejected_or_demoted():
    """A certificate minted before a policy mutation no longer matches
    the table: strict refuses the module, demote loads it dynamic."""
    for verify_policy, expect_load in (("strict", False), ("demote", True)):
        kernel, policy = _fresh_kernel(verify_policy)
        compiled = _compile_o3(BENIGN, policy.index, "benign")
        PolicyManager(kernel).allow(0x3000_0000, 4096)  # epoch bump
        if expect_load:
            loaded = kernel.insmod(compiled)
            assert loaded.verify_state.startswith("demoted")
            assert not loaded.elided_guards
        else:
            with pytest.raises(LoadError):
                kernel.insmod(compiled)


def test_forged_verdicts_caught_by_revalidation():
    """insmod re-runs the verifier: a certificate claiming MORE proven
    guards than the analysis supports is caught bit-for-bit."""
    kernel, policy = _fresh_kernel("strict")
    compiled = _compile_o3(WILD_POINTER, policy.index, "forged")
    cert = compiled.certificate
    # Flip every verdict to "proven".
    forged = tuple(
        (fn, tuple(1 for _ in bits)) for fn, bits in cert.verdicts
    )
    compiled.certificate = dataclasses.replace(cert, verdicts=forged)
    with pytest.raises(LoadError):
        kernel.insmod(compiled)


def test_verify_policy_off_ignores_certificates():
    kernel, policy = _fresh_kernel("off")
    compiled = _compile_o3(BENIGN, policy.index, "benign")
    loaded = kernel.insmod(compiled)
    assert loaded.verify_state == ""
    assert not loaded.elided_guards  # no elision without validation
    kernel.run_function(loaded, "run", [5])
    assert policy.stats.checks > 0
