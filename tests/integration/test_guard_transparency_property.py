"""Property: guard injection is semantically transparent.

The central correctness requirement of the whole system (paper §3.3
implicitly; §4.1 'No code was modified in the driver' only works if the
transform never changes behaviour): for ANY module and ANY input, the
protected build under an allow-everything policy computes exactly what
the baseline build computes — same return values, same global state.

Hypothesis generates random memory-traffic-heavy programs and checks the
pair; the guard-optimizer variant must match too.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pipeline import CompileOptions, compile_module
from repro.kernel import Kernel
from repro.policy import CaratPolicyModule, PolicyManager

_M64 = (1 << 64) - 1


@st.composite
def memory_program(draw):
    """A program doing random arithmetic over a global array."""
    n_slots = draw(st.integers(min_value=2, max_value=8))
    n_steps = draw(st.integers(min_value=1, max_value=10))
    lines = [f"long cells[{n_slots}];"]
    body = []
    for step in range(n_steps):
        kind = draw(st.sampled_from(["store", "combine", "swap", "loop"]))
        a = draw(st.integers(0, n_slots - 1))
        b = draw(st.integers(0, n_slots - 1))
        if kind == "store":
            v = draw(st.integers(-(2**31), 2**31))
            body.append(f"cells[{a}] = seed + {v};")
        elif kind == "combine":
            op = draw(st.sampled_from(["+", "^", "|", "&", "*"]))
            body.append(f"cells[{a}] = cells[{a}] {op} cells[{b}];")
        elif kind == "swap":
            body.append(
                f"{{ long t = cells[{a}]; cells[{a}] = cells[{b}]; "
                f"cells[{b}] = t; }}"
            )
        else:
            body.append(
                f"for (int i = 0; i < {draw(st.integers(1, 6))}; i++) "
                f"{{ cells[{a}] += cells[{b}] + i; }}"
            )
    body.append("long acc = 0;")
    body.append(f"for (int i = 0; i < {n_slots}; i++) {{ acc += cells[i] * (i + 1); }}")
    body.append("return acc;")
    lines.append("__export long run(long seed) {")
    lines.extend("    " + l for l in body)
    lines.append("}")
    return "\n".join(lines)


def _execute(source: str, protect: bool, optimize_guards: bool, seeds):
    kernel = Kernel()
    if protect:
        policy = CaratPolicyModule(kernel).install()
        PolicyManager(kernel).set_default(True)  # allow-everything
    compiled = compile_module(
        source,
        CompileOptions(
            module_name="prog", protect=protect,
            optimize_guards=optimize_guards,
        ),
    )
    loaded = kernel.insmod(compiled)
    return [kernel.run_function(loaded, "run", [s & _M64]) for s in seeds]


@settings(max_examples=40, deadline=None)
@given(
    memory_program(),
    st.lists(st.integers(0, _M64), min_size=1, max_size=3),
)
def test_guarded_equals_baseline(source, seeds):
    baseline = _execute(source, protect=False, optimize_guards=False, seeds=seeds)
    guarded = _execute(source, protect=True, optimize_guards=False, seeds=seeds)
    assert guarded == baseline


@settings(max_examples=25, deadline=None)
@given(
    memory_program(),
    st.lists(st.integers(0, _M64), min_size=1, max_size=2),
)
def test_guard_optimizer_preserves_semantics(source, seeds):
    plain = _execute(source, protect=True, optimize_guards=False, seeds=seeds)
    optimized = _execute(source, protect=True, optimize_guards=True, seeds=seeds)
    assert optimized == plain


@settings(max_examples=30, deadline=None)
@given(memory_program(), st.integers(0, _M64))
def test_denied_programs_fail_as_clean_panics(source, seed):
    """Under default-deny, any generated program either runs (it touched
    nothing) or dies with the paper's diagnosis — never an internal
    error.  The panic must identify the module by name."""
    from repro.kernel import KernelPanic

    kernel = Kernel()
    CaratPolicyModule(kernel).install()  # empty policy, default deny
    compiled = compile_module(
        source, CompileOptions(module_name="prog")
    )
    loaded = kernel.insmod(compiled)
    try:
        kernel.run_function(loaded, "run", [seed])
    except KernelPanic as e:
        assert "CARAT KOP: forbidden" in str(e)
        assert "module prog" in str(e)
        assert kernel.panicked is not None
