#!/usr/bin/env python3
"""Quickstart: the paper's whole story in one script.

1. Boot a simulated kernel on the fast (R350) testbed.
2. Install the CARAT KOP policy module and the two-region policy
   (kernel half allowed, user half denied — paper §4.2 footnote 5).
3. Compile the e1000e-style driver *with* the guard transform, sign it,
   and insmod it (signature validated at insertion, §3.2).
4. Send raw Ethernet packets through it and measure the overhead.
5. Show what happens when a module steps out of bounds: kernel panic.
"""

from repro import CaratKopSystem, KernelPanic, SystemConfig, compile_module
from repro.core.pipeline import CompileOptions


def main() -> None:
    print("== booting protected system (R350, two-region policy) ==")
    system = CaratKopSystem(SystemConfig(machine="r350", protect=True))
    print(f"  machine: {system.machine.name}")
    print(f"  driver:  {system.driver_compiled.guard_count} guards injected "
          f"into {system.driver_compiled.stats.functions} functions")
    print(f"  policy:\n{_indent(system.policy_manager.describe())}")

    print("\n== sending 2,000 raw 128B Ethernet frames ==")
    result = system.blast(size=128, count=2000)
    print(f"  throughput: {result.throughput_pps:,.0f} packets/sec")
    print(f"  delivered:  {system.sink.packets} frames "
          f"({system.sink.octets} octets) to the sink")
    stats = system.guard_stats()
    print(f"  guards:     {stats['checks']:,} checks, "
          f"{stats['denied']} denied")

    print("\n== same workload, unguarded baseline ==")
    baseline = CaratKopSystem(SystemConfig(machine="r350", protect=False))
    base_result = baseline.blast(size=128, count=2000)
    overhead = base_result.throughput_pps / result.throughput_pps - 1
    print(f"  baseline:   {base_result.throughput_pps:,.0f} packets/sec")
    print(f"  overhead:   {overhead * 100:.3f}%  "
          "(paper: <0.1% on this machine)")

    print("\n== a module that reads user-half memory ==")
    rogue = compile_module(
        """
        __export long snoop(long addr) {
            long *p = (long *)addr;
            return *p;   /* guarded: the policy decides */
        }
        """,
        CompileOptions(module_name="rogue", key=system.signing_key),
    )
    loaded = system.kernel.insmod(rogue)
    try:
        system.kernel.run_function(loaded, "snoop", [0x7FFF_0000])
        print("  !! access allowed — should not happen")
    except KernelPanic as e:
        print(f"  kernel panic (as designed): {e}")
    print("\n  dmesg tail:")
    for line in system.kernel.dmesg_log[-3:]:
        print(f"    {line}")


def _indent(text: str, by: str = "    ") -> str:
    return "\n".join(by + line for line in text.splitlines())


if __name__ == "__main__":
    main()
