#!/usr/bin/env python3
"""File-system and IPC protection via memory guarding (paper §5).

    "CARAT KOP's memory guarding mechanism could be extended to restrict
     kernel module access to files by safeguarding memory regions
     associated with file system metadata or inodes ... Similarly, for
     inter-process communication (IPC), the system could enforce policies
     by guarding memory regions linked to IPC mechanisms, such as message
     queues or shared memory segments."

This example builds exactly that: the simulated kernel carves an inode
table and a message-queue arena in its heap, the operator firewalls them
(inodes read-only, msgqueues fully denied), and a module that tries to
flip an inode's mode bits or snoop a message queue is stopped at the
offending instruction.
"""

import struct

from repro import CaratKopSystem, KernelPanic, SystemConfig, compile_module
from repro.core.pipeline import CompileOptions

MODULE = r"""
extern int printk(char *fmt, ...);

/* A module that inspects — and then tampers with — kernel objects whose
   addresses it obtained (e.g. by scanning exported symbols). */

__export long read_inode_mode(long inode_addr) {
    int *mode = (int *)(inode_addr + 8);
    return (long)*mode;                  /* read: policy says OK */
}

__export int chmod_inode(long inode_addr, int mode) {
    int *p = (int *)(inode_addr + 8);
    *p = mode;                           /* write: policy says NO */
    return 0;
}

__export long snoop_msgqueue(long queue_addr) {
    long *p = (long *)queue_addr;
    return *p;                           /* read: policy says NO */
}
"""


def main() -> None:
    print(__doc__)
    system = CaratKopSystem(SystemConfig(machine=None, protect=True))
    kernel = system.kernel

    # Core-kernel objects: an inode table and a msgqueue arena.
    inode_table = kernel.kmalloc_allocator.kmalloc(4096)
    for i in range(16):
        # (ino, mode, uid) per slot — mode 0o644 at offset 8.
        kernel.address_space.write_bytes(
            inode_table + i * 64, struct.pack("<QII", 1000 + i, 0o644, 0)
        )
    msgqueue = kernel.kmalloc_allocator.kmalloc(4096)
    kernel.address_space.write_bytes(msgqueue, b"SECRET-IPC-PAYLOAD".ljust(64))

    # Operator policy: keep the two-region base policy, then carve holes:
    # the inode table becomes read-only, the msgqueue fully off-limits.
    # First-match-wins ordering puts the carve-outs in front.
    mgr = system.policy_manager
    mgr.clear()
    mgr.add_region(inode_table, 4096, prot=0x1)  # read-only
    mgr.deny(msgqueue, 4096)
    mgr.allow(0xFFFF_8000_0000_0000, (1 << 64) - 0xFFFF_8000_0000_0000)
    mgr.set_default(False)
    print("policy:")
    print("  " + mgr.describe().replace("\n", "\n  "))

    module = compile_module(
        MODULE, CompileOptions(module_name="fs_spy", key=system.signing_key)
    )
    loaded = kernel.insmod(module)

    mode = kernel.run_function(loaded, "read_inode_mode", [inode_table])
    print(f"\nread_inode_mode -> {oct(mode)} (allowed: inodes are readable)")

    for fn, arg, what in (
        ("chmod_inode", [inode_table, 0o777], "inode mode write"),
        ("snoop_msgqueue", [msgqueue], "message-queue read"),
    ):
        try:
            kernel.run_function(loaded, fn, arg)
            print(f"!! {what} went through — should not happen")
        except KernelPanic as e:
            # A real machine would halt here; the simulation lets us keep
            # demonstrating against the same kernel instance.
            print(f"{what}: BLOCKED — {e}")

    # Show the inode survived untouched.
    ino, mode, uid = struct.unpack(
        "<QII", kernel.address_space.read_bytes(inode_table, 16)
    )
    print(f"\ninode[0] after the attacks: ino={ino} mode={oct(mode)} uid={uid}")


if __name__ == "__main__":
    main()
