#!/usr/bin/env python3
"""Policy-structure shoot-out (paper §3.1 / §4.2 speculation).

The paper's policy module uses a 64-entry linear table and speculates
about upgrades: sorted binary search, splay trees, AMQ (Bloom) filters,
LSH buckets, and a CARAT CAKE-style cache.  All of them live in
``repro.policy.structures`` behind the same interface; this example runs
the same guard-check workload through each and reports the number of
entry comparisons — the quantity the machine model charges per scan.

Also demonstrated: the documented trade-off that the fancy structures
cannot hold overlapped regions, while the paper's table can.
"""

import random

from repro import abi
from repro.policy import (
    CachedIndex,
    OverlapError,
    Region,
    RegionTable,
    STRUCTURES,
    make_index,
)


def build_policy(index, n_regions: int, rng: random.Random):
    """n disjoint 4 KiB allowed regions spread over the kernel heap."""
    base = 0xFFFF_8880_0000_0000
    regions = []
    for i in range(n_regions):
        r = Region(base + i * 0x10_000, 0x1000, abi.FLAG_READ | abi.FLAG_WRITE)
        index.add(r)
        regions.append(r)
    return regions


def workload(regions, rng: random.Random, hits: int = 2000, misses: int = 200):
    """Mostly compliant accesses (the paper's expectation) + a few strays."""
    ops = []
    # Popularity-skewed: 80% of hits land in the first two regions.
    for _ in range(hits):
        r = regions[0] if rng.random() < 0.6 else (
            regions[1] if rng.random() < 0.5 else rng.choice(regions)
        )
        ops.append((r.base + rng.randrange(r.length - 8), 8, abi.FLAG_READ))
    for _ in range(misses):
        ops.append((rng.randrange(1 << 40), 8, abi.FLAG_READ))
    rng.shuffle(ops)
    return ops


def main() -> None:
    rng = random.Random(7)
    print(f"{'structure':<22}{'regions':>8}{'avg scan':>10}{'decisions':>11}")
    for n in (4, 16, 64):
        baseline_decisions = None
        for kind in STRUCTURES:
            for cached in (False, True):
                index = make_index(kind, cached=cached)
                regions = build_policy(index, n, random.Random(1))
                ops = workload(regions, random.Random(2))
                scans = 0
                decisions = []
                for addr, size, flags in ops:
                    allowed, scanned = index.check(addr, size, flags)
                    scans += scanned
                    decisions.append(allowed)
                if baseline_decisions is None:
                    baseline_decisions = decisions
                agree = "ok" if decisions == baseline_decisions else "DISAGREE"
                name = index.name
                print(f"{name:<22}{n:>8}{scans / len(ops):>10.2f}{agree:>11}")
        print()

    print("overlap support (first-match-wins priority):")
    table = RegionTable()
    table.add(Region(0x1000, 0x100, 0))                       # deny hole...
    table.add(Region(0x0, 0x10000, abi.FLAG_READ))            # ...inside allow
    allowed, _ = table.check(0x1010, 8, abi.FLAG_READ)
    print(f"  linear table: read inside the deny hole -> "
          f"{'allowed' if allowed else 'denied'} (hole wins)")
    sorted_index = make_index("sorted")
    sorted_index.add(Region(0x0, 0x10000, abi.FLAG_READ))
    try:
        sorted_index.add(Region(0x1000, 0x100, 0))
    except OverlapError as e:
        print(f"  sorted index:  {e}")


if __name__ == "__main__":
    main()
