#!/usr/bin/env python3
"""Privileged-intrinsic guarding (paper §5, implemented).

    "CARAT KOP does not attempt to prevent access to privileged
     instructions beyond its compiler attestation to the lack of inline
     assembly ... Instrumentation and wrappers to these builtins could be
     added during compilation, such that a guard is injected and a
     different policy table could be consulted."

Compiled with ``guard_intrinsics=True``, every call to a privileged
builtin (wrmsr, cli, hlt, ...) is preceded by a ``carat_intrinsic_guard``
call; the policy module keeps a separate allow-set, configured over the
same /dev/carat ioctl interface.

Also shown: the *attestation* path — a module containing inline assembly
cannot be signed as protected, and a strict kernel refuses it.
"""

from repro import CaratKopSystem, KernelPanic, LoadError, SystemConfig, compile_module
from repro.core.pipeline import CompileOptions

MSR_MODULE = r"""
extern void wrmsr(int msr, long value);
extern long rdmsr(int msr);
extern void cli(void);
extern void sti(void);
extern int printk(char *fmt, ...);

__export int tune_prefetcher(void) {
    /* A legitimate HPC use: toggle a prefetcher MSR. */
    long old = rdmsr(0x1A4);
    wrmsr(0x1A4, old | 0xF);
    return (int)old;
}

__export int mask_interrupts(void) {
    cli();           /* policy decides whether this module may do this */
    sti();
    return 0;
}
"""

ASM_MODULE = r"""
__export int backdoor(void) {
    __asm__("mov $0, %cr0");   /* inline assembly: unattestable */
    return 0;
}
"""


def main() -> None:
    print(__doc__)
    system = CaratKopSystem(SystemConfig(machine=None, protect=True))
    module = compile_module(
        MSR_MODULE,
        CompileOptions(
            module_name="msr_tuner",
            key=system.signing_key,
            guard_intrinsics=True,
        ),
    )
    loaded = system.kernel.insmod(module)
    mgr = system.policy_manager

    # The operator grants this module the MSR intrinsics but not cli/sti.
    mgr.allow_intrinsic("rdmsr")
    mgr.allow_intrinsic("wrmsr")

    old = system.kernel.run_function(loaded, "tune_prefetcher", [])
    print(f"tune_prefetcher: ok (old MSR value {old}), "
          f"MSR now {system.kernel.msr.get(0x1A4):#x}")

    try:
        system.kernel.run_function(loaded, "mask_interrupts", [])
        print("!! cli allowed — should not happen")
    except KernelPanic as e:
        print(f"mask_interrupts: BLOCKED — {e}")

    print("\n== the inline-assembly module ==")
    strict = CaratKopSystem(
        SystemConfig(machine=None, protect=True, strict_kernel=True)
    )
    asm_mod = compile_module(
        ASM_MODULE,
        CompileOptions(module_name="backdoor_mod", key=strict.signing_key),
    )
    sig = asm_mod.signature
    print(f"signature attests has_inline_asm={sig.has_inline_asm}")
    try:
        strict.kernel.insmod(asm_mod)
        print("!! inserted — should not happen")
    except LoadError as e:
        print(f"insmod refused: {e}")


if __name__ == "__main__":
    main()
