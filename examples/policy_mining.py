#!/usr/bin/env python3
"""Policy mining: deriving a practical policy from an audit run.

The paper's open question (§1): "the creation of memory region policies
that are both practical and secure."  Hand-writing a 64-region firewall
for a driver you didn't write is hard — you'd need to know where its
rings, buffers, and MMIO windows live.

The miner automates it:

1. run the protected module in **audit mode** (guards log, don't panic)
   under a representative workload;
2. coalesce every address the guards observed into <= N regions;
3. flip to default-deny enforcement with the mined regions.

The result: the observed workload replays with zero violations, while a
rogue access anywhere else still panics the machine.
"""

from repro import CaratKopSystem, KernelPanic, SystemConfig, compile_module
from repro.core.pipeline import CompileOptions
from repro.kernel import layout
from repro.policy import PolicyMiner


def main() -> None:
    print(__doc__)
    system = CaratKopSystem(SystemConfig(machine=None, protect=True))

    print("== step 1: audit run (enforce off, guards recording) ==")
    miner = PolicyMiner(system.policy, max_regions=12)
    with miner:
        system.blast(size=128, count=200)
        system.netdev.inject_rx(system.sink.last())
        system.netdev.poll_rx()
    print(f"  observed {len(miner.records)} guarded accesses")

    print("\n== step 2: coalesce into a region budget ==")
    mined = miner.mine(page_align=True)
    print("  " + mined.describe().replace("\n", "\n  "))

    print("\n== step 3: enforce the mined policy ==")
    mined.install(system.policy_manager)
    result = system.blast(size=128, count=200)
    stats = system.guard_stats()
    print(f"  replay: {result.errors} errors, {stats['denied']} denials "
          f"({stats['checks']:,} checks)")

    print("\n== step 4: everything else is firewalled ==")
    rogue = compile_module(
        "__export long peek(long a) { return *(long *)a; }",
        CompileOptions(module_name="rogue", key=system.signing_key),
    )
    loaded = system.kernel.insmod(rogue)
    probe = layout.direct_map_address(48 << 20)  # RAM the driver never used
    try:
        system.kernel.run_function(loaded, "peek", [probe])
        print("  !! probe allowed — should not happen")
    except KernelPanic as e:
        print(f"  probe blocked: {e}")


if __name__ == "__main__":
    main()
