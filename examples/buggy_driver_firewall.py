#!/usr/bin/env python3
"""The HPC-operator scenario from the paper's introduction.

A vendor ships a custom kernel module (think: fast floating-point trap
delivery, heartbeat timers — the paper's own FPVM/heartbeat examples).
It has a bug: a stray pointer write that lands in core-kernel memory.

Without CARAT KOP the write silently corrupts kernel state — here, the
kernel's in-memory inode table — and the damage surfaces much later,
far from the cause.  With CARAT KOP, the very first out-of-policy access
is caught by a guard and the machine halts immediately with an exact
diagnosis (paper §3.1: log + panic is the right call in production HPC).
"""

import struct

from repro import (
    CaratKopSystem,
    KernelPanic,
    SystemConfig,
    compile_module,
)
from repro.core.pipeline import CompileOptions

# A vendor module with a classic off-by-one heap overrun: it allocates a
# table of N entries but initializes N+4 of them.
VENDOR_MODULE = r"""
extern void *kmalloc(long size, int flags);
extern void kfree(void *p);
extern int printk(char *fmt, ...);

long *table;

__export int vendor_init(int entries) {
    table = (long *)kmalloc((long)entries * 8, 0);
    /* BUG: writes past the end of the allocation. */
    for (int i = 0; i < entries + 8; i++) {
        table[i] = 0x4141414141414141;
    }
    printk("vendor module: table ready");
    return 0;
}
"""


def simulate_core_kernel_state(system):
    """Plant a recognizable core-kernel structure right after where the
    module's heap allocation will land (kmalloc size classes make the
    adjacency deterministic in this scenario)."""
    kernel = system.kernel
    # The vendor module will kmalloc 8*28=224 bytes -> 256B size class.
    # Allocate the neighbouring 256B chunk first and fill it with the
    # "inode table" marker the overrun will smash.
    victim = kernel.kmalloc_allocator.kmalloc(256)
    kernel.address_space.write_bytes(victim, b"INODE!!!" * 32)
    return victim


def run(protect: bool) -> None:
    label = "CARAT KOP" if protect else "baseline"
    print(f"\n== inserting the buggy vendor module ({label}) ==")
    system = CaratKopSystem(SystemConfig(machine=None, protect=True))
    victim = simulate_core_kernel_state(system)

    if protect:
        # The operator's policy: the module may touch only its own 256B
        # allocation-to-be and its own globals.  Everything else: denied.
        system.policy_manager.clear()
        system.policy_manager.set_default(False)
    else:
        # No enforcement: audit-only (what running without CARAT KOP
        # means — the module is still *guarded* but nothing is denied).
        system.policy_manager.clear()
        system.policy_manager.set_default(True)

    vendor = compile_module(
        VENDOR_MODULE,
        CompileOptions(module_name="vendor_mod", key=system.signing_key),
    )
    loaded = system.kernel.insmod(vendor)
    if protect:
        # Allow the module's own globals...
        system.policy_manager.allow_module_region(loaded)
        # ...and exactly the allocation it is entitled to (the operator
        # pre-carves a heap budget region for the module).
        predicted = system.kernel.kmalloc_allocator.kmalloc(256)
        system.kernel.kmalloc_allocator.kfree(predicted)
        system.policy_manager.allow(predicted, 224)

    try:
        system.kernel.run_function(loaded, "vendor_init", [28])
        data = system.kernel.address_space.read_bytes(victim, 16)
        if b"INODE" not in data:
            print(f"  SILENT CORRUPTION: core-kernel inode table now reads "
                  f"{data!r}")
            print("  ...and the kernel keeps running on corrupted state.")
        else:
            print("  core-kernel state intact")
    except KernelPanic as e:
        print(f"  caught at the *first* stray write: {e}")
        data = system.kernel.address_space.read_bytes(victim, 16)
        print(f"  core-kernel inode table intact: {data[:8]!r}")


def main() -> None:
    print(__doc__)
    run(protect=False)
    run(protect=True)


if __name__ == "__main__":
    main()
