#!/usr/bin/env python3
"""The paper's other motivating module: heartbeat timer delivery.

§1: "We have ourselves developed Linux kernel modules for fast
high-performance floating point trap delivery as part of FPVM, and fast
timer delivery for heartbeat scheduling."  This example is that second
module class: a heartbeat scheduler that arms kernel timers and records
beat timestamps into a ring — exactly the kind of small, specialized,
*privileged* module an HPC operator is asked to insmod.

Shown here: the module running protected, with a policy mined from an
audit run; then the same module with an injected bug (a stale pointer
after a ring resize) being caught at its first stray write — during a
timer interrupt, far from any syscall.
"""

from repro import CaratKopSystem, KernelPanic, SystemConfig, compile_module
from repro.core.pipeline import CompileOptions
from repro.policy import PolicyMiner

HEARTBEAT = r"""
extern void *kmalloc(long size, int flags);
extern void kfree(void *p);
extern long mod_timer(char *handler, long delay_us, long arg);
extern long del_timer(long timer_id);
extern long time_us(void);
extern int printk(char *fmt, ...);

enum { RING_SLOTS = 16 };

long *ring;
long beats;
long period_us;
long timer_id;
int  buggy_mode;

__export void hb_tick(long arg) {
    long *target = ring;
    if (buggy_mode && beats >= 8) {
        /* BUG: after 8 beats, a stale pointer from before a 'resize'. */
        target = ring + RING_SLOTS * 4;
    }
    target[beats % RING_SLOTS] = time_us();
    beats += 1;
    timer_id = mod_timer("hb_tick", period_us, arg);
}

__export int hb_start(long period, int buggy) {
    ring = (long *)kmalloc(RING_SLOTS * 8, 0);
    beats = 0;
    period_us = period;
    buggy_mode = buggy;
    timer_id = mod_timer("hb_tick", period, 0);
    printk("heartbeat: started, period %d us", (int)period);
    return 0;
}

__export int hb_stop(void) { del_timer(timer_id); return 0; }
__export long hb_beats(void) { return beats; }
__export void hb_set_buggy(int flag) { buggy_mode = flag; }
"""


def boot(buggy: bool):
    system = CaratKopSystem(SystemConfig(machine=None, protect=True))
    compiled = compile_module(
        HEARTBEAT,
        CompileOptions(module_name="heartbeat", key=system.signing_key),
    )
    loaded = system.kernel.insmod(compiled)
    return system, loaded


def main() -> None:
    print(__doc__)

    print("== healthy heartbeat under a mined policy ==")
    system, loaded = boot(buggy=False)
    miner = PolicyMiner(system.policy, max_regions=8)
    with miner:
        # One full ring cycle in the audit so every slot is observed.
        system.kernel.run_function(loaded, "hb_start", [250, 0])
        for _ in range(17):
            system.kernel.advance_time(250)
    mined = miner.mine(page_align=False)
    mined.install(system.policy_manager)
    print("  " + mined.describe().replace("\n", "\n  "))
    for _ in range(16):
        system.kernel.advance_time(250)
    beats = system.kernel.run_function(loaded, "hb_beats", [])
    print(f"  {beats} beats, {system.guard_stats()['denied']} denials — "
          "steady under enforcement")

    print("\n== the buggy build: stale pointer after a 'resize' ==")
    # Same mined policy, same module — now flip the latent bug on.
    system.kernel.run_function(loaded, "hb_set_buggy", [1])
    try:
        for i in range(20):
            system.kernel.advance_time(250)
        print("  !! bug never caught — should not happen")
    except KernelPanic as e:
        final = system.kernel.run_function(loaded, "hb_beats", [])
        print(f"  caught inside the timer handler at beat {final}: {e}")


if __name__ == "__main__":
    main()
