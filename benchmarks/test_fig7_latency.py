"""Figure 7: packet launch latency histograms (R350, 128 B, 2 regions).

Paper: "the time spent in the sendmsg() call from the user-space test
application's point of view ... these are closely matched ... the median
times are 694 cycles (CARAT KOP) and 686 cycles (baseline)", outliers in
excess of 10M cycles excluded from the plot but not the medians.
"""

import numpy as np

from repro.bench import run_fig7
from repro.bench.harness import WorkloadConfig, build_system


def test_fig7_reproduction(save_figure):
    result = run_fig7(packets=20_000)
    med_b = float(np.median(result.series["Base"]))
    med_c = float(np.median(result.series["Carat"]))
    rows = (
        f"paper:    medians 686 (base) vs 694 (carat) cycles — within noise\n"
        f"measured: medians {med_b:,.0f} (base) vs {med_c:,.0f} (carat) "
        f"cycles, delta {abs(med_c - med_b) / med_b * 100:.2f}%"
    )
    save_figure(result, rows)
    assert 400 < med_b < 1100
    assert 0 <= (med_c - med_b) / med_b < 0.03

    # The histograms overlap heavily: the carat p25 sits below base p75.
    assert np.percentile(result.series["Carat"], 25) < np.percentile(
        result.series["Base"], 75
    )


def test_fig7_outliers_exist_when_ring_fills():
    """The >10M-cycle outliers the paper excludes from the plot: force a
    ring-full deschedule by disabling the NIC drain momentarily."""
    from repro.e1000e import regs

    cfg = WorkloadConfig(machine="r350", protect=False)
    system = build_system(cfg)
    system.blast(size=128, count=8)
    # Freeze the wire: the ring fills, sendmsg hits EBUSY + deschedule.
    system.device._wire_free_at = system.kernel.vm.timing.cycles + 1e10
    from repro.net import make_test_frame

    stalled = None
    for seq in range(300):
        r = system.socket.sendmsg(make_test_frame(128, seq))
        if r.stalled:
            stalled = r
            break
    assert stalled is not None, "ring never filled"
    assert stalled.latency_cycles > 10_000_000  # the paper's outlier class


def test_fig7_sendmsg_latency_benchmark(benchmark):
    """Wall-time of the measured sendmsg window (interpreter included)."""
    cfg = WorkloadConfig(machine="r350", protect=True)
    system = build_system(cfg)
    system.blast(size=128, count=32)
    from repro.net import make_test_frame

    frame = make_test_frame(128, 0)
    result = benchmark(system.socket.sendmsg, frame)
    assert result.rc == 0
