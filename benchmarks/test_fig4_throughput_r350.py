"""Figure 4: throughput CDF on the faster R350.

Paper: "Here, the impact is even smaller.  The relative change in the
median is <0.1%" — and the explanation: improved caching, branch
prediction, and speculation make the guard path nearly free.
"""

import numpy as np

from repro.bench import run_fig3, run_fig4
from repro.bench.harness import WorkloadConfig, calibrate
from repro.bench.stats import relative_median_change


def test_fig4_reproduction(save_figure):
    result = run_fig4(trials=41)
    delta = relative_median_change(
        result.series["baseline"], result.series["carat"]
    )
    rows = (
        f"paper:    median delta < 0.1% (almost unmeasurable)\n"
        f"measured: delta {delta * 100:.3f}%"
    )
    save_figure(result, rows)
    assert 0 <= delta < 0.001


def test_fig4_newer_machine_hides_guards_better():
    """The fig3-vs-fig4 cross-machine claim: the R350's relative guard
    overhead is an order of magnitude below the R415's."""
    overhead = {}
    for machine in ("r415", "r350"):
        costs = {}
        for protect in (False, True):
            cfg = WorkloadConfig(machine=machine, protect=protect,
                                 calibration_packets=80, warmup_packets=16)
            costs[protect] = calibrate(cfg).cycles_per_packet
        overhead[machine] = (costs[True] - costs[False]) / costs[False]
    assert overhead["r350"] < overhead["r415"] / 5


def test_fig4_trial_generation_benchmark(benchmark):
    """Wall-time of generating one full 41-trial CDF from a calibration."""
    cfg = WorkloadConfig(machine="r350", protect=True, trials=41)
    cal = calibrate(cfg)
    from repro.bench.harness import throughput_samples

    samples = benchmark(lambda: throughput_samples(cfg, cal))
    assert len(samples) == 41
