"""The production guard tier: -O levels x policy index on the fig3 workload.

The headline artifact for the optimizing tier.  Runs the Figure 3 hot
configuration (R415, protected e1000e, 128-byte frames) at a 64-region
policy — the paper's maximum table — across the full optimization grid:

    opt level   {-O0 faithful, -O1 eliminate+hoist, -O2 +range coalescing}
    policy index{linear scan (the paper), overlap-aware interval index}

and asserts the two acceptance properties:

1. simulated fig3 throughput strictly improves -O0 -> -O1 -> -O2 under
   both indexes, and the interval index is >= the linear scan at every
   level (sub-linear lookups can only help at 64 regions);
2. the optimization is *behaviourally invisible*: functional simulated
   state (packets, errors, stalls, delivered frames) and the deny set
   are bit-identical to the -O0/linear baseline in every grid cell,
   under both engines and 1/2/4 simulated CPUs.

Writes ``benchmarks/results/BENCH_guard_opt.json``.
"""

from __future__ import annotations

import json

from repro.core.system import CaratKopSystem, SystemConfig

MACHINE = "r415"          # the fig3 machine
FRAME_BYTES = 128         # the fig3 frame size
REGIONS = 64              # the paper's maximum policy table
PACKETS = 400             # timing cells (deterministic simulated clock)
IDENTITY_PACKETS = 120    # functional-identity cells (36 of them)

OPT_LEVELS = (0, 1, 2)
INDEXES = ("linear", "interval")
ENGINES = ("interp", "compiled")
CPUS = (1, 2, 4)


def _cell(opt_level, index, engine="compiled", cpus=1, packets=PACKETS):
    system = CaratKopSystem(
        SystemConfig(
            machine=MACHINE, protect=True, regions=REGIONS,
            opt_level=opt_level, policy_index=index,
            engine=engine, cpus=cpus,
        )
    )
    system.sink.keep_last = 16
    result = system.blast(size=FRAME_BYTES, count=packets)
    stats = system.guard_stats()
    functional = {
        "packets_sent": result.packets_sent,
        "errors": result.errors,
        "stalls": result.stalls,
        "denied": stats["denied"],
        "last_frames": [bytes(f) for f in system.sink.recent],
    }
    timing = {
        "total_cycles": result.total_cycles,
        "throughput_pps": result.throughput_pps,
        "guard_checks": stats["checks"],
        "entries_scanned": stats["entries_scanned"],
        "comparisons": stats["comparisons"],
        "structure_checks": stats["structure_checks"],
    }
    return functional, timing


def test_guard_opt_grid(results_dir):
    # -- timing grid: compiled engine, single CPU, deterministic clock --
    grid = {}
    for index in INDEXES:
        for level in OPT_LEVELS:
            _, timing = _cell(level, index)
            grid[f"O{level}/{index}"] = timing

    for index in INDEXES:
        pps = [grid[f"O{level}/{index}"]["throughput_pps"]
               for level in OPT_LEVELS]
        assert pps[0] < pps[1] < pps[2], (
            f"{index}: fig3 throughput must strictly improve "
            f"-O0 -> -O1 -> -O2, got {pps}"
        )
    for level in OPT_LEVELS:
        lin = grid[f"O{level}/linear"]["throughput_pps"]
        ivl = grid[f"O{level}/interval"]["throughput_pps"]
        assert ivl >= lin, (
            f"-O{level}: interval index slower than linear at "
            f"{REGIONS} regions ({ivl} < {lin})"
        )

    # The operator observable: mean comparisons per structure walk drop
    # from ~REGIONS (every miss scans the table) to ~log2(REGIONS).
    o2 = {idx: grid[f"O2/{idx}"] for idx in INDEXES}
    mean_cmp = {
        idx: t["comparisons"] / max(t["structure_checks"], 1)
        for idx, t in o2.items()
    }
    assert mean_cmp["interval"] < mean_cmp["linear"] / 3

    # -- functional identity: the full engine x cpus grid -----------------
    baseline_fn, _ = _cell(0, "linear", "interp", 1, IDENTITY_PACKETS)
    identity_cells = 0
    for engine in ENGINES:
        for cpus in CPUS:
            for index in INDEXES:
                for level in OPT_LEVELS:
                    functional, _ = _cell(
                        level, index, engine, cpus, IDENTITY_PACKETS
                    )
                    assert functional == baseline_fn, (
                        f"-O{level}/{index}/{engine}/cpu{cpus}: simulated "
                        f"state diverged from the -O0/linear baseline"
                    )
                    identity_cells += 1
    assert baseline_fn["denied"] == 0

    report = {
        "workload": {
            "figure": "fig3",
            "machine": MACHINE,
            "frame_bytes": FRAME_BYTES,
            "regions": REGIONS,
            "packets": PACKETS,
        },
        "grid": grid,
        "mean_comparisons_per_check_at_O2": mean_cmp,
        "identity": {
            "cells": identity_cells,
            "engines": list(ENGINES),
            "cpus": list(CPUS),
            "packets": IDENTITY_PACKETS,
            "identical_to_O0_linear_baseline": True,
            "denied_everywhere": 0,
        },
    }
    (results_dir / "BENCH_guard_opt.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )


def test_fig3_diff_O0_vs_O2(results_dir):
    """The -O0 vs -O2 production diff the CI job publishes: the faithful
    paper build next to the production tier on the same workload."""
    _, faithful = _cell(0, "linear")
    _, production = _cell(2, "interval")
    gain = (
        production["throughput_pps"] / faithful["throughput_pps"] - 1.0
    ) * 100
    lines = [
        f"fig3 guard-tier diff ({MACHINE}, {REGIONS} regions, "
        f"{PACKETS} packets)",
        f"{'':<22}{'-O0/linear':>16}{'-O2/interval':>16}",
        f"{'throughput (pps)':<22}{faithful['throughput_pps']:>16,.0f}"
        f"{production['throughput_pps']:>16,.0f}",
        f"{'total cycles':<22}{faithful['total_cycles']:>16,.0f}"
        f"{production['total_cycles']:>16,.0f}",
        f"{'guard checks':<22}{faithful['guard_checks']:>16,}"
        f"{production['guard_checks']:>16,}",
        f"{'comparisons':<22}{faithful['comparisons']:>16,}"
        f"{production['comparisons']:>16,}",
        "",
        f"production tier gain: {gain:+.2f}% simulated throughput",
    ]
    (results_dir / "fig3_guard_opt_diff.txt").write_text(
        "\n".join(lines) + "\n"
    )
    assert production["throughput_pps"] > faithful["throughput_pps"]
    assert production["guard_checks"] < faithful["guard_checks"]
