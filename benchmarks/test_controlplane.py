"""Control-plane headline benchmark: the policyd chaos grid.

Runs ``caratkop-policyd`` at acceptance scale — 4 well-behaved tenants
plus the hostile one, >= 1024 regions, every control-plane fault hook
armed — across the full interp/compiled x 1/2/4-CPU grid, each cell
paired with a fault-free twin, and asserts the robustness headline:

- **chaos == clean, per cell**: the full digest (including mid-window
  canary decisions) is bit-identical with and without injected faults;
- **one settled digest for the whole grid**: settled guard-visible state
  is independent of engine, CPU count, *and* faults;
- every injected publish failure was resolved by watchdog retry or a
  recorded auto-rollback, with zero replica divergence and no panic.

Writes ``benchmarks/results/BENCH_controlplane.json``.
"""

from __future__ import annotations

import json
import time

from repro.policy.policyd import chaos_injector, run_policyd

TENANTS = 4
REGIONS = 1024
ROUNDS = 1
ENGINES = ("interp", "compiled")
CPU_COUNTS = (1, 2, 4)

_CELL_KEYS = (
    "generation", "promotions", "rollbacks", "publish_retries",
    "publish_failures", "forced_publishes", "replica_repairs",
    "torn_batches", "quota_races", "replica_divergence",
    "batches_submitted", "batches_retried", "composed_regions",
    "verify_demotions", "delivered_frames",
)


def _cell(engine: str, cpus: int, chaos: bool) -> dict:
    t0 = time.perf_counter()
    report = run_policyd(
        tenants=TENANTS, regions=REGIONS, rounds=ROUNDS,
        engine=engine, cpus=cpus,
        injector=chaos_injector() if chaos else None,
    )
    elapsed = time.perf_counter() - t0
    cell = {k: report[k] for k in _CELL_KEYS}
    cell.update({
        "engine": engine,
        "cpus": cpus,
        "chaos": chaos,
        "elapsed_s": round(elapsed, 3),
        "settled_digest": report["settled_digest"],
        "full_digest": report["full_digest"],
        "injector": report["injector"],
        "panicked": report["panicked"],
    })
    return cell


def test_controlplane_chaos_grid(results_dir):
    cells = []
    for engine in ENGINES:
        for cpus in CPU_COUNTS:
            chaos = _cell(engine, cpus, chaos=True)
            clean = _cell(engine, cpus, chaos=False)
            cells.extend((chaos, clean))

            # chaos == clean, bit-identical, in every cell.
            label = f"{engine}/cpus={cpus}"
            assert chaos["full_digest"] == clean["full_digest"], (
                f"{label}: chaos run diverged from fault-free run")
            assert chaos["generation"] == clean["generation"], (
                f"{label}: faults consumed generation numbers")

            # Every fault hook fired, and everything it broke was healed.
            inj = chaos["injector"]
            for hook in ("dropped_publishes", "stalled_publishes",
                         "corrupted_replicas", "torn_batches",
                         "quota_race_storms"):
                assert inj[hook] >= 1, f"{label}: {hook} never fired"
            assert chaos["publish_retries"] >= 1, label
            assert chaos["replica_repairs"] >= 1, label
            assert chaos["rollbacks"] >= 1, (
                f"{label}: no auto-rollback recorded")
            for run in (chaos, clean):
                assert run["replica_divergence"] == 0, label
                assert not run["panicked"], label
                assert run["composed_regions"] >= REGIONS, label

    settled = {c["settled_digest"] for c in cells}
    assert len(settled) == 1, (
        f"settled state must be grid-invariant; saw {len(settled)} digests")

    chaos_cells = [c for c in cells if c["chaos"]]
    report = {
        "workload": {
            "tenants": TENANTS,
            "hostile_tenants": 1,
            "regions": REGIONS,
            "rounds": ROUNDS,
            "fault_hooks": ["drop_publish", "publish_stall",
                            "corrupt_replica", "torn_batch", "quota_race"],
        },
        "grid": {
            "engines": list(ENGINES),
            "cpu_counts": list(CPU_COUNTS),
            "cells": len(cells),
            "chaos_equals_clean": True,
            "settled_digest": settled.pop(),
        },
        "totals": {
            "faults_injected": sum(
                sum(c["injector"].values()) for c in chaos_cells),
            "publish_retries": sum(
                c["publish_retries"] for c in chaos_cells),
            "replica_repairs": sum(
                c["replica_repairs"] for c in chaos_cells),
            "auto_rollbacks": sum(c["rollbacks"] for c in chaos_cells),
            "elapsed_s": round(sum(c["elapsed_s"] for c in cells), 3),
        },
        "cells": cells,
    }
    out = results_dir / "BENCH_controlplane.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
