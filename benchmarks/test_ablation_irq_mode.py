"""abl4 — polled vs interrupt-driven servicing under guards.

The paper's evaluation polls (its tool hammers sendmsg; TX cleaning rides
the xmit path).  Interrupt-driven servicing moves the clean work into an
ISR — which is *also* module code, so its accesses are guarded too.  This
bench quantifies what that does to guard counts per packet: the guard
overhead follows the work wherever it runs, which is exactly the property
that makes CARAT KOP policy-complete over a module (no unguarded entry
points).
"""

from repro.core.system import CaratKopSystem, SystemConfig
from repro.net import make_test_frame

from conftest import save_table


def _run(irq_mode: bool, packets: int = 120):
    system = CaratKopSystem(SystemConfig(machine="r350", protect=True))
    if irq_mode:
        assert system.netdev.enable_interrupts() == 0
    checks_before = system.guard_stats()["checks"]
    timing = system.kernel.vm.timing
    cycles_before = timing.cycles
    result = system.blast(size=128, count=packets)
    assert result.errors == 0
    return {
        "guards_per_packet": (
            (system.guard_stats()["checks"] - checks_before) / packets
        ),
        "cycles_per_packet": (timing.cycles - cycles_before) / packets,
        "irq_count": system.netdev.stats()["irq_count"],
        "cleaned": system.netdev.stats()["cleaned"],
    }


def test_irq_vs_polled_guard_accounting(results_dir):
    polled = _run(irq_mode=False)
    irq = _run(irq_mode=True)

    rows = [
        "abl4: polled vs interrupt-driven servicing (R350, 128B, carat)",
        f"{'':<12}{'guards/pkt':>12}{'cycles/pkt':>12}{'irqs':>8}{'cleaned':>9}",
        f"{'polled':<12}{polled['guards_per_packet']:>12.1f}"
        f"{polled['cycles_per_packet']:>12.0f}{polled['irq_count']:>8}"
        f"{polled['cleaned']:>9}",
        f"{'irq-driven':<12}{irq['guards_per_packet']:>12.1f}"
        f"{irq['cycles_per_packet']:>12.0f}{irq['irq_count']:>8}"
        f"{irq['cleaned']:>9}",
        "",
        "note: ISR work is module code and therefore guarded; the guard",
        "count moves with the servicing discipline but coverage is total",
        "either way (no unguarded module entry points).",
    ]
    save_table(results_dir, "abl4_irq_mode", "\n".join(rows))

    # Both modes are fully serviced and fully guarded.  (Polled mode may
    # legitimately never clean inside this window: the wire drains faster
    # than the producer, and the driver's amortized clean only kicks in
    # past half-ring occupancy.)
    assert polled["irq_count"] == 0
    assert irq["irq_count"] > 0
    assert irq["cleaned"] > 0
    assert polled["guards_per_packet"] > 10
    assert irq["guards_per_packet"] > polled["guards_per_packet"]


def test_irq_mode_wire_output_identical():
    outs = {}
    for irq_mode in (False, True):
        s = CaratKopSystem(SystemConfig(machine=None, protect=True))
        if irq_mode:
            s.netdev.enable_interrupts()
        s.sink.keep_last = 40
        for seq in range(40):
            assert s.netdev.xmit(make_test_frame(128, seq)) == 0
        outs[irq_mode] = list(s.sink.recent)
    assert outs[False] == outs[True]


def test_irq_dispatch_benchmark(benchmark):
    """Wall-time of one device-raised interrupt through the module ISR."""
    system = CaratKopSystem(SystemConfig(machine=None, protect=True))
    system.netdev.enable_interrupts()
    frame = make_test_frame(128, 0)

    def rx_one():
        assert system.netdev.inject_rx(frame)

    benchmark(rx_one)
