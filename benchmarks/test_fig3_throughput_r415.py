"""Figure 3: CARAT KOP effect on packet launch throughput, slow R415.

Paper: "Two regions are used.  Packet size is 128.  The effect is
minimal ... The median throughput changes by only about 1,000 packets per
second, a relative change of <0.8%."
"""

import numpy as np

from repro.bench import run_fig3
from repro.bench.harness import WorkloadConfig, build_system, calibrate
from repro.bench.stats import relative_median_change


def test_fig3_reproduction(save_figure):
    result = run_fig3(trials=41)
    delta = relative_median_change(
        result.series["baseline"], result.series["carat"]
    )
    med_b = float(np.median(result.series["baseline"]))
    med_c = float(np.median(result.series["carat"]))
    rows = (
        f"paper:    median delta < 0.8%, ~1,000 pps of ~120k\n"
        f"measured: median baseline {med_b:,.0f} pps, carat {med_c:,.0f} pps, "
        f"delta {delta * 100:.3f}% ({med_b - med_c:,.0f} pps)"
    )
    save_figure(result, rows)
    assert 0 <= delta < 0.008
    assert abs(med_b - med_c) < 2000  # "about 1,000 packets per second"


def test_fig3_hot_path_benchmark(benchmark):
    """Wall-time of the guarded sendmsg path on the R415 model (the
    interpreter work behind every Figure 3 data point)."""
    cfg = WorkloadConfig(machine="r415", protect=True)
    system = build_system(cfg)
    system.blast(size=128, count=32)  # warm
    from repro.net import make_test_frame

    frame = make_test_frame(128, 1)

    benchmark(lambda: system.socket.sendmsg(frame))
