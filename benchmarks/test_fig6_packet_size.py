"""Figure 6: throughput slowdown vs packet size (R350, 2 regions).

Paper: "CARAT KOP's impact is indeed largely independent of the packet
size ... To the extent the slowdown varies (maximum is about 2.5%) it is
concentrated on small packets."  This is a *mean*-based figure; see
EXPERIMENTS.md for the burst-stall model it runs under.
"""

from repro.bench import FIG6_SIZES, run_fig6
from repro.bench.harness import WorkloadConfig, calibrate


def test_fig6_reproduction(save_figure):
    result = run_fig6(trials=41)
    slow = {int(k): float(v[0]) for k, v in result.series.items()}
    rows = ["paper:    max ~1.025 at small sizes, ~1.0 by 1500B",
            "measured:"]
    for size in FIG6_SIZES:
        rows.append(f"  {size:>5} B  slowdown {slow[size]:.4f}")
    save_figure(result, "\n".join(rows))
    assert max(slow.values()) == slow[64]
    assert slow[64] <= 1.032
    assert slow[1500] <= 1.005


def test_fig6_guarded_work_is_size_independent():
    """The mechanism: guards per packet do not grow with payload (DMA
    moves the bytes, unguarded — §4)."""
    guards = {}
    for size in (64, 512, 1500):
        cfg = WorkloadConfig(machine="r350", size=size,
                             calibration_packets=50, warmup_packets=16)
        guards[size] = calibrate(cfg).guards_per_packet
    assert abs(guards[64] - guards[1500]) / guards[64] < 0.1


def test_fig6_sweep_benchmark(benchmark):
    """Wall-time of a full packet-size sweep at reduced trial count."""
    result = benchmark(run_fig6, trials=9)
    assert set(result.series) == {str(s) for s in FIG6_SIZES}
