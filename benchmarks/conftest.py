"""Shared benchmark fixtures.

Every figure benchmark regenerates its paper figure, asserts the
reproduction's shape check, and writes the rendered figure (the "rows the
paper reports") to ``benchmarks/results/<figure>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_figure(results_dir):
    """save_figure(figure_result) -> renders, persists, and shape-checks."""
    from repro.bench import check_figure, render_figure

    def _save(result, extra: str = ""):
        text = render_figure(result)
        if extra:
            text += "\n" + extra
        (results_dir / f"{result.figure_id}.txt").write_text(text + "\n")
        ok, detail = check_figure(result)
        assert ok, f"{result.figure_id} failed its shape check: {detail}"
        return text

    return _save


def save_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
