"""Execution-engine speedup: the compiled engine vs the interpreter.

The compiled engine exists to make the paper's figures cheap to
regenerate: every Figure 3-7 data point is thousands of guarded e1000e
``sendmsg`` calls, and the reference interpreter re-dispatches every IR
instruction on every visit.  This benchmark measures both engines on the
exact Figure 3 hot configuration (R415, protected driver, 128-byte
frames) and asserts the translate-once engine is at least 3x faster with
byte-identical simulated results.

Writes ``benchmarks/results/BENCH_engine.json``.

Methodology: the engines alternate within each round and the best of
several rounds is kept, so drifting background load on the measurement
box biases both engines equally instead of whichever ran last.
"""

from __future__ import annotations

import gc
import json
import time

from repro.core.system import CaratKopSystem, SystemConfig

MACHINE = "r415"
FRAME_BYTES = 128
WARMUP_PACKETS = 64
PACKETS = 1000
ROUNDS = 5
REQUIRED_SPEEDUP = 3.0


def _blast_seconds(engine: str, count: int) -> tuple[float, dict]:
    system = CaratKopSystem(
        SystemConfig(machine=MACHINE, protect=True, engine=engine)
    )
    system.blast(size=FRAME_BYTES, count=WARMUP_PACKETS)
    t0 = time.perf_counter()
    result = system.blast(size=FRAME_BYTES, count=count)
    elapsed = time.perf_counter() - t0
    # Translation-cache counters track process-global cache warmth (the
    # interpreter never compiles; later compiled rounds hit what the
    # first round missed), not simulated behaviour — strip them.
    guard_stats = {
        k: v for k, v in system.guard_stats().items()
        if not k.startswith("translation_")
    }
    state = {
        "packets_sent": result.packets_sent + WARMUP_PACKETS,
        "errors": result.errors,
        "total_cycles": result.total_cycles,
        "instructions": system.kernel.vm.instructions_executed,
        "guard_checks": system.kernel.vm.guard_checks,
        "guard_stats": guard_stats,
    }
    return elapsed, state


def test_compiled_engine_speedup(results_dir):
    gc.disable()
    try:
        best = {"interp": float("inf"), "compiled": float("inf")}
        states = {}
        for _ in range(ROUNDS):
            for engine in ("interp", "compiled"):
                elapsed, state = _blast_seconds(engine, PACKETS)
                best[engine] = min(best[engine], elapsed)
                states[engine] = state
    finally:
        gc.enable()

    # The engines must have simulated the same machine: identical packet
    # counts, identical cycle totals, identical guard statistics.
    assert states["interp"] == states["compiled"]

    speedup = best["interp"] / best["compiled"]
    report = {
        "workload": {
            "figure": "fig3",
            "machine": MACHINE,
            "frame_bytes": FRAME_BYTES,
            "packets": PACKETS,
            "protect": True,
            "rounds": ROUNDS,
        },
        "interp": {
            "seconds": best["interp"],
            "packets_per_sec_wallclock": PACKETS / best["interp"],
        },
        "compiled": {
            "seconds": best["compiled"],
            "packets_per_sec_wallclock": PACKETS / best["compiled"],
        },
        "simulated_state_identical": True,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
    }
    (results_dir / "BENCH_engine.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"compiled engine only {speedup:.2f}x faster than interp "
        f"(need >= {REQUIRED_SPEEDUP}x); see BENCH_engine.json"
    )
