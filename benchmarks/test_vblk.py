"""vblk throughput grid: guard-tier x engine x CPU count.

The storage twin of the pktblast figures: one blkblast trial per cell of
the -O0/-O2/-O3 x interp/compiled x 1/2/4-CPU grid, all on the r415
machine model.  Two claims ride on the grid:

1. **Guard optimization pays on the block path too**: per engine, the
   -O2 build must execute fewer dynamic guard checks than -O0, and -O3
   (static verification + elision) fewer than -O2, while moving the
   byte-identical request stream.

2. **Cooperative SMP stays a determinism feature**: within every
   (opt level, engine) pair the simulated digest is bit-identical at
   1, 2, and 4 CPUs.

Writes ``benchmarks/results/BENCH_vblk.json``.
"""

from __future__ import annotations

import json

from repro.core.system import CaratKopSystem, SystemConfig

MACHINE = "r415"
COUNT = 240
NSECT = 2
PATTERN = "rand"
SEED = 7
READ_FRAC = 50
OPT_LEVELS = (0, 2, 3)
ENGINES = ("interp", "compiled")
CPU_COUNTS = (1, 2, 4)
# Decision-cache warmth and translation traffic are per-process, not
# simulated state; strip them from the identity digest (same convention
# as BENCH_smp).
_CACHE_KEYS = ("guard_cache_hits", "guard_cache_misses",
               "comparisons", "structure_checks")


def _cell(opt_level: int, engine: str, cpus: int) -> dict:
    system = CaratKopSystem(SystemConfig(
        machine=MACHINE, driver="vblk", protect=True,
        opt_level=opt_level, engine=engine, cpus=cpus,
    ))
    result = system.blkblast(
        count=COUNT, nsect=NSECT, pattern=PATTERN, seed=SEED,
        read_frac=READ_FRAC,
    )
    assert result.errors == 0, (
        f"healthy-device blast errored at -O{opt_level}/{engine}/cpus={cpus}"
    )
    guard_stats = {
        k: v for k, v in system.guard_stats().items()
        if k not in _CACHE_KEYS and not k.startswith("translation_")
    }
    return {
        "ops_done": result.ops_done,
        "reads": result.reads,
        "writes": result.writes,
        "flushes": result.flushes,
        "stalls": result.stalls,
        "bytes_read": result.bytes_read,
        "bytes_written": result.bytes_written,
        "total_cycles": result.total_cycles,
        "throughput_iops": result.throughput_iops,
        "data_sig": system.blkdev.stats()["data_sig"],
        "guard_checks": guard_stats["checks"],
        "guard_stats": guard_stats,
        "elided_guards": len(system.driver.elided_guards),
    }


def test_vblk_throughput_grid(results_dir):
    grid = {}
    for opt_level in OPT_LEVELS:
        for engine in ENGINES:
            for cpus in CPU_COUNTS:
                grid[f"O{opt_level}/{engine}/cpus{cpus}"] = _cell(
                    opt_level, engine, cpus
                )

    # -- claim 2: bit-identical across CPU counts ----------------------
    for opt_level in OPT_LEVELS:
        for engine in ENGINES:
            reference = grid[f"O{opt_level}/{engine}/cpus1"]
            for cpus in CPU_COUNTS[1:]:
                cell = grid[f"O{opt_level}/{engine}/cpus{cpus}"]
                assert cell == reference, (
                    f"-O{opt_level}/{engine} diverged at cpus={cpus}: the "
                    f"sharded blkblast must replay the single-CPU stream"
                )

    # -- claim 1: each guard tier cuts dynamic checks ------------------
    reductions = {}
    for engine in ENGINES:
        checks = {
            opt: grid[f"O{opt}/{engine}/cpus1"]["guard_checks"]
            for opt in OPT_LEVELS
        }
        assert checks[2] < checks[0], (
            f"{engine}: -O2 ran {checks[2]} guard checks vs {checks[0]} "
            f"at -O0; coalescing bought nothing on the block path"
        )
        assert checks[3] < checks[2], (
            f"{engine}: -O3 ran {checks[3]} guard checks vs {checks[2]} "
            f"at -O2; static verification elided nothing"
        )
        assert grid[f"O3/{engine}/cpus1"]["elided_guards"] > 0
        reductions[engine] = {
            "checks_O0": checks[0],
            "checks_O2": checks[2],
            "checks_O3": checks[3],
            "O2_vs_O0": 1 - checks[2] / checks[0],
            "O3_vs_O0": 1 - checks[3] / checks[0],
        }

    report = {
        "workload": {
            "machine": MACHINE,
            "driver": "vblk",
            "count": COUNT,
            "nsect": NSECT,
            "pattern": PATTERN,
            "seed": SEED,
            "read_frac": READ_FRAC,
        },
        "opt_levels": list(OPT_LEVELS),
        "engines": list(ENGINES),
        "cpu_counts": list(CPU_COUNTS),
        "bit_identical_across_cpus": True,
        "guard_check_reduction": reductions,
        "grid": grid,
    }
    (results_dir / "BENCH_vblk.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
