"""The -O3 static-verification tier on the fig3 workload.

Runs the Figure 3 hot configuration (R415, protected e1000e, 128-byte
frames) at the paper's maximum 64-region policy and compares the -O2
production tier against -O3, which proves guards in-policy at compile
time and elides them at insmod.  Asserts the PR's acceptance bars:

1. the verifier proves >= 50% of the post--O2 guard sites static;
2. -O3 beats -O2 simulated throughput (elided guards cost zero cycles)
   and issues strictly fewer dynamic guard checks;
3. the tier is *behaviourally invisible*: functional simulated state
   and the deny set are bit-identical to the -O0/interp baseline in
   every -O{0,2,3} x engine x {1,2,4}-CPU cell.

Writes ``benchmarks/results/BENCH_static_verify.json`` and the
operator-facing ``fig3_static_verify_diff.txt``.
"""

from __future__ import annotations

import json

from repro.core.system import CaratKopSystem, SystemConfig

MACHINE = "r415"          # the fig3 machine
FRAME_BYTES = 128         # the fig3 frame size
REGIONS = 64              # the paper's maximum policy table
PACKETS = 400             # timing cells (deterministic simulated clock)
IDENTITY_PACKETS = 120    # functional-identity cells

OPT_LEVELS = (0, 2, 3)
ENGINES = ("interp", "compiled")
CPUS = (1, 2, 4)


def _cell(opt_level, engine="compiled", cpus=1, packets=PACKETS):
    system = CaratKopSystem(
        SystemConfig(
            machine=MACHINE, protect=True, regions=REGIONS,
            opt_level=opt_level, policy_index="interval",
            engine=engine, cpus=cpus,
        )
    )
    system.sink.keep_last = 16
    result = system.blast(size=FRAME_BYTES, count=packets)
    stats = system.guard_stats()
    compiled = system.driver_compiled
    functional = {
        "packets_sent": result.packets_sent,
        "errors": result.errors,
        "stalls": result.stalls,
        "denied": stats["denied"],
        "last_frames": [bytes(f) for f in system.sink.recent],
    }
    timing = {
        "total_cycles": result.total_cycles,
        "throughput_pps": result.throughput_pps,
        "guard_checks": stats["checks"],
        "entries_scanned": stats["entries_scanned"],
        "guards_total": compiled.guard_count,
        "guards_proven": stats["guards_proven"],
        "guards_elided": stats["guards_elided"],
    }
    return functional, timing


def test_static_verify_grid(results_dir):
    # -- timing: compiled engine, single CPU, deterministic clock ---------
    grid = {}
    for level in OPT_LEVELS:
        _, timing = grid_cell = _cell(level)
        grid[f"O{level}"] = grid_cell[1]

    o2, o3 = grid["O2"], grid["O3"]
    # Acceptance bar 1: >= 50% of the post--O2 sites proven static.
    proven_pct = 100.0 * o3["guards_proven"] / o3["guards_total"]
    assert proven_pct >= 50.0, (
        f"verifier proved only {proven_pct:.0f}% of guard sites "
        f"({o3['guards_proven']}/{o3['guards_total']})"
    )
    assert o3["guards_elided"] == o3["guards_proven"]
    # Acceptance bar 2: strictly faster, strictly fewer dynamic checks.
    assert o3["throughput_pps"] > o2["throughput_pps"], (
        f"-O3 did not beat -O2: {o3['throughput_pps']:.0f} vs "
        f"{o2['throughput_pps']:.0f} pps"
    )
    assert o3["guard_checks"] < o2["guard_checks"]
    assert grid["O0"]["guard_checks"] > o2["guard_checks"]

    # -- functional identity: the full engine x cpus grid -----------------
    baseline_fn, _ = _cell(0, "interp", 1, IDENTITY_PACKETS)
    identity_cells = 0
    for engine in ENGINES:
        for cpus in CPUS:
            for level in OPT_LEVELS:
                functional, _ = _cell(level, engine, cpus, IDENTITY_PACKETS)
                assert functional == baseline_fn, (
                    f"-O{level}/{engine}/cpu{cpus}: simulated state "
                    f"diverged from the -O0/interp baseline"
                )
                identity_cells += 1
    assert baseline_fn["denied"] == 0

    report = {
        "workload": {
            "figure": "fig3",
            "machine": MACHINE,
            "frame_bytes": FRAME_BYTES,
            "regions": REGIONS,
            "packets": PACKETS,
            "policy_index": "interval",
        },
        "grid": grid,
        "guards_proven_pct": proven_pct,
        "identity": {
            "cells": identity_cells,
            "engines": list(ENGINES),
            "cpus": list(CPUS),
            "packets": IDENTITY_PACKETS,
            "identical_to_O0_interp_baseline": True,
            "denied_everywhere": 0,
        },
    }
    (results_dir / "BENCH_static_verify.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )


def test_fig3_diff_O2_vs_O3(results_dir):
    """The -O2 vs -O3 diff the CI job publishes: the production dynamic
    tier next to the hybrid static+dynamic tier on the same workload."""
    _, dynamic = _cell(2)
    _, hybrid = _cell(3)
    gain = (hybrid["throughput_pps"] / dynamic["throughput_pps"] - 1.0) * 100
    proven_pct = 100.0 * hybrid["guards_proven"] / hybrid["guards_total"]
    lines = [
        f"fig3 static-verify diff ({MACHINE}, {REGIONS} regions, "
        f"{PACKETS} packets)",
        f"{'':<24}{'-O2 dynamic':>16}{'-O3 hybrid':>16}",
        f"{'throughput (pps)':<24}{dynamic['throughput_pps']:>16,.0f}"
        f"{hybrid['throughput_pps']:>16,.0f}",
        f"{'total cycles':<24}{dynamic['total_cycles']:>16,.0f}"
        f"{hybrid['total_cycles']:>16,.0f}",
        f"{'dynamic guard checks':<24}{dynamic['guard_checks']:>16,}"
        f"{hybrid['guard_checks']:>16,}",
        f"{'guard sites proven':<24}{'-':>16}"
        f"{hybrid['guards_proven']:>13,} ({proven_pct:.0f}%)",
        "",
        f"static-verify tier gain: {gain:+.2f}% simulated throughput",
    ]
    (results_dir / "fig3_static_verify_diff.txt").write_text(
        "\n".join(lines) + "\n"
    )
    assert hybrid["throughput_pps"] > dynamic["throughput_pps"]
    assert hybrid["guard_checks"] < dynamic["guard_checks"]
