"""SMP scale-out: cooperative identity curve + process-pool wall clock.

Two axes, two claims:

1. **Cooperative SMP** (``--cpus N``) is a determinism feature, not a
   speed feature: the sharded run must produce a byte-identical simulated
   digest at every CPU count.  We record the cpus = 1/2/4 curve to prove
   the invariant held on the exact Figure 3 hot configuration.

2. **Process pool** (``--workers N``) is the real scale-out: N OS
   processes each run a complete system and the merge divides the stream
   by the straggler.  Wall-clock speedup is a host property, so the
   >= 2.5x assertion at workers=4 only fires where the host actually has
   >= 4 cores; on smaller hosts the curve is still recorded honestly
   with the gate noted in the report.

Writes ``benchmarks/results/BENCH_smp.json``.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.core.system import CaratKopSystem, SystemConfig
from repro.net import pool_blast

MACHINE = "r415"
FRAME_BYTES = 128
PACKETS = 1000
CPU_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)
POOL_ROUNDS = 3
REQUIRED_POOL_SPEEDUP = 2.5
# comparisons/structure_checks, like the hit/miss counters, track
# per-CPU decision-cache warmth rather than simulated state.
_CACHE_KEYS = ("guard_cache_hits", "guard_cache_misses",
               "comparisons", "structure_checks")


def _cooperative_digest(cpus: int) -> dict:
    system = CaratKopSystem(SystemConfig(
        machine=MACHINE, protect=True, cpus=cpus,
    ))
    result = system.blast(size=FRAME_BYTES, count=PACKETS)
    guard_stats = {
        k: v for k, v in system.guard_stats().items()
        if k not in _CACHE_KEYS and not k.startswith("translation_")
    }
    return {
        "packets_sent": result.packets_sent,
        "errors": result.errors,
        "stalls": result.stalls,
        "total_cycles": result.total_cycles,
        "throughput_pps": result.throughput_pps,
        "timing_cycles": system.kernel.vm.timing.cycles,
        "guard_stats": guard_stats,
    }


def _pool_point(workers: int, processes: bool) -> dict:
    best = None
    for _ in range(POOL_ROUNDS):
        merged = pool_blast(
            workers,
            size=FRAME_BYTES,
            count=PACKETS,
            config_kwargs={"machine": MACHINE, "protect": True},
            processes=processes,
        )
        assert merged.packets_sent == PACKETS
        assert merged.errors == 0
        if best is None or merged.wall_pps > best.wall_pps:
            best = merged
    return {
        "workers": workers,
        "wall_elapsed_s": best.wall_elapsed_s,
        "wall_pps": best.wall_pps,
        "total_cycles": best.total_cycles,
        "per_worker_packets": [
            w["packets_sent"] for w in best.per_worker
        ],
    }


def test_smp_scaling(results_dir):
    host_cores = os.cpu_count() or 1

    # -- axis 1: cooperative identity curve ----------------------------
    digests = {cpus: _cooperative_digest(cpus) for cpus in CPU_COUNTS}
    reference = digests[CPU_COUNTS[0]]
    for cpus, digest in digests.items():
        assert digest == reference, (
            f"cooperative SMP diverged at cpus={cpus}; the sharded run "
            f"must be byte-identical to the single-CPU run"
        )

    # -- axis 2: process-pool wall-clock curve -------------------------
    use_processes = host_cores >= 2
    gc.disable()
    try:
        curve = [
            _pool_point(w, processes=use_processes)
            for w in WORKER_COUNTS
        ]
    finally:
        gc.enable()
    baseline_pps = curve[0]["wall_pps"]
    for point in curve:
        point["speedup_vs_one_worker"] = (
            point["wall_pps"] / baseline_pps if baseline_pps else 0.0
        )

    speedup_gate_active = host_cores >= 4
    report = {
        "workload": {
            "figure": "fig3",
            "machine": MACHINE,
            "frame_bytes": FRAME_BYTES,
            "packets": PACKETS,
            "protect": True,
        },
        "host_cores": host_cores,
        "cooperative": {
            "cpu_counts": list(CPU_COUNTS),
            "bit_identical": True,
            "digest": reference,
        },
        "pool": {
            "processes": use_processes,
            "rounds": POOL_ROUNDS,
            "curve": curve,
            "required_speedup_at_4": REQUIRED_POOL_SPEEDUP,
            "speedup_gate_active": speedup_gate_active,
            "speedup_gate_note": (
                "asserted" if speedup_gate_active else
                f"not asserted: host has {host_cores} core(s); wall-clock "
                f"scale-out needs >= 4"
            ),
        },
    }
    (results_dir / "BENCH_smp.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    if speedup_gate_active:
        at4 = next(p for p in curve if p["workers"] == 4)
        assert at4["speedup_vs_one_worker"] >= REQUIRED_POOL_SPEEDUP, (
            f"workers=4 only {at4['speedup_vs_one_worker']:.2f}x over one "
            f"worker (need >= {REQUIRED_POOL_SPEEDUP}x); see BENCH_smp.json"
        )
