"""abl3 — engineering effort and transform cost (paper §4.1).

Paper: "The e1000e driver in the Linux tree comprises about 19,000 lines
of source code ... No code was modified in the driver ... the engineering
effort needed to use CARAT KOP for a new kernel module is virtually
non-existent."  This bench quantifies the transform itself: compile time,
code growth, and guard density across modules of different shapes.
"""

import pytest

from repro.core.pipeline import CompileOptions, compile_module
from repro.e1000e import DRIVER_SOURCE, driver_source_lines

from conftest import save_table

TOY_MODULES = {
    "compute-only": """
        __export long f(long a, long b) {
            long acc = 0;
            for (long i = 0; i < 64; i++) { acc += a * b + i; }
            return acc;
        }
    """,
    "memory-heavy": """
        long table[256];
        __export long f(long n) {
            for (long i = 0; i < n; i++) { table[i % 256] = i; }
            long s = 0;
            for (long i = 0; i < 256; i++) { s += table[i]; }
            return s;
        }
    """,
}


def test_transform_cost_table(results_dir):
    rows = [
        f"{'module':<16}{'src lines':>10}{'instrs':>8}{'guards':>8}"
        f"{'growth':>8}{'guards/instr':>13}",
    ]
    stats = {}
    for name, src in list(TOY_MODULES.items()) + [("e1000e", DRIVER_SOURCE)]:
        compiled = compile_module(src, CompileOptions(module_name="m"))
        st = compiled.stats
        density = st.guards / max(st.instructions_before_guards, 1)
        rows.append(
            f"{name:<16}{st.source_lines:>10}{st.instructions_after:>8}"
            f"{st.guards:>8}{st.code_growth:>8.2f}{density:>13.2f}"
        )
        stats[name] = st
    rows += [
        "",
        "paper §4.1: zero source changes, one recompile — the whole",
        f"effort for the {driver_source_lines()}-line driver "
        "(19k lines for the real e1000e).",
    ]
    save_table(results_dir, "abl3_transform_cost", "\n".join(rows))

    # Shape assertions.
    assert stats["compute-only"].guards == 0
    assert stats["memory-heavy"].guards > 0
    assert stats["e1000e"].guards > 40
    # Guard injection roughly doubles memory-op sites (call + bitcast per
    # access) but never explodes the module.
    for st in stats.values():
        assert st.code_growth < 2.5


def test_no_source_changes_needed():
    """Both builds consume the identical source text — §4.1 verbatim."""
    base = compile_module(
        DRIVER_SOURCE, CompileOptions(module_name="e1000e", protect=False)
    )
    carat = compile_module(
        DRIVER_SOURCE, CompileOptions(module_name="e1000e", protect=True)
    )
    assert base.source_lines == carat.source_lines == driver_source_lines()


def test_baseline_compile_benchmark(benchmark):
    benchmark(
        compile_module,
        DRIVER_SOURCE,
        CompileOptions(module_name="e1000e", protect=False),
    )


def test_protected_compile_benchmark(benchmark):
    """The transform's compile-time cost over the baseline build."""
    benchmark(
        compile_module,
        DRIVER_SOURCE,
        CompileOptions(module_name="e1000e", protect=True),
    )
