"""abl1 — policy-structure ablation (paper §3.1 / §4.2 speculation).

Measures, for each candidate index structure, (a) real wall-time per
check via pytest-benchmark and (b) entry comparisons per check across
region counts, for the two workload shapes the paper discusses: the
compliant common case ("we expect modules to be compliant with policies
for nearly every access") and a deny-heavy stray-access case.
"""

import random

import pytest

from repro import abi
from repro.policy import CachedIndex, Region, STRUCTURES, make_index

from conftest import save_table

RW = abi.FLAG_READ | abi.FLAG_WRITE


def build_index(kind: str, n: int, cached: bool = False):
    idx = make_index(kind, cached=cached)
    for i in range(n):
        idx.add(Region(0x4000_0000 + i * 0x10000, 0x1000, RW))
    return idx


def compliant_workload(n: int, count: int = 512, seed: int = 3):
    rng = random.Random(seed)
    regions = [0x4000_0000 + i * 0x10000 for i in range(n)]
    # Popularity-skewed, like real drivers: mostly the same few regions.
    out = []
    for _ in range(count):
        base = regions[0] if rng.random() < 0.7 else rng.choice(regions)
        out.append((base + rng.randrange(0xFF8), 8, abi.FLAG_READ))
    return out


def stray_workload(count: int = 512, seed: int = 4):
    rng = random.Random(seed)
    return [(rng.randrange(1 << 44), 8, abi.FLAG_READ) for _ in range(count)]


@pytest.mark.parametrize("kind", sorted(STRUCTURES))
@pytest.mark.parametrize("n", [4, 64])
def test_structure_walltime(benchmark, kind, n):
    """Real Python wall-time of 512 compliant checks per structure."""
    idx = build_index(kind, n)
    ops = compliant_workload(n)

    def run():
        total = 0
        for addr, size, flags in ops:
            allowed, scanned = idx.check(addr, size, flags)
            total += scanned
        return total

    total = benchmark(run)
    assert total >= len(ops)


def test_entries_scanned_comparison(results_dir):
    """The crossover table: average comparisons per check by structure."""
    rows = [
        f"{'structure':<22}{'n':>6}{'compliant':>12}{'stray':>10}",
        "-" * 50,
    ]
    summary = {}
    for n in (2, 8, 64, 256, 1024):
        for kind in sorted(STRUCTURES):
            for cached in (False, True):
                if n > 64 and kind == "linear" and not cached:
                    pass  # the paper's table tops out at 64; we sweep past
                idx = make_index(kind, cached=cached)
                # Lift the 64-entry cap for the sweep (the paper: "If a
                # policy scheme wanted to consider many regions, an
                # O(log(n)) model could clearly be employed").
                inner = idx.inner if isinstance(idx, CachedIndex) else idx
                inner.max_regions = 1 << 20
                for i in range(n):
                    idx.add(Region(0x4000_0000 + i * 0x10000, 0x1000, RW))
                comp = compliant_workload(n)
                stray = stray_workload()
                c_scans = sum(idx.check(*op)[1] for op in comp) / len(comp)
                s_scans = sum(idx.check(*op)[1] for op in stray) / len(stray)
                name = idx.name
                rows.append(f"{name:<22}{n:>6}{c_scans:>12.2f}{s_scans:>10.2f}")
                summary[(name, n)] = (c_scans, s_scans)
        rows.append("")
    save_table(results_dir, "abl1_policy_structures", "\n".join(rows))

    # The paper's speculations, as assertions:
    # 1. linear scan degrades linearly; sorted search logarithmically.
    assert summary[("linear-table", 1024)][0] > 50
    assert summary[("sorted-bsearch", 1024)][0] < 15
    # 2. the cache wins the compliant common case at scale — but only
    #    over a cheap-miss structure; cache + linear still pays the full
    #    scan on every miss (a finding the paper's speculation glosses).
    assert summary[("cached(sorted-bsearch)", 1024)][0] < 10
    assert summary[("cached(sorted-bsearch)", 1024)][0] < summary[
        ("sorted-bsearch", 1024)
    ][0]
    assert summary[("cached(linear-table)", 1024)][0] > 50
    # 3. the AMQ filter makes stray *denies* cheap even at large n.
    assert summary[("amq-bloom", 1024)][1] < 5
    # 4. at tiny n the plain table is already near-optimal (why the
    #    paper shipped it).
    assert summary[("linear-table", 2)][0] <= 2.0


def test_structures_on_live_system(results_dir):
    """End-to-end: swap each structure under the real driver workload and
    compare guard-visible scan counts (the simulated-cycle story)."""
    from repro.bench.harness import WorkloadConfig, calibrate
    from repro.core.system import CaratKopSystem, SystemConfig

    rows = [f"{'structure':<22}{'entries/guard':>14}"]
    for kind in sorted(STRUCTURES):
        sys_ = CaratKopSystem(
            SystemConfig(machine="r350", policy_index=make_index(kind))
        )
        # The standard policy needs overlap for linear only; others get
        # the same decisions from the disjoint variant.
        if not sys_.policy.index.supports_overlap:
            sys_.policy_manager.clear()
            sys_.policy_manager.allow(
                0xFFFF_8000_0000_0000, (1 << 64) - 0xFFFF_8000_0000_0000
            )
            sys_.policy_manager.set_default(False)
        sys_.blast(size=128, count=60)
        stats = sys_.guard_stats()
        per_guard = stats["entries_scanned"] / stats["checks"]
        rows.append(f"{sys_.policy.index.name:<22}{per_guard:>14.2f}")
        assert stats["denied"] == 0
    save_table(results_dir, "abl1_live_system", "\n".join(rows))
