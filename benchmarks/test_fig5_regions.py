"""Figure 5: throughput vs number of policy regions (R350, 128 B).

Paper: "carat64 refers to using CARAT KOP with n = 64 regions ... n does
have a small, but significant effect.  Even with the worst measured case,
however, the relative change to the median is again <1%."  And: "for all
the curves in the figure, the exact same number of guards are being
executed.  The difference is in the cost of the policy lookup within the
guard."
"""

import numpy as np

from repro.bench import run_fig5
from repro.bench.harness import WorkloadConfig, calibrate


def test_fig5_reproduction(save_figure):
    result = run_fig5(trials=41)
    med = result.medians()
    rows = ["paper:    baseline >= carat >= carat16 >= carat64, worst <1%"]
    for name in ("baseline", "carat", "carat16", "carat64"):
        delta = (med["baseline"] - med[name]) / med["baseline"]
        rows.append(f"measured: {name:<9} {med[name]:>10,.0f} pps "
                    f"({delta * 100:+.3f}% vs baseline)")
    save_figure(result, "\n".join(rows))
    assert med["baseline"] >= med["carat"] >= med["carat16"] >= med["carat64"]
    assert (med["baseline"] - med["carat64"]) / med["baseline"] < 0.011


def test_fig5_same_guard_count_different_scan_cost():
    """The figure's key invariant, measured directly."""
    guards = {}
    scans = {}
    for n in (2, 16, 64):
        cfg = WorkloadConfig(machine="r350", regions=n,
                             calibration_packets=60, warmup_packets=16)
        cal = calibrate(cfg)
        guards[n] = cal.guards_per_packet
        scans[n] = cal.entries_per_guard
    # Exact same guards executed per packet regardless of the policy...
    assert guards[2] == guards[16] == guards[64]
    # ...but the lookup walks more entries.
    assert scans[2] < scans[16] < scans[64]


def test_fig5_guard_check_benchmark(benchmark):
    """Wall-time of one 64-region linear-table check (the guard body)."""
    from repro import abi
    from repro.policy import Region, RegionTable
    from repro.kernel import layout

    table = RegionTable()
    for i in range(62):
        table.add(Region(0x2_0000_0000 + i * 4096, 4096, 0x3))
    table.add(Region(layout.KERNEL_SPACE_START,
                     (1 << 64) - layout.KERNEL_SPACE_START, 0x3))
    table.add(Region(0, layout.USER_SPACE_END + 1, 0))
    addr = layout.DIRECT_MAP_BASE + 0x1000

    allowed, scanned = benchmark(table.check, addr, 8, abi.FLAG_READ)
    assert allowed and scanned == 63
