"""abl2 — guard optimization ablation (paper §3.3).

CARAT KOP ships *without* guard optimization ("every memory access
results in a guard, even if it would be redundant") for engineering
reasons.  This bench quantifies what the CARAT CAKE-style optimizer
(dominated-guard elimination + loop-invariant hoisting) would recover on
the e1000e driver — and confirms the paper's bet that it barely matters
at these overhead levels.
"""

import pytest

from repro.bench.harness import WorkloadConfig, build_system, calibrate
from repro.core.pipeline import CompileOptions, compile_module
from repro.e1000e import DRIVER_SOURCE

from conftest import save_table


def test_static_and_dynamic_guard_reduction(results_dir):
    plain = compile_module(
        DRIVER_SOURCE, CompileOptions(module_name="e1000e", protect=True)
    )
    opt = compile_module(
        DRIVER_SOURCE,
        CompileOptions(module_name="e1000e", protect=True,
                       optimize_guards=True),
    )
    assert opt.guard_count <= plain.guard_count

    dynamic = {}
    cost = {}
    for label, optimize_guards in (("unoptimized", False), ("hoisted", True)):
        cfg = WorkloadConfig(machine="r350", protect=True,
                             optimize_guards=optimize_guards,
                             calibration_packets=80, warmup_packets=16)
        cal = calibrate(cfg)
        dynamic[label] = cal.guards_per_packet
        cost[label] = cal.cycles_per_packet
    assert dynamic["hoisted"] <= dynamic["unoptimized"]

    saved = dynamic["unoptimized"] - dynamic["hoisted"]
    rows = [
        "abl2: CARAT CAKE-style guard optimization on the e1000e driver",
        f"{'':<14}{'static guards':>14}{'guards/packet':>15}{'cycles/packet':>15}",
        f"{'unoptimized':<14}{plain.guard_count:>14}"
        f"{dynamic['unoptimized']:>15.1f}{cost['unoptimized']:>15.0f}",
        f"{'hoisted':<14}{opt.guard_count:>14}"
        f"{dynamic['hoisted']:>15.1f}{cost['hoisted']:>15.0f}",
        "",
        f"runtime guards saved/packet: {saved:.1f} "
        f"({saved / max(dynamic['unoptimized'], 1) * 100:.1f}%)",
        f"cycles saved/packet: {cost['unoptimized'] - cost['hoisted']:.1f} "
        f"({(cost['unoptimized'] - cost['hoisted']) / cost['unoptimized'] * 100:.3f}%)",
        "",
        "paper's call: skipping the optimizer costs <<1% end to end —",
        "the NOELLE-style analysis isn't worth it for kernel modules.",
    ]
    save_table(results_dir, "abl2_guard_hoisting", "\n".join(rows))

    # The headline assertion: even zero optimization keeps total overhead
    # tiny, so the optimizer saves a negligible share of *total* cycles.
    assert (cost["unoptimized"] - cost["hoisted"]) / cost["unoptimized"] < 0.005


def test_wire_behaviour_unchanged_by_optimizer():
    from repro.core.system import CaratKopSystem, SystemConfig
    from repro.net import make_test_frame

    outs = {}
    for optimize_guards in (False, True):
        s = CaratKopSystem(
            SystemConfig(machine=None, protect=True,
                         optimize_guards=optimize_guards)
        )
        s.sink.keep_last = 32
        for seq in range(32):
            assert s.netdev.xmit(make_test_frame(120, seq)) == 0
        outs[optimize_guards] = list(s.sink.recent)
    assert outs[False] == outs[True]


def test_optimizer_compile_time_benchmark(benchmark):
    """Wall-time of the optimizing build (the engineering cost §3.3 ducks)."""
    benchmark(
        compile_module,
        DRIVER_SOURCE,
        CompileOptions(module_name="e1000e", protect=True,
                       optimize_guards=True),
    )
