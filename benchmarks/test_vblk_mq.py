"""Multi-queue vblk grid: shared queue vs per-CPU queue pairs.

The NVMe-style claim, measured: with one shared I/O queue, four CPUs
serialize on a single device FIFO (and burn retries on queue-full
stalls); with per-CPU queue pairs the media channels drain
independently, so a device-bound workload scales.  The grid runs
queues={1, auto} x cpus={1,2,4} x engine x -O{0,2,3} on the r415 model
and checks three claims:

1. **Throughput**: at 4 CPUs, multi-queue iops >= 2x the single shared
   queue in every (engine, opt) cell.
2. **Determinism**: the functional fingerprint — op counts, byte
   counts, driver data signature, and the sha256 of the final media
   image — is identical across *all* cells.  Timing (cycles, iops,
   stalls) is excluded: changing the queue map changes the clock, never
   the data.
3. **-O3 proof rate**: the verifier proves no fewer guards on the
   multi-queue configuration than on the single-queue one (the
   per-queue ring walks stay certifiable).

Writes ``benchmarks/results/BENCH_vblk_mq.json``.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.system import CaratKopSystem, SystemConfig

MACHINE = "r415"
COUNT = 240
NSECT = 8
PATTERN = "rand"
SEED = 7
READ_FRAC = 50
FLUSH_INTERVAL = 8
OPT_LEVELS = (0, 2, 3)
ENGINES = ("interp", "compiled")
CPU_COUNTS = (1, 2, 4)
QUEUE_MODES = (1, "auto")
SPEEDUP_FLOOR = 2.0


def _cell(queues, opt_level: int, engine: str, cpus: int) -> dict:
    system = CaratKopSystem(SystemConfig(
        machine=MACHINE, driver="vblk", protect=True,
        opt_level=opt_level, engine=engine, cpus=cpus, queues=queues,
    ))
    result = system.blkblast(
        count=COUNT, nsect=NSECT, pattern=PATTERN, seed=SEED,
        read_frac=READ_FRAC, flush_interval=FLUSH_INTERVAL,
    )
    assert result.errors == 0, (
        f"healthy-device blast errored at queues={queues}/-O{opt_level}"
        f"/{engine}/cpus={cpus}"
    )
    policy = system.policy.stats
    return {
        "queues_resolved": system.resolved_queues(),
        # -- functional fingerprint (must match across the whole grid) --
        "fingerprint": {
            "ops_done": result.ops_done,
            "reads": result.reads,
            "writes": result.writes,
            "flushes": result.flushes,
            "errors": result.errors,
            "bytes_read": result.bytes_read,
            "bytes_written": result.bytes_written,
            "data_sig": system.blkdev.stats()["data_sig"],
            "store_sha256": hashlib.sha256(
                bytes(system.device.store)).hexdigest(),
            "policy_denied": policy.denied,
            "violations": dict(system.policy.violations),
        },
        # -- timing (legitimately varies with the queue map) -----------
        "total_cycles": result.total_cycles,
        "throughput_iops": result.throughput_iops,
        "stalls": result.stalls,
        # -- -O3 proof shape -------------------------------------------
        "guards_proven": system.driver_compiled.guards_proven,
        "guards_dynamic": system.driver_compiled.guards_dynamic,
        "elided_guards": len(system.driver.elided_guards),
    }


def test_vblk_multiqueue_grid(results_dir):
    grid = {}
    for queues in QUEUE_MODES:
        for opt_level in OPT_LEVELS:
            for engine in ENGINES:
                for cpus in CPU_COUNTS:
                    key = f"q{queues}/O{opt_level}/{engine}/cpus{cpus}"
                    grid[key] = _cell(queues, opt_level, engine, cpus)

    # -- claim 2: one functional fingerprint for the whole grid --------
    reference = grid["q1/O0/interp/cpus1"]["fingerprint"]
    for key, cell in grid.items():
        assert cell["fingerprint"] == reference, (
            f"{key} diverged functionally: the completion-merge contract "
            f"must make the media image queue-count independent"
        )

    # -- claim 1: >= 2x at 4 CPUs in every (engine, opt) cell ----------
    speedups = {}
    for opt_level in OPT_LEVELS:
        for engine in ENGINES:
            sq = grid[f"q1/O{opt_level}/{engine}/cpus4"]
            mq = grid[f"qauto/O{opt_level}/{engine}/cpus4"]
            assert mq["queues_resolved"] == 4
            speedup = mq["throughput_iops"] / sq["throughput_iops"]
            speedups[f"O{opt_level}/{engine}"] = speedup
            assert speedup >= SPEEDUP_FLOOR, (
                f"-O{opt_level}/{engine}: multi-queue bought only "
                f"{speedup:.2f}x at 4 CPUs (floor {SPEEDUP_FLOOR}x)"
            )
            # The shared queue is also the stall machine: per-CPU pairs
            # must not stall more than the contended single FIFO.
            assert mq["stalls"] <= sq["stalls"]

    # -- claim 3: multi-queue costs no -O3 proofs ----------------------
    for engine in ENGINES:
        sq = grid[f"q1/O3/{engine}/cpus4"]
        mq = grid[f"qauto/O3/{engine}/cpus4"]
        assert mq["guards_proven"] >= sq["guards_proven"], (
            f"{engine}: the multi-queue build proved fewer guards "
            f"({mq['guards_proven']} < {sq['guards_proven']})"
        )
        assert mq["elided_guards"] > 0

    report = {
        "workload": {
            "machine": MACHINE,
            "driver": "vblk",
            "count": COUNT,
            "nsect": NSECT,
            "pattern": PATTERN,
            "seed": SEED,
            "read_frac": READ_FRAC,
            "flush_interval": FLUSH_INTERVAL,
        },
        "queue_modes": [str(q) for q in QUEUE_MODES],
        "opt_levels": list(OPT_LEVELS),
        "engines": list(ENGINES),
        "cpu_counts": list(CPU_COUNTS),
        "fingerprint_identical": True,
        "speedup_4cpu": speedups,
        "speedup_floor": SPEEDUP_FLOOR,
        "grid": grid,
    }
    (results_dir / "BENCH_vblk_mq.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
