"""Tracing overhead: what the static keys buy, measured.

Two claims back the trace subsystem's design:

1. **Tracing off is (near) free.**  Disabled tracepoints are one
   attribute load and a false branch in the interpreter, and compile to
   *nothing* in the compiled engine (guard closures specialize on
   tracer identity, so the untraced translation is byte-identical to a
   build without the subsystem).  Wall-clock overhead vs the recorded
   seed fig3 throughput must stay inside noise.
2. **Tracing on is affordable.**  Full event capture (ring append +
   aggregates on every guard) costs real time, but the *simulated*
   results stay bit-identical — only the wall clock pays.

Measures the Figure 3 hot configuration (R415, protected, 128-byte
frames) with tracing off and on, both engines interleaved best-of-N
like ``test_engine_speedup.py``, and writes
``benchmarks/results/BENCH_trace.json``.
"""

from __future__ import annotations

import gc
import json
import time

from repro.core.system import CaratKopSystem, SystemConfig

MACHINE = "r415"
FRAME_BYTES = 128
WARMUP_PACKETS = 64
PACKETS = 1000
ROUNDS = 3
# Off-mode wall-clock overhead budget vs the no-tracing baseline.  The
# acceptance bar is < 2% simulated regression (simulated results are
# bit-identical, i.e. 0%); wall-clock on a shared CI box is far
# noisier, so the assertion is deliberately lax.
MAX_OFF_OVERHEAD = 0.25


def _blast_seconds(engine: str, traced: bool) -> tuple[float, dict, int]:
    system = CaratKopSystem(
        SystemConfig(machine=MACHINE, protect=True, engine=engine)
    )
    if traced:
        system.kernel.trace.enable()
    system.blast(size=FRAME_BYTES, count=WARMUP_PACKETS)
    t0 = time.perf_counter()
    result = system.blast(size=FRAME_BYTES, count=PACKETS)
    elapsed = time.perf_counter() - t0
    state = {
        "packets_sent": result.packets_sent,
        "total_cycles": result.total_cycles,
        "throughput_pps": result.throughput_pps,
        # Strip the process-global translation-cache traffic: later
        # trials hit what earlier trials compiled.
        "guard_stats": {
            k: v for k, v in system.guard_stats().items()
            if not k.startswith("translation_")
        },
    }
    events = system.kernel.trace.ring.total if traced else 0
    return elapsed, state, events


def test_trace_overhead(results_dir):
    best: dict[tuple[str, bool], float] = {}
    states: dict[tuple[str, bool], dict] = {}
    events_on = 0
    gc.disable()
    try:
        for _ in range(ROUNDS):
            for engine in ("interp", "compiled"):
                for traced in (False, True):
                    elapsed, state, events = _blast_seconds(engine, traced)
                    key = (engine, traced)
                    best[key] = min(best.get(key, float("inf")), elapsed)
                    states[key] = state
                    if traced:
                        events_on = max(events_on, events)
    finally:
        gc.enable()

    # Tracing never touches the simulated machine: identical cycles,
    # throughput, and guard stats whether the subsystem recorded
    # hundreds of thousands of events or none.
    for engine in ("interp", "compiled"):
        assert states[(engine, False)] == states[(engine, True)], (
            f"{engine}: tracing changed simulated results"
        )
    assert events_on > 0

    report = {
        "workload": {
            "figure": "fig3",
            "machine": MACHINE,
            "frame_bytes": FRAME_BYTES,
            "packets": PACKETS,
            "rounds": ROUNDS,
        },
        "simulated_throughput_pps": states[("compiled", False)][
            "throughput_pps"],
        "simulated_state_identical": True,
        "events_captured_when_on": events_on,
        "engines": {},
    }
    for engine in ("interp", "compiled"):
        off = best[(engine, False)]
        on = best[(engine, True)]
        report["engines"][engine] = {
            "seconds_off": off,
            "seconds_on": on,
            "wallclock_overhead_on": on / off - 1.0,
        }
    (results_dir / "BENCH_trace.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    # The compiled engine's off-mode closures are byte-identical to a
    # subsystem-free build, so any off-mode cost is pure measurement
    # noise — bound it loosely.
    off_compiled = report["engines"]["compiled"]["seconds_off"]
    baseline = _baseline_seconds()
    overhead = off_compiled / baseline - 1.0
    report["engines"]["compiled"]["wallclock_overhead_off_vs_baseline"] = (
        overhead)
    (results_dir / "BENCH_trace.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    assert overhead < MAX_OFF_OVERHEAD, (
        f"tracing-off wall-clock overhead {overhead:.1%} exceeds "
        f"{MAX_OFF_OVERHEAD:.0%}; see BENCH_trace.json"
    )


def _baseline_seconds() -> float:
    """The same workload with the subsystem surgically removed."""
    best = float("inf")
    for _ in range(ROUNDS):
        system = CaratKopSystem(
            SystemConfig(machine=MACHINE, protect=True, engine="compiled")
        )
        del system.kernel.trace  # a build without repro.trace
        system.blast(size=FRAME_BYTES, count=WARMUP_PACKETS)
        t0 = time.perf_counter()
        system.blast(size=FRAME_BYTES, count=PACKETS)
        best = min(best, time.perf_counter() - t0)
    return best
